"""Table IV: how often each heuristic attack wins across the 32 testbeds.

Runs only the four heuristics over the full 4-dataset x 8-ranker grid and
counts, per heuristic, the testbeds where it achieves the best RecNum
(ties award all winners; all-zero testbeds are skipped, as the paper does
for ItemPop on MovieLens).
"""

from __future__ import annotations

from common import DATASETS, RANKERS, emit, once
from repro.analysis import win_counts
from repro.attacks import HEURISTIC_NAMES
from repro.experiments import (build_environment, format_table,
                               resolve_scale, run_baseline)


def run_heuristic_grid(scale, seed=0):
    results = {method: [] for method in HEURISTIC_NAMES}
    per_dataset = {method: {d: [] for d in DATASETS}
                   for method in HEURISTIC_NAMES}
    for dataset_name in DATASETS:
        for ranker_name in RANKERS:
            _, system, env = build_environment(dataset_name, ranker_name,
                                               scale, seed=seed)
            for method in HEURISTIC_NAMES:
                recnum = run_baseline(method, env, system, scale, seed=seed)
                results[method].append(recnum)
                per_dataset[method][dataset_name].append(recnum)
    return results, per_dataset


def test_table4_heuristic_wins(benchmark):
    scale = resolve_scale()
    results, per_dataset = once(benchmark,
                                lambda: run_heuristic_grid(scale))
    total_wins = win_counts(results)
    rows = []
    for method in HEURISTIC_NAMES:
        dataset_wins = [
            win_counts({m: per_dataset[m][d] for m in HEURISTIC_NAMES})[method]
            for d in DATASETS]
        rows.append([method] + dataset_wins + [total_wins[method]])
    text = format_table(["method"] + list(DATASETS) + ["all"], rows)
    emit(f"table4_{scale.name}", text)

    # Shape check: every testbed with a nonzero winner is attributed, and
    # no single heuristic dominates everywhere (the paper's conclusion).
    contested = sum(1 for i in range(len(results["random"]))
                    if max(results[m][i] for m in HEURISTIC_NAMES) > 0)
    assert sum(total_wins.values()) >= contested
    assert max(total_wins.values()) < contested
