"""Extension: detectability of each attack under shilling detectors.

Beyond the paper — a platform running standard statistical defenses will
catch some attacks more easily than others.  For every attack method
(including PoisonRec) this bench reports the recall of three detector
families, alongside the attack's RecNum, exposing the
effectiveness-vs-stealth trade-off.
"""

from __future__ import annotations

from common import BASELINES, emit, once
from repro.analysis import ALL_DETECTORS, evaluate_detection
from repro.attacks import BASELINE_CLASSES
from repro.core import PoisonRec
from repro.experiments import (build_environment, format_table,
                               resolve_scale)

METHODS = BASELINES + ("poisonrec",)


def attack_trajectories(method, env, system, scale, seed=0):
    """Produce (trajectories, recnum) for one method."""
    if method == "poisonrec":
        agent = PoisonRec(env, scale.config(seed=seed))
        result = agent.train(scale.rl_steps)
        trajectories = (result.best_trajectories
                        or agent.sample_attack().trajectories())
        return trajectories, int(result.best_reward)
    kwargs = {}
    if method == "conslop":
        kwargs["system_log"] = system.clean_log
    if method == "appgrad":
        kwargs["iterations"] = scale.appgrad_iterations
    attack = BASELINE_CLASSES[method](env, scale.budget(), seed=seed,
                                      **kwargs)
    outcome = attack.run()
    return outcome.trajectories, outcome.recnum


def run_detection_grid(scale, seed=0):
    rows = []
    _, system, env = build_environment("steam", "itempop", scale, seed=seed)
    for method in METHODS:
        trajectories, recnum = attack_trajectories(method, env, system,
                                                   scale, seed=seed)
        accounts = {10_000 + i: list(t) for i, t in enumerate(trajectories)}
        recalls = {}
        for detector_cls in ALL_DETECTORS:
            detector = detector_cls(threshold_percentile=99)
            report = evaluate_detection(detector, system.clean_log,
                                        accounts)
            recalls[detector.name] = report.recall
        rows.append([method, recnum] + [f"{recalls[d(99).name]:.2f}"
                                        for d in ALL_DETECTORS])
    return rows


def test_attack_detectability(benchmark):
    scale = resolve_scale()
    rows = once(benchmark, lambda: run_detection_grid(scale))
    headers = (["method", "recnum"]
               + [cls(99).name for cls in ALL_DETECTORS])
    emit(f"detection_{scale.name}", format_table(headers, rows))

    # Shape checks: at least one detector catches at least one attack
    # (the defenses are not vacuous), and no attack is flagged at recall
    # > 1 (sanity).
    recalls = [float(value) for row in rows for value in row[2:]]
    assert max(recalls) > 0.0
    assert all(0.0 <= r <= 1.0 for r in recalls)
