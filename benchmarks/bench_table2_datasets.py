"""Table II: dataset statistics.

Regenerates the #users / #items / #samples table for the four synthetic
dataset stand-ins at the selected scale, next to the paper's numbers.
"""

from __future__ import annotations

from common import DATASETS, emit, once
from repro.data import PAPER_SPECS, load_dataset
from repro.experiments import format_table, resolve_scale

PAPER_ROWS = {
    "steam": (6506, 5134, 180721),
    "movielens": (5999, 3706, 943317),
    "phone": (27879, 10429, 166560),
    "clothing": (39387, 23033, 239290),
}


def generate_all(scale):
    return {name: load_dataset(name, scale=scale.dataset_scale, seed=0)
            for name in DATASETS}


def test_table2_dataset_statistics(benchmark):
    scale = resolve_scale()
    datasets = once(benchmark, lambda: generate_all(scale))
    rows = []
    for name in DATASETS:
        stats = datasets[name].statistics()
        paper_users, paper_items, paper_samples = PAPER_ROWS[name]
        rows.append([name, stats["users"], stats["items"], stats["samples"],
                     paper_users, paper_items, paper_samples])
    text = format_table(
        ["dataset", "users", "items", "samples",
         "paper_users", "paper_items", "paper_samples"], rows)
    emit(f"table2_{scale.name}", text)

    # Shape check: scale ratios follow Table II orderings.
    stats = {name: datasets[name].statistics() for name in DATASETS}
    assert stats["clothing"]["items"] > stats["phone"]["items"]
    assert stats["phone"]["users"] > stats["steam"]["users"]
    for name in DATASETS:
        assert stats[name]["users"] == PAPER_SPECS[name].num_users or \
            scale.dataset_scale != "paper"
