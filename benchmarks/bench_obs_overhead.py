"""Observability overhead: a traced campaign must cost <3% wall-clock.

The tracer/metrics substrate sits on the attack hot path (every query,
every PPO epoch, every scheduler slice), so its cost must be provably
negligible — the ISSUE acceptance criterion is <3% overhead with a full
:class:`~repro.obs.run.RunTelemetry` attached (spans + metrics + JSONL
log), measured against the identical untraced campaign.

The two campaigns are asserted bit-identical first (tracing is purely
observational by construction — sequential span ids, monotonic clock
only, no RNG draws), then timed over the same work.  Results land in
``BENCH_obs_overhead.json``.  ``REPRO_SMOKE=1`` shrinks the run and
relaxes the bound (micro-runs on loaded CI boxes jitter more than 3%);
the tight assertion runs at full measurement size.
"""

from __future__ import annotations

import os
import time

from common import emit, emit_json, once
from repro.experiments import build_environment, format_table, resolve_scale
from repro.obs import RunTelemetry, phase_rollup
from repro.core import PoisonRec


def run_campaign(scale, steps, obs_log=None, traced=False):
    """One fixed-seed campaign; returns (history, seconds, span count)."""
    _, _, env = build_environment("steam", "covisitation", scale, seed=0)
    run = RunTelemetry(obs_log) if traced else None
    agent = PoisonRec(env, scale.config(seed=0), action_space="plain",
                      obs=run)
    start = time.perf_counter()
    agent.train(steps)
    elapsed = time.perf_counter() - start
    spans = len(run.tracer.spans) if run is not None else 0
    if run is not None:
        run.close()
    history = [(s.step, s.mean_reward, s.max_reward, tuple(s.losses))
               for s in agent.result.history]
    return history, elapsed, spans, run


def test_obs_overhead(benchmark, tmp_path):
    scale = resolve_scale()
    smoke = os.environ.get("REPRO_SMOKE", "") == "1"
    steps = 2 if smoke else {"ci": 8, "small": 12, "paper": 20}[scale.name]

    # Warm both paths once (imports, allocator) before measuring.
    run_campaign(scale, 1)
    run_campaign(scale, 1, traced=True)

    # Interleave repetitions and compare best-of-N: single runs jitter
    # far more than the 3% budget on shared machines; the minimum is
    # the standard noise-suppressing estimator for small overheads.
    reps = 1 if smoke else 3
    plain_runs, traced_runs = [], []
    for i in range(reps):
        timer = (lambda: once(benchmark, lambda: run_campaign(scale, steps))
                 ) if i == 0 else (lambda: run_campaign(scale, steps))
        plain_runs.append(timer())
        traced_runs.append(run_campaign(
            scale, steps, obs_log=tmp_path / f"obs{i}.jsonl", traced=True))
    log = tmp_path / "obs0.jsonl"
    plain_history, plain_s = plain_runs[0][0], min(r[1] for r in plain_runs)
    traced_history, _, spans, run = traced_runs[0]
    traced_s = min(r[1] for r in traced_runs)

    assert traced_history == plain_history, (
        "tracing must leave the training history bit-identical")
    assert spans > 0 and log.exists()

    overhead = traced_s / plain_s - 1.0
    if not smoke:
        assert overhead < 0.03, (
            f"observability overhead {overhead:.1%} exceeds the 3% budget")

    rollup = phase_rollup(run.tracer.spans)
    payload = {
        "scale": scale.name,
        "smoke": smoke,
        "ranker": "covisitation",
        "steps": steps,
        "repetitions": reps,
        "plain_seconds": plain_s,
        "traced_seconds": traced_s,
        "overhead_fraction": overhead,
        "budget_fraction": 0.03,
        "spans": spans,
        "log_bytes": log.stat().st_size,
        "span_rollup": rollup,
    }
    emit_json("obs_overhead", payload)

    rows = [["untraced", steps, f"{plain_s:.3f}", "-"],
            ["traced", steps, f"{traced_s:.3f}", f"{overhead:+.2%}"]]
    emit(f"obs_overhead_{scale.name}",
         format_table(["mode", "steps", "seconds", "overhead"], rows))
