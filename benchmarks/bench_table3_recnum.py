"""Table III: RecNum of every attack method on every (dataset, ranker) cell.

Runs the 6 baselines plus PoisonRec (BCBT-Popular) over the full grid of
4 datasets x 8 recommendation algorithms and prints one paper-style table
per dataset.  Absolute numbers depend on the synthetic data scale; the
*shape* to check is that PoisonRec wins most cells, ConsLOP stands out on
CoVisitation relative to its own other cells, and AppGrad trails PoisonRec
on order-sensitive systems.
"""

from __future__ import annotations

import os

from common import BASELINES, DATASETS, RANKERS, emit, once
from repro.experiments import (build_environment, format_table,
                               resolve_scale, run_baseline, run_poisonrec)

METHODS = BASELINES + ("poisonrec",)


def run_grid(scale, datasets, rankers, seed=0):
    grid = {}
    for dataset_name in datasets:
        for ranker_name in rankers:
            _, system, env = build_environment(dataset_name, ranker_name,
                                               scale, seed=seed)
            cell = {}
            for method in BASELINES:
                cell[method] = run_baseline(method, env, system, scale,
                                            seed=seed)
            result = run_poisonrec(env, scale, seed=seed)
            cell["poisonrec"] = int(result.best_reward)
            grid[(dataset_name, ranker_name)] = cell
    return grid


def render(grid, datasets, rankers):
    blocks = []
    for dataset_name in datasets:
        rows = []
        for method in METHODS:
            rows.append([method] + [grid[(dataset_name, r)][method]
                                    for r in rankers])
        blocks.append(f"[{dataset_name}]\n"
                      + format_table(["method"] + list(rankers), rows))
    return "\n\n".join(blocks)


def test_table3_attack_comparison(benchmark):
    scale = resolve_scale()
    # REPRO_GRID=quick restricts to one dataset for a fast sanity pass.
    quick = os.environ.get("REPRO_GRID") == "quick"
    datasets = ("steam",) if quick else DATASETS
    grid = once(benchmark, lambda: run_grid(scale, datasets, RANKERS))

    # Per-method win counts over the grid (ties award all winners;
    # all-zero cells are skipped, as in Table IV's protocol).
    cells = [(d, r) for d in datasets for r in RANKERS]
    wins = {method: 0 for method in METHODS}
    contested = 0
    for cell in cells:
        best = max(grid[cell][m] for m in METHODS)
        if best <= 0:
            continue
        contested += 1
        for method in METHODS:
            if grid[cell][method] == best:
                wins[method] += 1
    win_line = "wins over contested cells: " + ", ".join(
        f"{method}={wins[method]}" for method in METHODS)
    emit(f"table3_{scale.name}{'_quick' if quick else ''}",
         render(grid, datasets, RANKERS) + "\n\n" + win_line)

    # Shape check (the paper's Table III narrative): PoisonRec is the most
    # consistently winning method — no single baseline wins more cells.
    # (The paper's near-sweep of 30/32 cells needs converged training;
    # the ci budget trains for `scale.rl_steps` steps only.)
    assert wins["poisonrec"] >= max(wins[m] for m in BASELINES), (
        f"{win_line} over {contested} contested cells")
