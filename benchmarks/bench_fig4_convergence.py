"""Figure 4: PoisonRec training curves under the four action-space designs.

For each recommendation algorithm on Steam, trains PoisonRec with Plain,
BPlain, BCBT-Popular and BCBT-Random and prints the per-step mean-RecNum
series.  The paper's shape: Plain trails badly (no priori knowledge),
BPlain starts high, BCBT-Popular converges fastest/highest, BCBT-Random
underperforms BCBT-Popular (Assumption 1 matters).
"""

from __future__ import annotations

import os

import numpy as np

from common import RANKERS, RESULTS_DIR, emit, once
from repro.analysis import line_chart
from repro.experiments import (build_environment, format_series,
                               resolve_scale, run_poisonrec)

DESIGNS = ("plain", "bplain", "bcbt-popular", "bcbt-random")


def run_curves(scale, rankers, seed=0):
    curves = {}
    for ranker_name in rankers:
        _, _, env = build_environment("steam", ranker_name, scale, seed=seed)
        for design in DESIGNS:
            result = run_poisonrec(env, scale, seed=seed,
                                   action_space=design)
            curves[(ranker_name, design)] = result.mean_rewards
    return curves


def test_fig4_action_space_convergence(benchmark):
    scale = resolve_scale()
    quick = os.environ.get("REPRO_GRID") == "quick"
    rankers = ("itempop", "covisitation", "bpr") if quick else RANKERS
    curves = once(benchmark, lambda: run_curves(scale, rankers))

    blocks = []
    for ranker_name in rankers:
        lines = [format_series(f"{design:13s}",
                               curves[(ranker_name, design)])
                 for design in DESIGNS]
        blocks.append(f"[steam / {ranker_name}]\n" + "\n".join(lines))
        line_chart({design: curves[(ranker_name, design)]
                    for design in DESIGNS},
                   RESULTS_DIR / f"fig4_{scale.name}_{ranker_name}.svg",
                   title=f"Figure 4: steam / {ranker_name}",
                   x_label="training step", y_label="mean RecNum")
    emit(f"fig4_{scale.name}{'_quick' if quick else ''}",
         "\n\n".join(blocks))

    # Shape check: biased designs beat Plain on average over the run.
    def average(design):
        return np.mean([np.mean(curves[(r, design)]) for r in rankers])

    assert average("bcbt-popular") > average("plain")
    assert average("bplain") > average("plain")
