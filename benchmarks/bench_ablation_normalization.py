"""Ablation: Equation 8's per-batch reward normalization on vs off.

The paper motivates normalizing RecNum rewards ("usually a large discrete
number, leading to the difficulty of convergency").  This ablation trains
the same agent with and without normalization and compares the curves.
Expected shape: the normalized runs make steadier progress; raw-reward
runs exhibit unstable or stalled updates (large advantage magnitudes blow
through the PPO clip region).
"""

from __future__ import annotations

import numpy as np

from common import emit, once
from repro.core import PoisonRec
from repro.experiments import (build_environment, format_series,
                               resolve_scale)


def train_with_normalization(env, scale, enabled, seed=0):
    """Train one agent with Equation 8 enabled or disabled."""
    agent = PoisonRec(env, scale.config(seed=seed),
                      action_space="bcbt-popular")
    agent.trainer.normalize = enabled
    return agent.train(scale.rl_steps)


def run_ablation(scale, seed=0):
    curves = {}
    for ranker_name in ("itempop", "pmf"):
        for enabled in (True, False):
            _, _, env = build_environment("steam", ranker_name, scale,
                                          seed=seed)
            result = train_with_normalization(env, scale, enabled,
                                              seed=seed)
            label = "normalized" if enabled else "raw"
            curves[(ranker_name, label)] = result.mean_rewards
    return curves


def test_ablation_reward_normalization(benchmark):
    scale = resolve_scale()
    curves = once(benchmark, lambda: run_ablation(scale))
    blocks = []
    for ranker_name in ("itempop", "pmf"):
        lines = [format_series(f"{label:11s}",
                               curves[(ranker_name, label)])
                 for label in ("normalized", "raw")]
        blocks.append(f"[steam / {ranker_name}]\n" + "\n".join(lines))
    emit(f"ablation_normalization_{scale.name}", "\n\n".join(blocks))

    # Shape check: normalization never loses badly — its final mean reward
    # is at least ~70% of the raw variant's on every testbed (and usually
    # higher; the raw variant is the unstable one).
    for ranker_name in ("itempop", "pmf"):
        normalized = np.mean(curves[(ranker_name, "normalized")][-3:])
        raw = np.mean(curves[(ranker_name, "raw")][-3:])
        assert normalized >= 0.7 * raw or raw == 0
