"""Figure 6: t-SNE of item embeddings with the learned strategy overlaid.

For each embedding-bearing ranker on Steam (ItemPop, CoVisitation and
AutoRec borrow PMF's embeddings, as in the paper), embeds the items with
t-SNE and summarizes where the learned attack's clicked items fall: how
many distinct originals/targets are clicked and how popular the clicked
originals are relative to the catalog.
"""

from __future__ import annotations

import numpy as np

from common import RANKERS, RESULTS_DIR, emit, once
from repro.analysis import (clicked_item_counts, popularity_color,
                            scatter_plot, tsne)
from repro.core import PoisonRec
from repro.experiments import build_environment, format_table, resolve_scale

#: Rankers without their own item embeddings borrow PMF's (paper, Sec IV-C).
EMBEDDING_FALLBACK = {"itempop": "pmf", "covisitation": "pmf",
                      "autorec": "pmf"}


def run_fig6(scale, seed=0):
    summaries = {}
    pmf_embeddings = None
    for ranker_name in RANKERS:
        _, system, env = build_environment("steam", ranker_name, scale,
                                           seed=seed)
        embeddings = system.ranker.item_embeddings()
        if ranker_name == "pmf":
            pmf_embeddings = embeddings
        if embeddings is None:
            source = EMBEDDING_FALLBACK[ranker_name]
            if pmf_embeddings is None:
                _, pmf_system, _ = build_environment("steam", "pmf", scale,
                                                     seed=seed)
                pmf_embeddings = pmf_system.ranker.item_embeddings()
            embeddings = pmf_embeddings
            embedding_source = source
        else:
            embedding_source = ranker_name

        projection = tsne(embeddings, iterations=150, seed=seed)

        agent = PoisonRec(env, scale.config(seed=seed))
        agent.train(scale.rl_steps)
        trajectories = (agent.result.best_trajectories
                        or agent.sample_attack().trajectories())
        clicked = clicked_item_counts(trajectories)
        originals = {i: c for i, c in clicked.items()
                     if i < env.num_original_items}
        targets = [i for i in clicked if i >= env.num_original_items]
        popularity = env.item_popularity[:env.num_original_items]
        # Click-weighted popularity percentile of the strategy's original
        # clicks; 0.5 = popularity-agnostic, higher = popular-leaning.
        if originals:
            weights = np.asarray(list(originals.values()), dtype=float)
            percentiles = np.asarray(
                [float((popularity < popularity[i]).mean())
                 for i in originals])
            weighted = float(np.average(percentiles, weights=weights))
        else:
            weighted = 0.5

        # Render the paper-style figure: items colored by popularity,
        # targets enlarged, clicked items circled.
        scale_name = scale.name
        full_popularity = env.item_popularity
        colors = popularity_color(full_popularity)
        for target in env.target_items:
            colors[target] = "#2ca02c"  # targets: green stars in the paper
        sizes = [4.0 if i >= env.num_original_items else 2.5
                 for i in range(env.num_items)]
        scatter_plot(projection, RESULTS_DIR
                     / f"fig6_{scale_name}_{ranker_name}.svg",
                     title=f"Figure 6: steam / {ranker_name}",
                     colors=colors, sizes=sizes,
                     highlight=sorted(clicked))
        summaries[ranker_name] = {
            "embedding_source": embedding_source,
            "projection_shape": projection.shape,
            "distinct_originals": len(originals),
            "distinct_targets": len(targets),
            "clicked_pop_percentile": weighted,
        }
    return summaries


def test_fig6_strategy_visualization(benchmark):
    scale = resolve_scale()
    summaries = once(benchmark, lambda: run_fig6(scale))
    rows = [[name,
             summaries[name]["embedding_source"],
             summaries[name]["distinct_targets"],
             summaries[name]["distinct_originals"],
             f"{summaries[name]['clicked_pop_percentile']:.2f}"]
            for name in RANKERS]
    emit(f"fig6_{scale.name}",
         format_table(["ranker", "embedding_src", "targets_clicked",
                       "originals_clicked", "orig_pop_percentile"], rows))

    # Shape checks: projections are 2-D for every ranker, every learned
    # strategy clicks at least one target, and the strategies are not
    # anti-popular (click-weighted percentile stays near or above the
    # popularity-agnostic 0.5; strong popular-leaning needs more training
    # steps than the ci scale allows — see EXPERIMENTS.md).
    assert all(s["projection_shape"][1] == 2 for s in summaries.values())
    assert all(s["distinct_targets"] >= 1 for s in summaries.values())
    mean_percentile = np.mean([s["clicked_pop_percentile"]
                               for s in summaries.values()])
    assert mean_percentile > 0.35
