"""Users-vs-seconds scaling curve: the million-user environment.

The tentpole claim of the sparse substrate + batched scoring work: every
ranker fits directly on the flat-array :class:`SparseInteractions`
substrate (no per-user Python lists anywhere in the pipeline) and scores
all eval users through one vectorized ``score_batch`` pass, so both fit
and score seconds grow near-linearly in the user count.

For each scale the bench

1. generates a synthetic log straight into the CSR substrate with
   :func:`repro.data.generate_sparse_log` (timed),
2. fits all 8 rankers on the sparse view (timed),
3. times batched scoring (``score_batch``) against the serial
   per-user ``score`` loop on the same candidate matrix, and asserts
   the batched path is never slower; at 10⁵ users the batched kernels
   must be at least 5x faster.

The serial loop is measured on a capped user subsample at large scales
(a full 10⁵-user Python loop through 8 rankers would dominate the bench)
and extrapolated linearly; the cap is recorded in the payload, never
silent.  Results land in ``BENCH_scale.json`` at the repo root (plus a
copy under ``benchmarks/results/``).  ``REPRO_SMOKE=1`` shrinks the
scales for CI; the checked-in JSON comes from a full local run.
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import RANKERS, emit, emit_json
from repro.data import generate_sparse_log
from repro.data.synthetic import DatasetSpec
from repro.recsys.registry import make_ranker
from repro.experiments import format_table

CANDIDATES_PER_USER = 100
MAX_EVAL_USERS = 4096       # score_batch rows timed per scale
MAX_LOOP_USERS = 256        # serial-loop sample size (extrapolated)
MIN_SPEEDUP_AT_SCALE = 5.0  # acceptance floor at the largest full scale

#: Cheap-but-representative training settings so the 1-core bench stays
#: tractable at 10⁵ users; the curve compares scales, not accuracy.
FAST_KWARGS = {
    "pmf": {"epochs": 1},
    "bpr": {"epochs": 1},
    "neumf": {"epochs": 1, "batch_size": 4096},
    "autorec": {"epochs": 1, "batch_size": 256},
    "gru4rec": {"epochs": 1, "batch_size": 1024},
    "ngcf": {"epochs": 1, "batches_per_epoch": 2},
}


def lean_spec(num_users: int) -> DatasetSpec:
    """A sparse, catalog-proportional spec for scaling runs."""
    num_items = max(60, num_users // 10)
    return DatasetSpec(name=f"scale{num_users}", num_users=num_users,
                       num_items=num_items, num_samples=8 * num_users,
                       num_clusters=max(4, num_items // 500))


def time_call(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def time_best(fn, repeats: int = 3):
    """Best-of-N wall time (after one warmup call) for short kernels."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        result, seconds = time_call(fn)
        best = min(best, seconds)
    return result, best


def bench_one_scale(num_users: int, seed: int = 0) -> dict:
    spec = lean_spec(num_users)
    view, generate_seconds = time_call(
        lambda: generate_sparse_log(spec, seed=seed))
    rng = np.random.default_rng(seed + 1)
    eval_users = rng.choice(view.num_users, size=min(view.num_users,
                                                     MAX_EVAL_USERS),
                            replace=False).astype(np.int64)
    eval_users.sort()
    candidates = rng.integers(0, spec.num_items,
                              size=(len(eval_users), CANDIDATES_PER_USER))
    loop_users = min(len(eval_users), MAX_LOOP_USERS)

    entry = {
        "users": num_users,
        "items": spec.num_items,
        "interactions": view.num_interactions,
        "generate_seconds": generate_seconds,
        "eval_users": len(eval_users),
        "loop_users_measured": loop_users,
        "rankers": {},
    }
    for name in RANKERS:
        ranker = make_ranker(name, num_users, spec.num_items, seed=seed,
                             **FAST_KWARGS.get(name, {}))
        _, fit_seconds = time_call(lambda: ranker.fit(view))
        batched, batched_seconds = time_best(
            lambda: ranker.score_batch(eval_users, candidates))
        _, loop_sample_seconds = time_best(lambda: np.stack(
            [ranker.score(int(u), candidates[i])
             for i, u in enumerate(eval_users[:loop_users])]))
        loop_seconds = loop_sample_seconds * len(eval_users) / loop_users
        assert batched.shape == candidates.shape
        entry["rankers"][name] = {
            "fit_seconds": fit_seconds,
            "batched_score_seconds": batched_seconds,
            "loop_score_seconds": loop_seconds,
            "speedup": loop_seconds / max(batched_seconds, 1e-12),
        }
    return entry


def test_scale_curve(benchmark):
    smoke = os.environ.get("REPRO_SMOKE", "") == "1"
    # Smoke scales stay above ~10³ users: below that the batched
    # kernels' fixed costs (dedup sorts, window stacking) tie the loop
    # and the >=1x gate would test timer noise, not the kernels.
    scales = [1000, 4000] if smoke else [1000, 10_000, 100_000]
    points = [bench_one_scale(n) for n in scales]

    # Million-user datapoint: substrate generation only (no per-user
    # Python lists anywhere — the arrays come out of the generator).
    generate_only = []
    for num_users in ([10_000] if smoke else [1_000_000]):
        view, seconds = time_call(
            lambda: generate_sparse_log(lean_spec(num_users), seed=0))
        generate_only.append({"users": num_users,
                              "interactions": view.num_interactions,
                              "generate_seconds": seconds})

    benchmark.pedantic(
        lambda: bench_one_scale(scales[0], seed=1), rounds=1, iterations=1)

    payload = {
        "smoke": smoke,
        "scales": scales,
        "candidates_per_user": CANDIDATES_PER_USER,
        "points": points,
        "generate_only": generate_only,
        "min_speedup_at_largest_scale": min(
            stats["speedup"] for stats in points[-1]["rankers"].values()),
    }
    emit_json("scale", payload)

    rows = []
    for point in points:
        for name, stats in point["rankers"].items():
            rows.append([point["users"], name,
                         f"{stats['fit_seconds']:.3f}",
                         f"{stats['batched_score_seconds']*1e3:.1f}",
                         f"{stats['loop_score_seconds']*1e3:.1f}",
                         f"{stats['speedup']:.1f}x"])
    emit("scale_curve",
         format_table(["users", "ranker", "fit_s", "batched_ms",
                       "loop_ms", "speedup"], rows))

    # Gates run AFTER the emit so a failing run still leaves the full
    # per-ranker table behind for diagnosis.
    # CI gate: the batched kernels must never lose to the loop fallback.
    for point in points:
        for name, stats in point["rankers"].items():
            assert stats["speedup"] >= 1.0, (
                f"{name}: score_batch slower than the serial loop at "
                f"{point['users']} users ({stats['speedup']:.2f}x)")
    if not smoke:
        largest = points[-1]
        worst = min(stats["speedup"]
                    for stats in largest["rankers"].values())
        assert worst >= MIN_SPEEDUP_AT_SCALE, (
            f"batched scoring only {worst:.1f}x faster than the loop at "
            f"{largest['users']} users; need {MIN_SPEEDUP_AT_SCALE}x")
