"""Ablation: attack budget sweep over N (attackers) and T (clicks each).

The paper fixes N=20, T=20; this sweep varies the total click budget and
reports the best RecNum PoisonRec reaches, quantifying how attack power
scales with budget.  Expected shape: RecNum grows monotonically (within
noise) with the total budget N*T.
"""

from __future__ import annotations

from dataclasses import replace

from common import emit, once
from repro.core import PoisonRec
from repro.experiments import (build_environment, format_table,
                               resolve_scale)

SWEEP = ((5, 10), (10, 20), (20, 20), (20, 40))


def run_sweep(scale, seed=0):
    results = []
    for num_attackers, trajectory_length in SWEEP:
        sized = replace(scale, num_attackers=num_attackers,
                        trajectory_length=trajectory_length)
        _, _, env = build_environment("steam", "itempop", sized, seed=seed)
        agent = PoisonRec(env, sized.config(seed=seed),
                          action_space="bcbt-popular")
        result = agent.train(sized.rl_steps)
        results.append((num_attackers, trajectory_length,
                        num_attackers * trajectory_length,
                        int(result.best_reward)))
    return results


def test_ablation_budget_sweep(benchmark):
    scale = resolve_scale()
    results = once(benchmark, lambda: run_sweep(scale))
    emit(f"ablation_budget_{scale.name}",
         format_table(["N", "T", "total_clicks", "best_recnum"],
                      [list(row) for row in results]))

    # Shape check: the largest budget beats the smallest.
    assert results[-1][3] >= results[0][3]
