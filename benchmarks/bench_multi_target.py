"""Section IV-D: simultaneous promotion of multiple target items.

The paper observes that on ItemPop, PoisonRec "successfully learns to
promote 3 and 6 target items at the same time on Phone and Clothing" —
unlike ConsLOP, whose single-target design caps it at one.  This bench
trains PoisonRec on ItemPop over Phone and Clothing and counts how many
distinct targets end up with non-trivial exposure, next to ConsLOP's.
"""

from __future__ import annotations

import numpy as np

from common import emit, once
from repro.attacks import ConsLOP
from repro.core import PoisonRec
from repro.experiments import (build_environment, format_table,
                               resolve_scale)


def promoted_targets(exposures: np.ndarray, eval_users: int) -> int:
    """Targets whose exposure is non-trivial (>= 5% of eval users)."""
    threshold = max(1, int(0.05 * eval_users))
    return int((exposures >= threshold).sum())


def run(scale, seed=0):
    rows = []
    for dataset_name in ("phone", "clothing"):
        _, system, env = build_environment(dataset_name, "itempop", scale,
                                           seed=seed)
        eval_users = len(system.eval_users)

        conslop = ConsLOP(env, scale.budget(), seed=seed,
                          system_log=system.clean_log)
        conslop_recnum = env.attack(conslop.generate())
        conslop_targets = promoted_targets(system.target_exposures(),
                                           eval_users)

        agent = PoisonRec(env, scale.config(seed=seed))
        result = agent.train(scale.rl_steps)
        env.attack(result.best_trajectories
                   or agent.sample_attack().trajectories())
        poisonrec_targets = promoted_targets(system.target_exposures(),
                                             eval_users)
        rows.append([dataset_name, conslop_recnum, conslop_targets,
                     int(result.best_reward), poisonrec_targets])
    return rows


def test_multi_target_promotion(benchmark):
    scale = resolve_scale()
    rows = once(benchmark, lambda: run(scale))
    emit(f"multi_target_{scale.name}",
         format_table(["dataset", "conslop_recnum", "conslop_targets",
                       "poisonrec_recnum", "poisonrec_targets"], rows))

    # Shape check (paper IV-D): ConsLOP promotes at most one target;
    # PoisonRec promotes at least as many on every dataset and strictly
    # more on at least one.
    for row in rows:
        assert row[2] <= 1
        assert row[4] >= row[2]
    assert any(row[4] > 1 for row in rows)
