"""Extension: do learned strategies transfer across recommender systems?

The paper motivates PoisonRec by the *diversity* of optimal strategies —
each ranker provokes a different attack (Figure 6).  The converse claim is
that a strategy tuned for one system should transfer poorly to another.
This bench trains PoisonRec on a source ranker, then replays its best
trajectory set against every other ranker, producing a transfer matrix.

Expected shape: the diagonal (native strategy) is at or near the row
maximum for most source systems; ConsLOP's poor transfer in Table III is
the baseline analogue.
"""

from __future__ import annotations

import numpy as np

from common import emit, once
from repro.core import PoisonRec
from repro.experiments import (build_environment, format_table,
                               resolve_scale)

#: Fast rankers only — the transfer matrix needs many cross-evaluations.
TRANSFER_RANKERS = ("itempop", "covisitation", "pmf", "autorec")


def run_transfer(scale, seed=0):
    environments = {}
    strategies = {}
    for ranker_name in TRANSFER_RANKERS:
        _, _, env = build_environment("steam", ranker_name, scale, seed=seed)
        environments[ranker_name] = env
        agent = PoisonRec(env, scale.config(seed=seed))
        result = agent.train(scale.rl_steps)
        strategies[ranker_name] = (result.best_trajectories
                                   or agent.sample_attack().trajectories())
    matrix = {}
    for source in TRANSFER_RANKERS:
        for target in TRANSFER_RANKERS:
            matrix[(source, target)] = environments[target].attack(
                strategies[source])
    return matrix


def test_strategy_transfer(benchmark):
    scale = resolve_scale()
    matrix = once(benchmark, lambda: run_transfer(scale))
    rows = [[source] + [matrix[(source, target)]
                        for target in TRANSFER_RANKERS]
            for source in TRANSFER_RANKERS]
    emit(f"transfer_{scale.name}",
         format_table(["trained_on \\ attacked"] + list(TRANSFER_RANKERS),
                      rows))

    # Shape check: on average, the native strategy outperforms strategies
    # transferred from other systems.
    native = np.mean([matrix[(r, r)] for r in TRANSFER_RANKERS])
    transferred = np.mean([matrix[(s, t)]
                           for s in TRANSFER_RANKERS
                           for t in TRANSFER_RANKERS if s != t])
    assert native >= transferred, (
        f"native mean {native:.0f} < transferred mean {transferred:.0f}")
