"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables or figures at the scale
selected by ``REPRO_SCALE`` (default ``ci``), prints the rows/series the
paper reports, and persists them under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Paper's Table III column order.
RANKERS = ("itempop", "covisitation", "pmf", "bpr", "neumf", "autorec",
           "gru4rec", "ngcf")
DATASETS = ("steam", "movielens", "phone", "clothing")
BASELINES = ("random", "popular", "middle", "poweritem", "conslop",
             "appgrad")


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} ====="
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable result as ``BENCH_<name>.json``.

    The file lands at the repository root so CI can pick it up as an
    artifact without globbing; a copy of the same payload also goes to
    ``benchmarks/results/`` next to the human-readable blocks.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(text + "\n")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiment benches regenerate whole tables; repeating them for
    statistical timing would multiply minutes of work for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
