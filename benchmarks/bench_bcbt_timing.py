"""Section IV-B timing: BCBT vs Plain sampling cost as |I| grows.

The paper reports per-training-step times of 1.41s (BCBT) vs 1.93s
(Plain) at |I|=3,000 and 2.33s vs 15.69s at |I|=30,000 — BCBT scales
logarithmically while Plain is linear in the item count.  This bench
times trajectory sampling for both designs over growing catalogs and
asserts the same crossover shape: Plain's cost grows much faster.
"""

from __future__ import annotations

import time

import numpy as np

from common import emit
from repro.core import PolicyNetwork, make_action_space
from repro.experiments import format_table, resolve_scale

ITEM_COUNTS_BY_SCALE = {
    "ci": (1000, 3000, 10000),
    "small": (3000, 10000, 30000),
    "paper": (3000, 10000, 30000),
}


def build_policy(kind, num_items, dim=16, seed=0):
    num_original = num_items - 8
    targets = np.arange(num_original, num_items)
    popularity = np.concatenate(
        [np.arange(num_original, 0, -1.0), np.zeros(8)])
    space = make_action_space(kind, num_original, targets, popularity,
                              seed=seed)
    return PolicyNetwork(space, num_attackers=20, dim=dim, seed=seed)


def time_sampling(policy, trajectory_length=20, repeats=3):
    rng = np.random.default_rng(0)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        policy.sample_rollout(trajectory_length, rng)
        best = min(best, time.perf_counter() - start)
    return best


def test_bcbt_vs_plain_sampling_time(benchmark):
    scale = resolve_scale()
    item_counts = ITEM_COUNTS_BY_SCALE[scale.name]

    rows = []
    timings = {}
    for num_items in item_counts:
        plain = build_policy("plain", num_items)
        tree = build_policy("bcbt-popular", num_items)
        t_plain = time_sampling(plain)
        t_tree = time_sampling(tree)
        timings[num_items] = (t_plain, t_tree)
        rows.append([num_items, f"{t_plain*1e3:.1f}", f"{t_tree*1e3:.1f}",
                     f"{t_plain/t_tree:.2f}x"])

    # Time the BCBT kernel itself under pytest-benchmark statistics.
    kernel_policy = build_policy("bcbt-popular", item_counts[-1])
    kernel_rng = np.random.default_rng(1)
    benchmark(lambda: kernel_policy.sample_rollout(20, kernel_rng))

    emit(f"bcbt_timing_{scale.name}",
         format_table(["num_items", "plain_ms", "bcbt_ms", "speedup"],
                      rows))

    # Shape check (paper: >6x at 30k items): Plain's cost must grow
    # strictly faster with |I| than BCBT's.
    small, large = item_counts[0], item_counts[-1]
    plain_growth = timings[large][0] / timings[small][0]
    tree_growth = timings[large][1] / timings[small][1]
    assert plain_growth > tree_growth, (
        f"Plain grew {plain_growth:.2f}x vs BCBT {tree_growth:.2f}x")
    assert timings[large][0] > timings[large][1], (
        "BCBT must be faster than Plain on the largest catalog")
