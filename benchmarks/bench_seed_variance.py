"""Extension: seed robustness of PoisonRec's attack performance.

Single-seed RL results can mislead; this bench trains PoisonRec under
several seeds on one testbed and reports the mean and spread of the best
RecNum, quantifying run-to-run variance at the current scale.
"""

from __future__ import annotations

import numpy as np

from common import emit, once
from repro.core import PoisonRec
from repro.experiments import (build_environment, format_table,
                               resolve_scale)

SEEDS = (0, 1, 2)


def run_seeds(scale):
    best = []
    for seed in SEEDS:
        _, _, env = build_environment("steam", "itempop", scale, seed=0)
        agent = PoisonRec(env, scale.config(seed=seed))
        result = agent.train(scale.rl_steps)
        best.append(result.best_reward)
    return best


def test_seed_variance(benchmark):
    scale = resolve_scale()
    best = once(benchmark, lambda: run_seeds(scale))
    rows = [[seed, f"{value:.0f}"] for seed, value in zip(SEEDS, best)]
    rows.append(["mean +/- std",
                 f"{np.mean(best):.0f} +/- {np.std(best):.0f}"])
    emit(f"seed_variance_{scale.name}",
         format_table(["seed", "best_recnum"], rows))

    # Shape check: every seed finds a working attack, and the relative
    # spread is bounded (the learning signal dominates seed noise).
    assert min(best) > 0
    assert np.std(best) <= np.mean(best)
