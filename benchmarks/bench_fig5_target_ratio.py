"""Figure 5: ratio of target-item clicks in the learned attack strategies.

Trains PoisonRec (BCBT-Popular) on each ranker over Steam and reports the
fraction of sampled clicks that land on target items.  Paper's shape:
close to 1.0 on ItemPop and NeuMF (clicking targets only is enough), and
above ~0.2 everywhere (the priori-knowledge bias is justified).
"""

from __future__ import annotations

from common import RANKERS, emit, once
from repro.core import PoisonRec
from repro.experiments import build_environment, format_table, resolve_scale


def run_ratios(scale, seed=0):
    ratios = {}
    for ranker_name in RANKERS:
        _, _, env = build_environment("steam", ranker_name, scale, seed=seed)
        agent = PoisonRec(env, scale.config(seed=seed),
                          action_space="bcbt-popular")
        agent.train(scale.rl_steps)
        ratios[ranker_name] = agent.target_click_ratio(num_samples=8)
    return ratios


def test_fig5_target_click_ratio(benchmark):
    scale = resolve_scale()
    ratios = once(benchmark, lambda: run_ratios(scale))
    rows = [[name, f"{ratios[name]:.3f}"] for name in RANKERS]
    emit(f"fig5_{scale.name}",
         format_table(["ranker", "target_click_ratio"], rows))

    # Shape check: ratios are valid probabilities and the bias survives
    # training (learned strategies keep clicking targets).
    assert all(0.0 <= r <= 1.0 for r in ratios.values())
    assert sum(r > 0.2 for r in ratios.values()) >= len(RANKERS) - 2
