"""Black-box query throughput: serial vs pooled, with phase breakdown.

PoisonRec's wall-clock is dominated by environment queries (reload →
poison-retrain → re-score), so this bench measures queries/sec through
the NeuMF testbed three ways:

* ``serial`` — plain ``system.attack`` calls in-process, with a
  :class:`~repro.perf.QueryProfiler` attached to split each query into
  its restore / merge / retrain / score phases;
* ``pooled`` — the same batch through a :class:`~repro.perf.QueryPool`
  of forked replicas (``min(4, cpu_count)`` workers by default;
  ``REPRO_BENCH_WORKERS`` overrides the count, e.g. to force a
  multi-worker datapoint on a single-core runner where the extra
  workers time-share one core);
* the two reward vectors are asserted bit-identical (the pool's
  equivalence guarantee, measured rather than assumed).

Results land in ``BENCH_query_throughput.json`` at the repo root (plus a
copy under ``benchmarks/results/``).  ``REPRO_SMOKE=1`` shrinks the
batch for CI smoke runs.  The parallel speedup is recorded, not
asserted — it depends on the runner's core count.
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import emit, emit_json
from repro.experiments import build_environment, format_table, resolve_scale
from repro.perf import QueryPool, QueryProfiler

TRAJECTORY_LENGTH = 8
NUM_ATTACKERS = 4


def sample_trajectory_sets(env, count, seed=0):
    """Fixed random query batch (valid item ids, incl. targets)."""
    rng = np.random.default_rng(seed)
    num_items = env.num_original_items + len(env.target_items)
    return [
        [list(map(int, rng.integers(0, num_items, size=TRAJECTORY_LENGTH)))
         for _ in range(NUM_ATTACKERS)]
        for _ in range(count)
    ]


def run_serial(system, env, batch):
    profiler = QueryProfiler()
    system.profiler = profiler
    start = time.perf_counter()
    rewards = [float(env.attack(trajectories)) for trajectories in batch]
    elapsed = time.perf_counter() - start
    system.profiler = None
    return rewards, elapsed, profiler.summary()


def run_pooled(env, batch, workers):
    with QueryPool(env, workers=workers) as pool:
        start = time.perf_counter()
        outcomes = pool.attack_many(batch)
        elapsed = time.perf_counter() - start
        mode = "parallel" if pool.parallel and not pool.broken else "serial"
    return [o.reward for o in outcomes], elapsed, mode


def test_query_throughput(benchmark):
    scale = resolve_scale()
    smoke = os.environ.get("REPRO_SMOKE", "") == "1"
    count = 4 if smoke else {"ci": 16, "small": 32, "paper": 64}[scale.name]
    workers = (int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
               or min(4, os.cpu_count() or 1))

    _, system, env = build_environment("steam", "neumf", scale, seed=0)
    batch = sample_trajectory_sets(env, count)

    serial_rewards, serial_s, phases = run_serial(system, env, batch)
    pooled_rewards, pooled_s, mode = run_pooled(env, batch, workers)

    assert pooled_rewards == serial_rewards, (
        "pooled rewards must be bit-identical to serial")

    # pytest-benchmark statistics over the single-query kernel.
    benchmark(lambda: env.attack(batch[0]))

    serial_qps = count / serial_s
    pooled_qps = count / pooled_s
    payload = {
        "scale": scale.name,
        "smoke": smoke,
        "ranker": "neumf",
        "queries": count,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "pool_mode": mode,
        "serial_seconds": serial_s,
        "pooled_seconds": pooled_s,
        "serial_qps": serial_qps,
        "pooled_qps": pooled_qps,
        "speedup": pooled_qps / serial_qps,
        "per_query_phases": phases,
    }
    if (os.cpu_count() or 1) < 2:
        payload["limitation"] = (
            "single-core runner: the pooled workers time-share one core, "
            "so the recorded speedup reflects fork overhead, not the "
            "pool; reproduce the parallel datapoint locally with "
            "REPRO_BENCH_WORKERS=2 pytest benchmarks/"
            "bench_query_throughput.py --benchmark-only on a multi-core "
            "machine")
    emit_json("query_throughput", payload)

    rows = [["serial", count, f"{serial_s:.2f}", f"{serial_qps:.2f}"],
            [f"pooled({workers}, {mode})", count, f"{pooled_s:.2f}",
             f"{pooled_qps:.2f}"]]
    breakdown = [[name, stats["calls"], f"{stats['mean_seconds']*1e3:.2f}"]
                 for name, stats in phases.items()]
    emit(f"query_throughput_{scale.name}",
         format_table(["mode", "queries", "seconds", "qps"], rows)
         + "\n\n"
         + format_table(["phase", "calls", "mean_ms"], breakdown))
