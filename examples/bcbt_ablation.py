"""BCBT ablation: reproduce the Figure 4 comparison on one testbed.

Trains PoisonRec under the four action-space designs — Plain, BPlain,
BCBT-Popular, BCBT-Random — against the same recommender and prints the
training curves, illustrating the paper's two findings:

* priori knowledge (BPlain, BCBT-*) lifts the curve from step one;
* the popularity-sorted hierarchy (BCBT-Popular) converges best.

Run:
    python examples/bcbt_ablation.py
"""

from __future__ import annotations

from repro import (BlackBoxEnvironment, PoisonRec, PoisonRecConfig,
                   RecommenderSystem, load_dataset)
from repro.experiments import format_series

DESIGNS = ("plain", "bplain", "bcbt-popular", "bcbt-random")


def main() -> None:
    dataset = load_dataset("steam", scale="ci", seed=0)
    system = RecommenderSystem(dataset, "itempop", seed=0)
    env = BlackBoxEnvironment(system)
    print(f"Testbed: steam / itempop, clean RecNum = {env.clean_recnum()}\n")

    for design in DESIGNS:
        config = PoisonRecConfig.ci(num_attackers=20, trajectory_length=20,
                                    samples_per_step=8, batch_size=8, seed=0)
        agent = PoisonRec(env, config, action_space=design)
        result = agent.train(steps=12)
        print(format_series(f"{design:13s}", result.mean_rewards,
                            precision=0)
              + f"  best={result.best_reward:.0f}")

    print("\nExpected shape: plain stays near zero; bplain/bcbt start high;"
          "\nbcbt-popular reaches the best final RecNum.")


if __name__ == "__main__":
    main()
