"""Defense-side analysis: how detectable is each attack?

An extension beyond the paper: runs every attack against the same
recommender, then asks three classic shilling detectors to find the fake
accounts among a batch that also contains organic users.  Prints the
effectiveness-vs-stealth trade-off.

Run:
    python examples/detection_analysis.py
"""

from __future__ import annotations

from repro import (BlackBoxEnvironment, PoisonRec, PoisonRecConfig,
                   RecommenderSystem, load_dataset)
from repro.analysis import ALL_DETECTORS, evaluate_detection
from repro.attacks import BASELINE_CLASSES, AttackBudget
from repro.experiments import format_table


def main() -> None:
    dataset = load_dataset("steam", scale="ci", seed=0)
    system = RecommenderSystem(dataset, "itempop", seed=0)
    env = BlackBoxEnvironment(system)
    budget = AttackBudget(num_attackers=20, trajectory_length=20)

    attacks = {}
    for name, cls in BASELINE_CLASSES.items():
        kwargs = {"system_log": system.clean_log} if name == "conslop" else {}
        if name == "appgrad":
            kwargs["iterations"] = 8
        attack = cls(env, budget, seed=0, **kwargs)
        outcome = attack.run()
        attacks[name] = (outcome.trajectories, outcome.recnum)

    agent = PoisonRec(env, PoisonRecConfig.ci(num_attackers=20,
                                              trajectory_length=20, seed=0))
    agent.train(steps=10)
    trajectories = (agent.result.best_trajectories
                    or agent.sample_attack().trajectories())
    attacks["poisonrec"] = (trajectories, int(agent.result.best_reward))

    detector_names = [cls(99).name for cls in ALL_DETECTORS]
    rows = []
    for name, (trajs, recnum) in attacks.items():
        accounts = {10_000 + i: list(t) for i, t in enumerate(trajs)}
        recalls = []
        for detector_cls in ALL_DETECTORS:
            report = evaluate_detection(detector_cls(99), system.clean_log,
                                        accounts)
            recalls.append(f"{report.recall:.2f}")
        rows.append([name, recnum] + recalls)

    rows.sort(key=lambda row: -row[1])
    print(format_table(["method", "RecNum"] + detector_names, rows))
    print("\nReading: recall 1.00 means every fake account was flagged."
          "\nAttacks that click cold target items heavily are visible to"
          "\nthe popularity-deviation detector; strategies that mimic"
          "\norganic popularity profiles trade RecNum for stealth.")


if __name__ == "__main__":
    main()
