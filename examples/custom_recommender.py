"""Attack your own recommender: plug a custom ranker into the framework.

PoisonRec is model-free: anything implementing the :class:`Ranker`
interface can sit behind the black-box facade.  This example defines a
session-less "recency" recommender (scores items by how recently anyone
clicked them), wires it into a :class:`RecommenderSystem`, and lets
PoisonRec learn to attack it.

Run:
    python examples/custom_recommender.py
"""

from __future__ import annotations

import numpy as np

from repro import (BlackBoxEnvironment, PoisonRec, PoisonRecConfig,
                   RecommenderSystem, load_dataset)
from repro.data import InteractionLog
from repro.recsys import Ranker


class RecencyRanker(Ranker):
    """Scores items by the recency of their latest click.

    A deliberately simple non-personalized model: the most recently
    clicked items rank highest.  Because poison data lands at the end of
    the log, this system is highly attackable — PoisonRec should discover
    that quickly.
    """

    name = "recency"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 half_life: float = 200.0) -> None:
        super().__init__(num_users, num_items, seed)
        self.half_life = half_life
        self.last_click = np.full(num_items, -np.inf)
        self._clock = 0

    def _consume(self, log: InteractionLog) -> None:
        for _, sequence in log.iter_sequences():
            for item in sequence:
                self._clock += 1
                self.last_click[item] = self._clock

    def fit(self, log: InteractionLog) -> None:
        self.last_click = np.full(self.num_items, -np.inf)
        self._clock = 0
        self._consume(log)

    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        self._consume(poison)

    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        age = self._clock - self.last_click[item_ids]
        return np.exp(-age / self.half_life)

    def _state(self):
        return (self.last_click.copy(), self._clock)

    def _set_state(self, state) -> None:
        self.last_click, self._clock = state[0].copy(), state[1]


def main() -> None:
    dataset = load_dataset("steam", scale="ci", seed=0)
    ranker = RecencyRanker(
        num_users=max(dataset.train.users) + 1 + 20,
        num_items=dataset.num_items + 8)
    system = RecommenderSystem(dataset, ranker, seed=0)
    env = BlackBoxEnvironment(system)
    print(f"Custom system: {system}")
    print(f"Clean RecNum: {env.clean_recnum()}")

    agent = PoisonRec(env, PoisonRecConfig.ci(num_attackers=20,
                                              trajectory_length=20, seed=0))
    print("\nstep  mean_RecNum")
    agent.train(steps=8, callback=lambda s: print(
        f"{s.step:4d}  {s.mean_reward:11.1f}"))
    print(f"\nBest observed RecNum: {agent.result.best_reward:.0f} "
          f"(recency rankers are easy prey — poison is always freshest)")


if __name__ == "__main__":
    main()
