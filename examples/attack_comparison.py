"""Compare every attack method on one testbed (a mini Table III column).

Runs the paper's six baselines and PoisonRec against the same black-box
recommender and prints their RecNum side by side.

Run:
    python examples/attack_comparison.py [ranker]
where ranker is one of: itempop covisitation pmf bpr neumf autorec
gru4rec ngcf (default: covisitation).
"""

from __future__ import annotations

import sys

from repro import (BlackBoxEnvironment, PoisonRec, PoisonRecConfig,
                   RecommenderSystem, load_dataset)
from repro.attacks import BASELINE_CLASSES, AttackBudget
from repro.experiments import format_table


def main(ranker_name: str = "covisitation") -> None:
    dataset = load_dataset("steam", scale="ci", seed=0)
    system = RecommenderSystem(dataset, ranker_name, seed=0)
    env = BlackBoxEnvironment(system)
    budget = AttackBudget(num_attackers=20, trajectory_length=20)
    print(f"Testbed: steam / {ranker_name}, clean RecNum = "
          f"{env.clean_recnum()}\n")

    rows = []
    for name, cls in BASELINE_CLASSES.items():
        kwargs = {}
        if name == "conslop":
            # Privileged baseline: receives the system log, as in the paper.
            kwargs["system_log"] = system.clean_log
        if name == "appgrad":
            kwargs["iterations"] = 15
        outcome = cls(env, budget, seed=0, **kwargs).run()
        rows.append([name, outcome.recnum])

    config = PoisonRecConfig.ci(num_attackers=20, trajectory_length=20,
                                samples_per_step=8, batch_size=8, seed=0)
    agent = PoisonRec(env, config, action_space="bcbt-popular")
    agent.train(steps=12)
    rows.append(["poisonrec", int(agent.result.best_reward)])

    rows.sort(key=lambda row: -row[1])
    print(format_table(["method", "RecNum"], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "covisitation")
