"""Quickstart: attack a black-box recommender with PoisonRec.

Builds a small Steam-like dataset, stands up a BPR recommender behind the
black-box interface, trains the PoisonRec agent for a handful of steps and
reports how far the target items were promoted.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (BlackBoxEnvironment, PoisonRec, PoisonRecConfig,
                   RecommenderSystem, load_dataset)


def main() -> None:
    # 1. A recommender system the attacker cannot see inside.
    dataset = load_dataset("steam", scale="ci", seed=0)
    system = RecommenderSystem(dataset, "bpr", seed=0)
    env = BlackBoxEnvironment(system)
    print(f"System under attack: {system}")
    print(f"Attacker knowledge: {env.num_items} items, "
          f"{len(env.target_items)} targets, popularity vector, "
          "RecNum signal. Nothing else.")
    print(f"Clean RecNum (no poisoning): {env.clean_recnum()}")

    # 2. The PoisonRec agent with the paper's full method (BCBT-Popular).
    config = PoisonRecConfig.ci(num_attackers=20, trajectory_length=20,
                                seed=0)
    agent = PoisonRec(env, config, action_space="bcbt-popular")

    # 3. Train: inject fake trajectories, observe RecNum, improve via PPO.
    print("\nstep  mean_RecNum  max_RecNum")
    agent.train(steps=10, callback=lambda s: print(
        f"{s.step:4d}  {s.mean_reward:11.1f}  {s.max_reward:10.0f}"))

    # 4. Inspect what was learned.
    result = agent.result
    print(f"\nBest observed RecNum: {result.best_reward:.0f}")
    ratio = agent.target_click_ratio()
    print(f"Learned target-click ratio: {ratio:.2f}")
    if result.best_trajectories:
        first = result.best_trajectories[0]
        labeled = ["T" if i >= env.num_original_items else str(i)
                   for i in first]
        print(f"Best trajectory of attacker 0 (T = target item): "
              f"{' '.join(labeled)}")


if __name__ == "__main__":
    main()
