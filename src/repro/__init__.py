"""PoisonRec reproduction: adaptive data poisoning attacks on black-box
recommender systems (Song et al., ICDE 2020).

Quickstart
----------
>>> from repro import load_dataset, RecommenderSystem, BlackBoxEnvironment
>>> from repro import PoisonRec, PoisonRecConfig
>>> dataset = load_dataset("steam", scale="ci", seed=0)
>>> system = RecommenderSystem(dataset, "bpr", seed=0)
>>> env = BlackBoxEnvironment(system)
>>> agent = PoisonRec(env, PoisonRecConfig.ci(), action_space="bcbt-popular")
>>> result = agent.train(steps=5)
"""

from .core import (PoisonRec, PoisonRecConfig, TrainResult, build_bcbt,
                   make_action_space)
from .data import Dataset, InteractionLog, load_dataset
from .obs import (MetricsRegistry, RunTelemetry, Tracer, load_run,
                  phase_rollup, write_chrome_trace)
from .perf import QueryPool, QueryProfiler
from .recsys import (RANKER_NAMES, BlackBoxEnvironment, RecommenderSystem,
                     make_ranker)
from .runtime import (FaultPlan, FaultyEnvironment, ResilienceConfig,
                      load_campaign, save_campaign)

__version__ = "1.0.0"

__all__ = [
    "PoisonRec", "PoisonRecConfig", "TrainResult", "build_bcbt",
    "make_action_space",
    "Dataset", "InteractionLog", "load_dataset",
    "RANKER_NAMES", "BlackBoxEnvironment", "RecommenderSystem", "make_ranker",
    "FaultPlan", "FaultyEnvironment", "ResilienceConfig",
    "load_campaign", "save_campaign",
    "QueryPool", "QueryProfiler",
    "MetricsRegistry", "RunTelemetry", "Tracer", "load_run",
    "phase_rollup", "write_chrome_trace",
    "__version__",
]
