"""effectcheck — cross-procedural purity/effect analysis for repro.

The static half of the effect-contract system declared in
:mod:`repro.effects`.  It indexes the package source (:mod:`.index`),
infers per-function effect summaries and propagates them bottom-up over
the call graph (:mod:`.summaries`), then enforces the bit-exactness
rules REP009-REP012 (:mod:`.rules`): sanctioned mutation channels,
snapshot coverage of every reward-query effect, fork safety of
pool-shipped objects, and ``@pure``/``@mutates`` contract conformance.

Run it via ``python -m repro.devtools.effectcheck`` or as part of the
aggregate ``python -m repro check`` gate.
"""

from .cli import analyze_package, main, run_self_test
from .index import PackageIndex
from .rules import Diagnostic, check_all
from .summaries import Effect, FunctionSummary, build_summaries

__all__ = [
    "analyze_package", "main", "run_self_test", "PackageIndex",
    "Diagnostic", "check_all", "Effect", "FunctionSummary",
    "build_summaries",
]
