"""effectcheck CLI — static purity/effect verification for ``repro``.

Usage::

    python -m repro.devtools.effectcheck                 # analyze src/repro
    python -m repro.devtools.effectcheck --rules         # describe rules
    python -m repro.devtools.effectcheck --format=json   # machine-readable
    python -m repro.devtools.effectcheck --self-test     # planted-mutation
                                                         # end-to-end check

A diagnostic can be silenced with a trailing comment on the offending
line::

    self._cache[key] = value  # effectcheck: disable=REP012

``# effectcheck: disable`` (no rule ids) silences every rule there.

``--self-test`` proves the analyzer end-to-end without executing any
repro code: it copies the analyzed tree, plants a hidden in-place write
inside ``ItemPop.score``, and requires the doctored copy to fail with a
REP012 at the exact planted line — both directly and through the
inherited ``RecommenderSystem.recommend`` call chain.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import (EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL,
                      SuppressionFilter, describe_rules, display_path,
                      exit_code, json_report, render_chain_text)
from ..common import rule_statistics as _common_statistics
from .index import PackageIndex
from .rules import Diagnostic, check_all
from .summaries import FunctionSummary, build_summaries

_RULES = (
    ("REP009", "sanctioned mutation channels",
     "ranker/log state may only change through assign_, snapshot "
     "restore, splice/unsplice or poison_revert"),
    ("REP010", "snapshot coverage",
     "state written or RNG streams drawn on the reward-query path must "
     "be captured by RankerSnapshot, or restore breaks bit-exactness"),
    ("REP011", "fork safety",
     "objects shipped to QueryPool workers must not hold open handles, "
     "locks or live generators"),
    ("REP012", "effect contracts",
     "@pure/@mutates declarations are verified against cross-procedural "
     "effect summaries; protocol methods must carry one"),
)


def default_root() -> Path:
    """The ``repro`` package directory this module is installed in."""
    return Path(__file__).resolve().parents[2]


def analyze_package(root: Path, package: str = "repro"
                    ) -> Tuple[PackageIndex, Dict[str, FunctionSummary],
                               List[Diagnostic]]:
    """Index, summarize and rule-check one package tree."""
    index = PackageIndex(Path(root), package)
    summaries = build_summaries(index)
    filters = {module.path: SuppressionFilter("effectcheck",
                                              module.source_lines)
               for module in index.modules.values()}
    diagnostics = []
    for diag in check_all(index, summaries):
        suppressions = filters.get(diag.path)
        if suppressions is not None \
                and suppressions.covers(diag.rule, diag.line):
            continue
        diagnostics.append(diag)
    return index, summaries, diagnostics


def _render_text(diagnostics: Sequence[Diagnostic]) -> None:
    render_chain_text(diagnostics)


def rule_statistics(diagnostics: Sequence[Diagnostic]) -> dict:
    """Diagnostic counts per rule id, covering every rule."""
    return _common_statistics(diagnostics,
                              [rule_id for rule_id, _, _ in _RULES])


def _render_json(diagnostics: Sequence[Diagnostic],
                 index: PackageIndex) -> str:
    rows = [{"path": display_path(d.path), "line": d.line,
             "rule": d.rule, "message": d.message, "chain": list(d.chain)}
            for d in diagnostics]
    return json_report(rows, rule_statistics(diagnostics),
                       modules_checked=len(index.modules),
                       functions_summarized=len(index.functions))


# ----------------------------------------------------------------------
# Planted-mutation self-test
# ----------------------------------------------------------------------
def _plant_mutation(root: Path) -> Tuple[Path, int]:
    """Insert a hidden in-place write into ``ItemPop.score``.

    Returns the doctored file and the 1-based line of the planted write.
    """
    import ast

    target = root / "recsys" / "itempop.py"
    source = target.read_text(encoding="utf-8")
    tree = ast.parse(source)
    score: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "ItemPop":
            for child in node.body:
                if isinstance(child, ast.FunctionDef) \
                        and child.name == "score":
                    score = child
    if score is None:
        raise RuntimeError("self-test: ItemPop.score not found")
    anchor = score.body[-1].lineno  # plant just before the return
    lines = source.splitlines(keepends=True)
    indent = " " * score.body[-1].col_offset
    lines.insert(anchor - 1, f"{indent}self.counts[0] += 1.0\n")
    target.write_text("".join(lines), encoding="utf-8")
    return target, anchor


def run_self_test() -> int:
    """Copy the tree, plant a mutation, require exact-line detection."""
    source_root = default_root()
    with tempfile.TemporaryDirectory(prefix="effectcheck-") as scratch:
        copy_root = Path(scratch) / "repro"
        shutil.copytree(source_root, copy_root,
                        ignore=shutil.ignore_patterns("__pycache__"))
        planted_path, planted_line = _plant_mutation(copy_root)
        _, _, diagnostics = analyze_package(copy_root)
        at_plant = [d for d in diagnostics
                    if d.path == str(planted_path)
                    and d.line == planted_line and d.rule == "REP012"]
        direct = [d for d in at_plant
                  if not d.chain and "counts" in d.message]
        chained = [d for d in at_plant
                   if any("recommend" in frame for frame in d.chain)]
        if direct and chained:
            print("effectcheck --self-test: planted mutation in "
                  f"ItemPop.score caught at itempop.py:{planted_line} "
                  f"({len(at_plant)} diagnostics, call chain through "
                  "RecommenderSystem.recommend)", file=sys.stderr)
            return 0
        print("effectcheck --self-test: FAILED — planted mutation at "
              f"itempop.py:{planted_line} not fully detected "
              f"(direct={len(direct)}, chained={len(chained)})",
              file=sys.stderr)
        _render_text(at_plant)
        return 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.effectcheck",
        description="effectcheck: cross-procedural purity/effect "
                    "verification")
    parser.add_argument("--root", default=None,
                        help="package directory to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--package", default="repro",
                        help="dotted package name of --root")
    parser.add_argument("--rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (json suppresses the human "
                             "report; exit codes are unchanged)")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule diagnostic counts")
    parser.add_argument("--self-test", action="store_true",
                        help="plant a hidden mutation in a copy of the "
                             "source and require exact-line detection")
    args = parser.parse_args(argv)
    if args.rules:
        describe_rules(_RULES)
        return EXIT_CLEAN
    if args.self_test:
        return run_self_test()
    root = Path(args.root) if args.root else default_root()
    if not root.is_dir():
        print(f"effectcheck: no such directory: {root}", file=sys.stderr)
        return EXIT_INTERNAL
    index, summaries, diagnostics = analyze_package(root, args.package)
    if index.errors:
        for error in index.errors:
            print(f"effectcheck: {error}", file=sys.stderr)
        return EXIT_INTERNAL
    if args.format == "json":
        print(_render_json(diagnostics, index))
        return exit_code(diagnostics)
    _render_text(diagnostics)
    if args.statistics:
        for rule_id, count in sorted(rule_statistics(diagnostics).items()):
            print(f"{rule_id}  {count}")
    if diagnostics:
        files = len({d.path for d in diagnostics})
        print(f"effectcheck: {len(diagnostics)} error(s) in {files} "
              f"file(s) ({len(index.modules)} modules, "
              f"{len(index.functions)} functions)", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"effectcheck: clean ({len(index.modules)} modules, "
          f"{len(index.functions)} functions summarized)",
          file=sys.stderr)
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
