"""Static package index for the effect analyzer.

Parses every module of a package into a queryable model: modules with
their import maps, classes with a C3-lite method-resolution order, and
functions/methods with their effect-contract decorators.  Everything is
derived from the AST — the analyzed package is never imported, which is
what lets the planted-mutation self-test analyze a doctored copy of the
source without executing it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Decorator names recognized as effect contracts (``repro.effects``).
_PURE_NAMES = {"pure"}
_MUTATES_NAMES = {"mutates"}
_CHANNEL_NAMES = {"sanctioned_channel"}
_ABSTRACT_NAMES = {"abstractmethod"}

#: Constructor calls whose result is fork-unsafe to ship to pool workers
#: (REP011): live OS handles, locks and threads do not survive
#: ``fork`` + copy-on-write cleanly.
FORK_UNSAFE_FACTORIES = {
    "open", "fdopen", "FileIO", "TextIOWrapper", "BufferedReader",
    "BufferedWriter", "socket", "create_connection", "Lock", "RLock",
    "Condition", "Event", "Semaphore", "BoundedSemaphore", "Barrier",
    "Thread", "Process", "Pool", "Queue", "SimpleQueue", "Popen", "mmap",
    "TemporaryFile", "NamedTemporaryFile", "connect",
}


def decorator_terminal_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a decorator expression.

    ``@pure`` → ``pure``; ``@effects.mutates("x")`` → ``mutates``;
    ``@shape_spec("...")`` → ``shape_spec``.
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    name: str
    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    #: Effect contract: ``None`` undeclared, ``()`` pure, attrs otherwise.
    spec: Optional[Tuple[str, ...]] = None
    #: Source line of the contract decorator (for missing/violation diags).
    spec_line: int = 0
    channel: bool = False
    is_abstract: bool = False
    is_classmethod: bool = False
    is_staticmethod: bool = False
    is_property: bool = False

    @property
    def key(self) -> str:
        """Stable summary-table key (module-qualified name)."""
        return f"{self.module}.{self.qualname}"

    def receiver_name(self) -> Optional[str]:
        """The bound-instance parameter name (``self``), if any."""
        if self.cls is None or self.is_staticmethod or self.is_classmethod:
            return None
        args = self.node.args
        if args.posonlyargs:
            return args.posonlyargs[0].arg
        if args.args:
            return args.args[0].arg
        return None

    def param_names(self) -> List[str]:
        """Positional-or-keyword parameter names, receiver included."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]


@dataclass
class ClassInfo:
    """One analyzed class with its directly defined methods."""

    name: str
    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    base_refs: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> class qualnames assigned via ``self.attr = ClassName(...)``.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: self attributes assigned anywhere in this class's own methods.
    own_attrs: Set[str] = field(default_factory=set)
    #: self attributes assigned ``np.random.default_rng(...)``.
    rng_attrs: Set[str] = field(default_factory=set)
    #: (attr, line, what) for fork-unsafe constructor assignments.
    unsafe_attrs: List[Tuple[str, int, str]] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Stable class key (module-qualified name)."""
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed module: its tree, import map and top-level names."""

    dotted: str
    path: str
    tree: ast.Module
    source_lines: List[str]
    #: local name -> dotted target (``np`` -> ``numpy``,
    #: ``Ranker`` -> ``repro.recsys.base.Ranker``).
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


class PackageIndex:
    """Whole-package static model with name/method resolution helpers."""

    def __init__(self, root: Path, package: Optional[str] = None) -> None:
        self.root = Path(root)
        self.package = package or self.root.name
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> classes defining it (class-hierarchy analysis).
        self.method_definers: Dict[str, List[ClassInfo]] = {}
        self.errors: List[str] = []
        self._mro_cache: Dict[str, List[ClassInfo]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            dotted = self._dotted_for(path)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, OSError) as exc:
                self.errors.append(f"{path}: {exc}")
                continue
            info = ModuleInfo(dotted=dotted, path=str(path), tree=tree,
                              source_lines=source.splitlines())
            self._collect_imports(info)
            self._collect_definitions(info)
            self.modules[dotted] = info
        for module in self.modules.values():
            for cls in module.classes.values():
                self._scan_class_attrs(cls, module)

    def _dotted_for(self, path: Path) -> str:
        relative = path.relative_to(self.root).with_suffix("")
        parts = [self.package] + list(relative.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(module.dotted, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}"

    def _resolve_from(self, dotted: str, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: walk up from the *package* containing dotted.
        parts = dotted.split(".")
        is_package = dotted in self.modules or not parts[-1:] or \
            (self.root / Path(*parts[1:]) / "__init__.py").exists() or \
            dotted == self.package
        anchor = parts if is_package else parts[:-1]
        anchor = anchor[:len(anchor) - (node.level - 1)]
        base = ".".join(anchor)
        return f"{base}.{node.module}" if node.module else base

    def _collect_definitions(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                cls = ClassInfo(name=node.name,
                                qualname=node.name,
                                module=module.dotted,
                                path=module.path,
                                node=node)
                for base in node.bases:
                    ref = dotted_name(base)
                    if ref:
                        cls.base_refs.append(ref)
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        fn = self._function_info(child, module, cls)
                        cls.methods[child.name] = fn
                        self.functions[fn.key] = fn
                        self.method_definers.setdefault(
                            child.name, []).append(cls)
                module.classes[node.name] = cls
                self.classes[cls.key] = cls
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._function_info(node, module, None)
                module.functions[node.name] = fn
                self.functions[fn.key] = fn

    def _function_info(self, node: ast.AST, module: ModuleInfo,
                       cls: Optional[ClassInfo]) -> FunctionInfo:
        qualname = node.name if cls is None else f"{cls.name}.{node.name}"
        fn = FunctionInfo(name=node.name, qualname=qualname,
                          module=module.dotted, path=module.path,
                          node=node, cls=cls)
        for decorator in node.decorator_list:
            name = decorator_terminal_name(decorator)
            if name in _PURE_NAMES:
                fn.spec = ()
                fn.spec_line = decorator.lineno
            elif name in _MUTATES_NAMES and isinstance(decorator, ast.Call):
                attrs = tuple(arg.value for arg in decorator.args
                              if isinstance(arg, ast.Constant)
                              and isinstance(arg.value, str))
                fn.spec = attrs
                fn.spec_line = decorator.lineno
            elif name in _CHANNEL_NAMES:
                fn.channel = True
            elif name in _ABSTRACT_NAMES:
                fn.is_abstract = True
            elif name == "classmethod":
                fn.is_classmethod = True
            elif name == "staticmethod":
                fn.is_staticmethod = True
            elif name == "property":
                fn.is_property = True
        return fn

    def _scan_class_attrs(self, cls: ClassInfo, module: ModuleInfo) -> None:
        for fn in cls.methods.values():
            receiver = fn.receiver_name()
            if receiver is None:
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    # AugAssign mutates the existing value; its RHS says
                    # nothing about the attribute's type.
                    targets = [node.target]
                    value = node.value if isinstance(node,
                                                     ast.AnnAssign) else None
                else:
                    continue
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == receiver):
                        continue
                    cls.own_attrs.add(target.attr)
                    if value is not None:
                        self._classify_attr_value(cls, module, target.attr,
                                                  value)

    def _classify_attr_value(self, cls: ClassInfo, module: ModuleInfo,
                             attr: str, value: ast.expr) -> None:
        if isinstance(value, ast.GeneratorExp):
            cls.unsafe_attrs.append((attr, value.lineno, "live generator"))
            return
        if not isinstance(value, ast.Call):
            return
        terminal = decorator_terminal_name(value.func)
        if terminal == "default_rng":
            cls.rng_attrs.add(attr)
            return
        if terminal == "iter":
            cls.unsafe_attrs.append(
                (attr, value.lineno, "live iterator (iter(...))"))
            return
        if terminal in FORK_UNSAFE_FACTORIES:
            cls.unsafe_attrs.append(
                (attr, value.lineno, f"{terminal}(...) handle"))
            return
        ref = dotted_name(value.func)
        if ref:
            resolved = self.resolve_class(module.dotted, ref)
            if resolved is not None:
                cls.attr_types.setdefault(attr, set()).add(resolved.key)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, module_dotted: str, ref: str) -> Optional[str]:
        """Resolve a (possibly dotted) local name to a package-level key."""
        module = self.modules.get(module_dotted)
        if module is None:
            return None
        head, _, rest = ref.partition(".")
        if head in module.classes or head in module.functions:
            target = f"{module_dotted}.{head}"
        elif head in module.imports:
            target = module.imports[head]
        else:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve_class(self, module_dotted: str,
                      ref: str) -> Optional[ClassInfo]:
        """Resolve a local class reference to its :class:`ClassInfo`."""
        target = self.resolve(module_dotted, ref)
        if target is None:
            return None
        cls = self.classes.get(target)
        if cls is not None:
            return cls
        # ``from .base import Ranker`` resolves through re-exporting
        # __init__ modules: fall back to matching by trailing class name.
        tail = target.rsplit(".", 1)[-1]
        candidates = [c for c in self.classes.values() if c.name == tail]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_function(self, module_dotted: str,
                         ref: str) -> Optional[FunctionInfo]:
        """Resolve a local function reference to its :class:`FunctionInfo`."""
        target = self.resolve(module_dotted, ref)
        if target is None:
            return None
        fn = self.functions.get(target)
        if fn is not None:
            return fn
        tail = target.rsplit(".", 1)[-1]
        candidates = [f for f in self.functions.values()
                      if f.cls is None and f.name == tail]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Linearized ancestry (the class first), cycle-safe."""
        cached = self._mro_cache.get(cls.key)
        if cached is not None:
            return cached
        order: List[ClassInfo] = []
        seen: Set[str] = set()

        def visit(current: ClassInfo) -> None:
            if current.key in seen:
                return
            seen.add(current.key)
            order.append(current)
            for ref in current.base_refs:
                base = self.resolve_class(current.module, ref)
                if base is not None:
                    visit(base)

        visit(cls)
        self._mro_cache[cls.key] = order
        return order

    def find_method(self, cls: ClassInfo,
                    name: str) -> Optional[FunctionInfo]:
        """Nearest definition of ``name`` along the MRO."""
        for ancestor in self.mro(cls):
            fn = ancestor.methods.get(name)
            if fn is not None:
                return fn
        return None

    def find_spec(self, cls: ClassInfo,
                  name: str) -> Optional[Tuple[str, ...]]:
        """Nearest effect contract for method ``name`` along the MRO.

        Contracts inherit: an undecorated override is checked against the
        closest ancestor's declaration.
        """
        for ancestor in self.mro(cls):
            fn = ancestor.methods.get(name)
            if fn is not None and fn.spec is not None:
                return fn.spec
        return None

    def subclasses(self, cls: ClassInfo) -> List[ClassInfo]:
        """Every indexed class with ``cls`` in its ancestry (cls excluded)."""
        return [c for c in self.classes.values()
                if c.key != cls.key
                and any(a.key == cls.key for a in self.mro(c))]

    def defining_classes(self, method: str) -> List[ClassInfo]:
        """All classes defining ``method`` (class-hierarchy analysis)."""
        return self.method_definers.get(method, [])

    def merged_rng_attrs(self, cls: ClassInfo) -> Set[str]:
        """RNG-generator attributes across the MRO."""
        attrs: Set[str] = set()
        for ancestor in self.mro(cls):
            attrs |= ancestor.rng_attrs
        return attrs

    def merged_attr_types(self, cls: ClassInfo) -> Dict[str, Set[str]]:
        """Attribute type hints across the MRO."""
        merged: Dict[str, Set[str]] = {}
        for ancestor in self.mro(cls):
            for attr, types in ancestor.attr_types.items():
                merged.setdefault(attr, set()).update(types)
        return merged

    def merged_own_attrs(self, cls: ClassInfo) -> Set[str]:
        """Self attributes assigned anywhere in the MRO."""
        attrs: Set[str] = set()
        for ancestor in self.mro(cls):
            attrs |= ancestor.own_attrs
        return attrs

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """All indexed functions and methods."""
        return iter(self.functions.values())
