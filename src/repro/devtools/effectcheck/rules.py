"""Effect rules REP009-REP012 over propagated function summaries.

================  =====================================================
REP009            ranker/log state mutated outside a sanctioned channel
REP010            RNG/state effect on a snapshot-restored object that
                  ``RankerSnapshot`` does not capture
REP011            fork-unsafe state reachable from objects shipped to
                  ``QueryPool`` workers
REP012            ``@pure`` / ``@mutates`` contract violated or missing
                  on a protocol method
================  =====================================================

The rules consume only static facts: :class:`PackageIndex` for classes
and contracts, :func:`build_summaries` for transitive effects.  Nothing
is imported from the analyzed package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .index import ClassInfo, PackageIndex, dotted_name
from .summaries import SELF, Effect, FunctionSummary

#: Methods that must carry an effect contract, by anchor class.  The
#: ``Ranker`` entries are enforced on every concrete subclass (via MRO
#: inheritance a base-class contract satisfies them).
PROTOCOL_METHODS: Dict[str, Tuple[str, ...]] = {
    "Ranker": ("fit", "score", "score_batch", "poison_update",
               "poison_revert", "restore"),
    "InteractionLog": ("splice", "unsplice"),
    "RecommenderSystem": ("recommend",),
    "RankerSnapshot": ("capture",),
}

#: Attributes protected by REP009 beyond the per-ranker state attrs.
_ALWAYS_PROTECTED = {"rng", "_sequences"}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored at the leaf mutation site."""

    path: str
    line: int
    rule: str
    message: str
    chain: Tuple[str, ...] = ()

    def sort_key(self) -> Tuple[str, int, str]:
        """Stable ordering: path, then line, then rule id."""
        return (self.path, self.line, self.rule)


@dataclass
class RuleContext:
    """Shared lookups: anchor classes, protected attrs, captured RNG."""

    index: PackageIndex
    summaries: Dict[str, FunctionSummary]
    ranker_cls: Optional[ClassInfo] = None
    protected_attrs: Set[str] = field(default_factory=set)
    captured_rng: Set[str] = field(default_factory=set)

    @classmethod
    def build(cls, index: PackageIndex,
              summaries: Dict[str, FunctionSummary]) -> "RuleContext":
        ctx = cls(index=index, summaries=summaries)
        ctx.ranker_cls = _class_named(index, "Ranker")
        if ctx.ranker_cls is not None:
            for ranker in _concrete_rankers(index, ctx.ranker_cls):
                ctx.protected_attrs |= _state_attrs(ctx, ranker)
        ctx.protected_attrs |= _ALWAYS_PROTECTED
        snapshot = _class_named(index, "RankerSnapshot")
        if snapshot is not None:
            ctx.captured_rng = _captured_rng_attrs(index, snapshot)
        return ctx


def _class_named(index: PackageIndex, name: str) -> Optional[ClassInfo]:
    matches = [c for c in index.classes.values() if c.name == name]
    return matches[0] if len(matches) == 1 else None


def _concrete_rankers(index: PackageIndex,
                      ranker: ClassInfo) -> List[ClassInfo]:
    """Ranker subclasses implementing the state protocol."""
    return [c for c in index.subclasses(ranker)
            if "_state" in c.methods or "_set_state" in c.methods]


def _state_attrs(ctx: RuleContext, ranker: ClassInfo) -> Set[str]:
    """The snapshot-managed attributes of one ranker class."""
    attrs: Set[str] = set()
    setter = ranker.methods.get("_set_state")
    if setter is not None:
        summary = ctx.summaries.get(setter.key)
        if summary is not None:
            for effect in summary.effects.values():
                kind, name = effect.root
                if kind == "self" and name:
                    attrs.add(name)
    getter = ranker.methods.get("_state")
    if getter is not None:
        summary = ctx.summaries.get(getter.key)
        if summary is not None:
            for kind, name in summary.returns_aliases:
                if kind == "self" and name:
                    attrs.add(name)
    return attrs


def _captured_rng_attrs(index: PackageIndex,
                        snapshot: ClassInfo) -> Set[str]:
    """RNG attributes ``RankerSnapshot.capture`` reads off the ranker.

    Parsed from the capture AST: every ``<ranker>.<attr>...`` chain whose
    first attribute is an RNG generator on any indexed class.
    """
    capture = snapshot.methods.get("capture")
    if capture is None:
        return set()
    params = capture.param_names()
    skip = 1 if capture.is_classmethod else 0
    if len(params) <= skip:
        return set()
    ranker_param = params[skip]
    rng_union: Set[str] = set()
    for cls in index.classes.values():
        rng_union |= cls.rng_attrs
    captured: Set[str] = set()
    for node in ast.walk(capture.node):
        if isinstance(node, ast.Attribute):
            ref = dotted_name(node)
            if ref is None:
                continue
            parts = ref.split(".")
            if parts[0] == ranker_param and len(parts) > 1 \
                    and parts[1] in rng_union:
                captured.add(parts[1])
    return captured


# ----------------------------------------------------------------------
# REP012: contract conformance + missing protocol contracts
# ----------------------------------------------------------------------
def check_contracts(ctx: RuleContext) -> List[Diagnostic]:
    """REP012: verify @pure/@mutates declarations, flag missing ones."""
    diagnostics: List[Diagnostic] = []
    for summary in ctx.summaries.values():
        fn = summary.fn
        if fn.is_abstract:
            continue
        spec = fn.spec
        if spec is None and fn.cls is not None:
            spec = ctx.index.find_spec(fn.cls, fn.name)
        if spec is None:
            continue
        declared = "@pure" if spec == () else \
            "@mutates(%s)" % ", ".join(repr(a) for a in spec)
        for effect in summary.effects.values():
            if not _violates(spec, effect):
                continue
            diagnostics.append(Diagnostic(
                path=effect.path, line=effect.line, rule="REP012",
                message=(f"'{fn.qualname}' is declared {declared} but "
                         f"performs an undeclared "
                         f"{_describe_effect(effect)}"),
                chain=effect.chain))
    diagnostics.extend(_check_missing_contracts(ctx))
    return diagnostics


def _violates(spec: Tuple[str, ...], effect: Effect) -> bool:
    if "*" in spec:
        return False
    kind, name = effect.root
    if kind == "self" and name is not None:
        return name not in spec
    # Mutation through a parameter (or the bare instance) is never
    # covered by an attribute list; only "*" admits it.
    return True


def _describe_effect(effect: Effect) -> str:
    kind, name = effect.root
    target = f"self.{name}" if kind == "self" and name else \
        f"parameter '{name}'" if kind == "param" else "self"
    verb = "RNG draw on" if effect.kind == "rng" else "write to"
    return f"{verb} {target} [{effect.detail}]"


def _check_missing_contracts(ctx: RuleContext) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for anchor_name, methods in PROTOCOL_METHODS.items():
        anchor = _class_named(ctx.index, anchor_name)
        if anchor is None:
            continue
        targets = [anchor]
        if anchor_name == "Ranker":
            targets = _concrete_rankers(ctx.index, anchor)
        for cls in targets:
            for method in methods:
                fn = ctx.index.find_method(cls, method)
                if fn is None or fn.is_abstract:
                    continue
                if ctx.index.find_spec(cls, method) is None:
                    diagnostics.append(Diagnostic(
                        path=fn.path, line=fn.node.lineno, rule="REP012",
                        message=(f"protocol method '{cls.name}.{method}' "
                                 f"has no effect contract; declare @pure "
                                 f"or @mutates(...)")))
    return diagnostics


# ----------------------------------------------------------------------
# REP009: protected state mutated outside sanctioned channels
# ----------------------------------------------------------------------
def check_channels(ctx: RuleContext) -> List[Diagnostic]:
    """REP009: protected state mutated outside a sanctioned channel."""
    diagnostics: List[Diagnostic] = []
    for summary in ctx.summaries.values():
        fn = summary.fn
        if fn.channel or fn.name in ("__init__", "_set_state"):
            continue
        for effect in summary.direct_effects():
            if effect.kind != "write" or effect.attr is None:
                continue
            if effect.attr not in ctx.protected_attrs:
                continue
            kind, name = effect.root
            foreign = (kind == "param"
                       or (kind == "self" and name != effect.attr))
            if not foreign:
                continue
            diagnostics.append(Diagnostic(
                path=effect.path, line=effect.line, rule="REP009",
                message=(f"'{fn.qualname}' mutates protected state "
                         f"'{effect.attr}' of a foreign object "
                         f"[{effect.detail}]; route it through a "
                         f"sanctioned channel (assign_, restore, "
                         f"splice/unsplice, poison_revert)")))
    return diagnostics


# ----------------------------------------------------------------------
# REP010: effects outside the snapshot's captured-state list
# ----------------------------------------------------------------------
def check_snapshot_coverage(ctx: RuleContext) -> List[Diagnostic]:
    """REP010: reward-path effects RankerSnapshot does not capture."""
    diagnostics: List[Diagnostic] = []
    if ctx.ranker_cls is None:
        return diagnostics
    checked = ("poison_update", "poison_revert", "score", "score_batch")
    for ranker in _concrete_rankers(ctx.index, ctx.ranker_cls):
        restored = _state_attrs(ctx, ranker) | ctx.captured_rng
        for method in checked:
            fn = ranker.methods.get(method)  # own definitions only
            if fn is None:
                continue
            summary = ctx.summaries.get(fn.key)
            if summary is None:
                continue
            for effect in summary.effects.values():
                kind, name = effect.root
                if kind != "self" or name is None:
                    continue
                if name in restored:
                    continue
                if effect.kind == "rng" and name in ctx.captured_rng:
                    continue
                what = ("RNG stream drawn from" if effect.kind == "rng"
                        else "state written through")
                diagnostics.append(Diagnostic(
                    path=effect.path, line=effect.line, rule="REP010",
                    message=(f"'{fn.qualname}' has {what} self.{name}, "
                             f"which RankerSnapshot does not capture "
                             f"(restored set: "
                             f"{sorted(restored) or ['<empty>']}); "
                             f"snapshot restore cannot undo this"),
                    chain=effect.chain))
    return diagnostics


# ----------------------------------------------------------------------
# REP011: fork-unsafe state reachable from pool-shipped objects
# ----------------------------------------------------------------------
#: Classes whose instances cross the fork boundary into pool workers.
POOL_SHIPPED_SEEDS = ("RecommenderSystem", "BlackBoxEnvironment",
                      "InteractionLog", "RankerSnapshot", "Dataset")
POOL_SHIPPED_BASES = ("Ranker", "CandidateGenerator")


def check_fork_safety(ctx: RuleContext) -> List[Diagnostic]:
    """REP011: fork-unsafe state reachable from pool-shipped objects."""
    reachable: Dict[str, ClassInfo] = {}
    frontier: List[ClassInfo] = []
    for name in POOL_SHIPPED_SEEDS:
        cls = _class_named(ctx.index, name)
        if cls is not None:
            frontier.append(cls)
    for name in POOL_SHIPPED_BASES:
        base = _class_named(ctx.index, name)
        if base is not None:
            frontier.extend([base] + ctx.index.subclasses(base))
    while frontier:
        cls = frontier.pop()
        if cls.key in reachable:
            continue
        reachable[cls.key] = cls
        for types in ctx.index.merged_attr_types(cls).values():
            for type_key in types:
                attr_cls = ctx.index.classes.get(type_key)
                if attr_cls is not None and attr_cls.key not in reachable:
                    frontier.append(attr_cls)
    diagnostics: List[Diagnostic] = []
    for cls in reachable.values():
        for attr, line, what in cls.unsafe_attrs:
            diagnostics.append(Diagnostic(
                path=cls.path, line=line, rule="REP011",
                message=(f"'{cls.name}.{attr}' holds {what}: instances "
                         f"of {cls.name} are shipped to QueryPool "
                         f"workers and this state does not survive "
                         f"fork")))
    return diagnostics


def check_all(index: PackageIndex,
              summaries: Dict[str, FunctionSummary]) -> List[Diagnostic]:
    """Run every effect rule; diagnostics sorted by location."""
    ctx = RuleContext.build(index, summaries)
    diagnostics = (check_contracts(ctx) + check_channels(ctx)
                   + check_snapshot_coverage(ctx)
                   + check_fork_safety(ctx))
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics
