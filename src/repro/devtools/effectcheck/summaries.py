"""Per-function effect summaries and bottom-up propagation.

Every function in the indexed package gets a :class:`FunctionSummary`:
the set of observable mutations it performs, each tracked back to a
*root* — the ``self`` attribute or parameter through which the mutated
object was reached — plus where the leaf write happens.  Summaries are
first extracted intra-procedurally with local alias tracking (a write
through ``row = self.covisits[prev]`` is a write of ``covisits``), then
propagated bottom-up over the call graph to a fixed point, so callers
inherit their callees' effects with the full call chain preserved.

Recognized mutation forms:

* attribute / subscript / slice assignment, augmented assignment and
  ``del``, through any alias of a ``self`` attribute or parameter;
* in-place NumPy calls (``np.copyto``, ``np.add.at``, ``out=`` kwargs);
* builtin container mutators (``append``, ``update``, ``pop``, ...) on
  aliased receivers;
* RNG stream draws: any method call on a ``default_rng`` attribute or an
  ``rng`` parameter is an effect of kind ``"rng"`` (a draw advances the
  stream — exactly the state :class:`RankerSnapshot` must capture).

Unresolvable method calls fall back to class-hierarchy analysis (union
over every indexed class defining that method); calls on provably fresh
objects (results of constructors or allocating NumPy calls) are
discarded, which keeps e.g. ``InteractionLog.copy`` pure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .index import ClassInfo, FunctionInfo, PackageIndex, dotted_name

#: Root meaning "the bound instance itself".
SELF: Tuple[str, Optional[str]] = ("self", None)

Root = Tuple[str, Optional[str]]

#: Builtins whose result aliases their argument(s).
ALIAS_BUILTINS = {"zip", "enumerate", "reversed", "iter", "list", "tuple",
                  "sorted", "filter", "vars", "dict"}

#: Method names whose result aliases the receiver (``d.get(k)`` hands out
#: the stored object, ``module.parameters()`` yields the live tensors).
ALIAS_METHODS = {"get", "setdefault", "items", "keys", "values",
                 "parameters"}

#: Builtin container/tensor mutators: calling one on an aliased receiver
#: is a write to the alias root.
MUTATOR_METHODS = {"append", "extend", "insert", "remove", "clear",
                   "update", "add", "discard", "pop", "popitem", "sort",
                   "reverse", "fill", "setflags", "sum_duplicates",
                   "setdiag", "step", "zero_grad", "backward", "assign_",
                   "load_state_dict", "shuffle", "splice", "unsplice"}

#: ``np.<name>(target, ...)`` functions mutating their first argument.
NP_INPLACE_FIRST_ARG = {"copyto", "put", "place", "fill_diagonal"}


@dataclass(frozen=True)
class Effect:
    """One observable mutation, anchored at its leaf write site."""

    kind: str                    # "write" | "rng"
    root: Root                   # ("self", attr) | ("param", name)
    attr: Optional[str]          # attribute name written at the leaf
    path: str
    line: int
    detail: str
    chain: Tuple[str, ...] = ()  # caller frames, outermost first

    @property
    def key(self) -> Tuple[str, Root, Optional[str]]:
        """Deduplication key within one summary."""
        return (self.kind, self.root, self.attr)


@dataclass
class CallSite:
    """One resolved call edge inside a function body."""

    callees: Tuple[str, ...]               # FunctionInfo keys
    receiver_roots: Optional[FrozenSet[Root]]
    argmaps: Dict[str, Dict[str, FrozenSet[Root]]]  # callee key -> map
    line: int


@dataclass
class FunctionSummary:
    """Inferred effects plus call/alias facts for one function."""

    fn: FunctionInfo
    effects: Dict[Tuple[str, Root, Optional[str]], Effect] = \
        field(default_factory=dict)
    returns_aliases: FrozenSet[Root] = frozenset()
    call_sites: List[CallSite] = field(default_factory=list)

    def add(self, effect: Effect) -> bool:
        """Record ``effect`` unless an equivalent one is already known."""
        if effect.key in self.effects:
            return False
        self.effects[effect.key] = effect
        return True

    def direct_effects(self) -> List[Effect]:
        """Effects whose leaf write is in this very function."""
        return [e for e in self.effects.values() if not e.chain]


class _Analyzer:
    """Single-function intra-procedural effect extraction."""

    def __init__(self, index: PackageIndex, fn: FunctionInfo,
                 alias_table: Dict[str, FrozenSet[Root]]) -> None:
        self.index = index
        self.fn = fn
        self.alias_table = alias_table
        self.summary = FunctionSummary(fn=fn)
        self.env: Dict[str, FrozenSet[Root]] = {}
        self.receiver = fn.receiver_name()
        self.rng_params: Set[str] = set()
        self.cls_rng_attrs: Set[str] = (
            index.merged_rng_attrs(fn.cls) if fn.cls else set())
        self.cls_attr_types: Dict[str, Set[str]] = (
            index.merged_attr_types(fn.cls) if fn.cls else {})
        self._site_cache: Dict[int, Optional[CallSite]] = {}
        self._returns: Set[Root] = set()

    # ------------------------------------------------------------------
    def run(self) -> FunctionSummary:
        """Extract this function's summary."""
        node = self.fn.node
        for name in self.fn.param_names():
            if name == self.receiver:
                self.env[name] = frozenset({SELF})
            else:
                self.env[name] = frozenset({("param", name)})
        for arg in (node.args.posonlyargs + node.args.args
                    + node.args.kwonlyargs):
            annotation = ast.dump(arg.annotation) if arg.annotation else ""
            if arg.arg == "rng" or "Generator" in annotation:
                self.rng_params.add(arg.arg)
        for stmt in node.body:
            self._statement(stmt)
        self.summary.returns_aliases = frozenset(self._returns)
        return self.summary

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _statements(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        self._scan_own_expressions(stmt)
        if isinstance(stmt, ast.Assign):
            roots = self._roots(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, roots, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_target(stmt.target, self._roots(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            value_roots = self._roots(stmt.value)
            self._augmented_target(stmt.target, value_roots, stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(target, stmt, "del")
        elif isinstance(stmt, ast.For):
            self._bind_target(stmt.target, self._roots(stmt.iter), stmt)
            # Two passes so aliases established late in the body are seen
            # by mutations earlier in the next iteration.
            self._statements(stmt.body)
            self._statements(stmt.body)
            self._statements(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._statements(stmt.body)
            self._statements(stmt.body)
            self._statements(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._statements(stmt.body)
            self._statements(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars,
                                      self._roots(item.context_expr), stmt)
            self._statements(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._statements(stmt.body)
            for handler in stmt.handlers:
                self._statements(handler.body)
            self._statements(stmt.orelse)
            self._statements(stmt.finalbody)

    def _scan_own_expressions(self, stmt: ast.stmt) -> None:
        """Handle calls/yields in the statement's own expressions."""
        for value in ast.iter_child_nodes(stmt):
            if not isinstance(value, ast.expr):
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Call):
                    self._call(node)
                elif isinstance(node, (ast.Yield, ast.YieldFrom)) \
                        and node.value is not None:
                    self._returns |= self._roots(node.value)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._returns |= self._roots(stmt.value)

    # ------------------------------------------------------------------
    # Targets and writes
    # ------------------------------------------------------------------
    def _bind_target(self, target: ast.expr,
                     roots: FrozenSet[Root], stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = roots
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, roots, stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, roots, stmt)
        else:
            self._write_target(target, stmt, "assignment")

    def _augmented_target(self, target: ast.expr,
                          value_roots: FrozenSet[Root],
                          stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            # ``table -= lr * grad`` mutates in place when ``table``
            # aliases an array; the name also keeps its aliases.
            existing = self.env.get(target.id, frozenset())
            for root in existing:
                self._record_write(root, self._target_attr(target, root),
                                   stmt, "augmented assignment")
            self.env[target.id] = existing | value_roots
        else:
            self._write_target(target, stmt, "augmented assignment")

    def _write_target(self, target: ast.expr, stmt: ast.stmt,
                      what: str) -> None:
        if isinstance(target, ast.Attribute):
            base_roots = self._roots(target.value)
            for root in base_roots:
                mapped = ("self", target.attr) if root == SELF else root
                self._record_write(mapped, target.attr, stmt,
                                   f"{what} to .{target.attr}")
        elif isinstance(target, ast.Subscript):
            base = target.value
            attr = base.attr if isinstance(base, ast.Attribute) else None
            for root in self._roots(base):
                mapped = ("self", attr) if (root == SELF and attr) else root
                self._record_write(mapped, attr or self._root_attr(mapped),
                                   stmt, f"{what} through subscript")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, stmt, what)

    @staticmethod
    def _root_attr(root: Root) -> Optional[str]:
        return root[1] if root[0] == "self" else None

    def _target_attr(self, target: ast.expr, root: Root) -> Optional[str]:
        if isinstance(target, ast.Attribute):
            return target.attr
        return self._root_attr(root)

    def _record_write(self, root: Root, attr: Optional[str],
                      node: ast.AST, detail: str) -> None:
        if root == SELF and attr:
            root = ("self", attr)
        self.summary.add(Effect(
            kind="write", root=root, attr=attr, path=self.fn.path,
            line=getattr(node, "lineno", 0),
            detail=f"{detail} (root {self._describe_root(root)})"))

    def _record_rng(self, root: Root, node: ast.AST) -> None:
        self.summary.add(Effect(
            kind="rng", root=root, attr=self._root_attr(root),
            path=self.fn.path, line=getattr(node, "lineno", 0),
            detail=f"RNG stream draw on {self._describe_root(root)}"))

    @staticmethod
    def _describe_root(root: Root) -> str:
        kind, name = root
        if root == SELF:
            return "self"
        return f"self.{name}" if kind == "self" else f"parameter '{name}'"

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _call(self, node: ast.Call) -> None:
        site = self._resolve_site(node)
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            receiver_roots = self._roots(receiver)
            if self._numpy_inplace(node, func):
                return
            # The mutator-name fallback covers builtin containers only;
            # resolved repo callees contribute their real summaries.
            if site is None and func.attr in MUTATOR_METHODS:
                attr = receiver.attr if isinstance(receiver, ast.Attribute) \
                    else None
                for root in receiver_roots:
                    mapped = ("self", attr) if (root == SELF and attr) \
                        else root
                    self._record_write(mapped, attr or
                                       self._root_attr(mapped), node,
                                       f".{func.attr}() mutator call")
            for root in receiver_roots:
                if self._is_rng_root(root):
                    self._record_rng(root, node)
        # ``out=`` keyword: in-place result placement.
        for keyword in node.keywords:
            if keyword.arg == "out":
                for root in self._roots(keyword.value):
                    self._record_write(root, self._root_attr(root), node,
                                       "out= keyword")
        if site is not None:
            self.summary.call_sites.append(site)

    def _is_rng_root(self, root: Root) -> bool:
        kind, name = root
        if kind == "self" and name in self.cls_rng_attrs:
            return True
        return kind == "param" and name in self.rng_params

    def _numpy_inplace(self, node: ast.Call, func: ast.Attribute) -> bool:
        """Handle ``np.copyto(dst, ...)`` / ``np.add.at(dst, ...)``."""
        ref = dotted_name(func)
        if ref is None or not node.args:
            return False
        head = ref.split(".")[0]
        imported = self.index.modules[self.fn.module].imports.get(head, "")
        if imported.split(".")[0] != "numpy":
            return False
        terminal = ref.rsplit(".", 1)[-1]
        if terminal in NP_INPLACE_FIRST_ARG or terminal == "at":
            for root in self._roots(node.args[0]):
                self._record_write(root, self._root_attr(root), node,
                                   f"in-place np.{terminal}")
            return True
        return False

    def _resolve_site(self, node: ast.Call) -> Optional[CallSite]:
        key = id(node)
        if key in self._site_cache:
            return self._site_cache[key]
        site = self._resolve_site_uncached(node)
        self._site_cache[key] = site
        return site

    def _resolve_site_uncached(self, node: ast.Call) -> Optional[CallSite]:
        func = node.func
        callees: List[FunctionInfo] = []
        receiver_roots: Optional[FrozenSet[Root]] = None
        unbound = False
        if isinstance(func, ast.Name):
            resolved = self.index.resolve_function(self.fn.module, func.id)
            if resolved is None or resolved.cls is not None:
                return None
            callees = [resolved]
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            method = func.attr
            if isinstance(receiver, ast.Call) \
                    and isinstance(receiver.func, ast.Name) \
                    and receiver.func.id == "super":
                callees = self._resolve_super(method)
                receiver_roots = frozenset({SELF})
            elif isinstance(receiver, ast.Name):
                as_class = self.index.resolve_class(self.fn.module,
                                                    receiver.id)
                if as_class is not None:
                    found = self.index.find_method(as_class, method)
                    if found is not None:
                        callees = [found]
                        unbound = True
                        receiver_roots = frozenset()
                else:
                    receiver_roots = self._roots(receiver)
                    callees = self._resolve_bound(receiver, method,
                                                  receiver_roots)
            else:
                receiver_roots = self._roots(receiver)
                callees = self._resolve_bound(receiver, method,
                                               receiver_roots)
        if not callees:
            return None
        argmaps = {c.key: self._argmap(node, c, unbound) for c in callees}
        return CallSite(callees=tuple(c.key for c in callees),
                        receiver_roots=receiver_roots,
                        argmaps=argmaps,
                        line=node.lineno)

    def _resolve_super(self, method: str) -> List[FunctionInfo]:
        if self.fn.cls is None:
            return []
        for ancestor in self.index.mro(self.fn.cls)[1:]:
            found = ancestor.methods.get(method)
            if found is not None:
                return [found]
        return []

    def _resolve_bound(self, receiver: ast.expr, method: str,
                       receiver_roots: FrozenSet[Root]
                       ) -> List[FunctionInfo]:
        cls = self.fn.cls
        # self.m(...): nearest MRO definition, widened over subclasses
        # when only an abstract declaration exists.
        if SELF in receiver_roots and cls is not None:
            found = self.index.find_method(cls, method)
            if found is not None and not found.is_abstract:
                return [found]
            return self._cha_subclasses(cls, method)
        # self.attr.m(...) with a known attribute type.
        if isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name) \
                and receiver.value.id == self.receiver:
            type_keys = self.cls_attr_types.get(receiver.attr, set())
            resolved: List[FunctionInfo] = []
            for type_key in type_keys:
                type_cls = self.index.classes.get(type_key)
                if type_cls is None:
                    continue
                found = self.index.find_method(type_cls, method)
                if found is not None:
                    resolved.append(found)
            if resolved:
                return resolved
        # Fallback: class-hierarchy analysis over every definer.
        return [definer.methods[method]
                for definer in self.index.defining_classes(method)]

    def _cha_subclasses(self, cls: ClassInfo,
                        method: str) -> List[FunctionInfo]:
        resolved: List[FunctionInfo] = []
        for sub in self.index.subclasses(cls):
            fn = sub.methods.get(method)
            if fn is not None and not fn.is_abstract:
                resolved.append(fn)
        return resolved

    def _argmap(self, node: ast.Call, callee: FunctionInfo,
                unbound: bool) -> Dict[str, FrozenSet[Root]]:
        params = callee.param_names()
        receiver = callee.receiver_name()
        if receiver is not None and not unbound:
            params = [p for p in params if p != receiver]
        elif callee.is_classmethod and params:
            params = params[1:]
        mapping: Dict[str, FrozenSet[Root]] = {}
        for param, arg in zip(params, node.args):
            if isinstance(arg, ast.Starred):
                break
            mapping[param] = self._roots(arg)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in callee. \
                    param_names():
                mapping[keyword.arg] = self._roots(keyword.value)
        return mapping

    # ------------------------------------------------------------------
    # Alias roots
    # ------------------------------------------------------------------
    def _roots(self, expr: ast.expr) -> FrozenSet[Root]:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            base = self._roots(expr.value)
            if SELF in base:
                return (base - {SELF}) | {("self", expr.attr)}
            return base
        if isinstance(expr, ast.Subscript):
            return self._roots(expr.value)
        if isinstance(expr, ast.Starred):
            return self._roots(expr.value)
        if isinstance(expr, ast.Call):
            return self._call_roots(expr)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            roots: Set[Root] = set()
            for element in expr.elts:
                roots |= self._roots(element)
            return frozenset(roots)
        if isinstance(expr, ast.Dict):
            roots = set()
            for value in expr.values:
                if value is not None:
                    roots |= self._roots(value)
            return frozenset(roots)
        if isinstance(expr, ast.IfExp):
            return self._roots(expr.body) | self._roots(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            roots = set()
            for value in expr.values:
                roots |= self._roots(value)
            return frozenset(roots)
        if isinstance(expr, ast.NamedExpr):
            roots = self._roots(expr.value)
            self.env[expr.target.id] = roots
            return roots
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension_roots(expr)
        # Arithmetic, comparisons, literals, f-strings: fresh objects.
        return frozenset()

    def _comprehension_roots(self, expr: ast.expr) -> FrozenSet[Root]:
        saved = dict(self.env)
        try:
            for generator in expr.generators:
                self._bind_target(generator.target,
                                  self._roots(generator.iter), expr)
            if isinstance(expr, ast.DictComp):
                return self._roots(expr.value)
            return self._roots(expr.elt)
        finally:
            self.env = saved

    def _call_roots(self, node: ast.Call) -> FrozenSet[Root]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ALIAS_BUILTINS:
            roots: Set[Root] = set()
            for arg in node.args:
                roots |= self._roots(arg)
            return frozenset(roots)
        if isinstance(func, ast.Attribute) and func.attr in ALIAS_METHODS:
            return self._roots(func.value)
        site = self._resolve_site(node)
        if site is None:
            return frozenset()
        roots = set()
        for callee_key in site.callees:
            aliases = self.alias_table.get(callee_key)
            if not aliases:
                continue
            argmap = site.argmaps.get(callee_key, {})
            for alias in aliases:
                roots |= self._map_callee_root(alias, site, argmap)
        return frozenset(roots)

    @staticmethod
    def _map_callee_root(root: Root, site: CallSite,
                         argmap: Dict[str, FrozenSet[Root]]
                         ) -> Set[Root]:
        kind, name = root
        if kind == "param":
            return set(argmap.get(name, frozenset()))
        # self-rooted: map through the receiver.
        if site.receiver_roots is None:
            return set()
        mapped: Set[Root] = set()
        for receiver_root in site.receiver_roots:
            if receiver_root == SELF:
                mapped.add(("self", name) if name else SELF)
            else:
                mapped.add(receiver_root)
        return mapped


# ----------------------------------------------------------------------
# Whole-package analysis
# ----------------------------------------------------------------------
#: Propagated call chains longer than this stop growing (cycle guard).
MAX_CHAIN = 10


def build_summaries(index: PackageIndex) -> Dict[str, FunctionSummary]:
    """Extract and propagate effect summaries for the whole package.

    Two extraction passes (the second sees every function's return-alias
    facts, so cross-module helpers like ``iter_sequences`` alias
    correctly), then a fixed-point walk pushing callee effects into
    callers with call-chain frames attached.
    """
    alias_table: Dict[str, FrozenSet[Root]] = {}
    summaries: Dict[str, FunctionSummary] = {}
    for _ in range(2):
        summaries = {}
        for fn in index.iter_functions():
            summary = _Analyzer(index, fn, alias_table).run()
            summaries[fn.key] = summary
        alias_table = {key: s.returns_aliases
                       for key, s in summaries.items()}
    _propagate(index, summaries)
    return summaries


def _relpath(index: PackageIndex, path: str) -> str:
    try:
        from pathlib import Path
        return str(Path(path).relative_to(index.root.parent))
    except ValueError:
        return path


def _propagate(index: PackageIndex,
               summaries: Dict[str, FunctionSummary]) -> None:
    changed = True
    while changed:
        changed = False
        for summary in summaries.values():
            for site in summary.call_sites:
                for callee_key in site.callees:
                    callee = summaries.get(callee_key)
                    if callee is None:
                        continue
                    if _inherit(index, summary, site, callee):
                        changed = True


def _inherit(index: PackageIndex, caller: FunctionSummary, site: CallSite,
             callee: FunctionSummary) -> bool:
    changed = False
    argmap = site.argmaps.get(callee.fn.key, {})
    frame = (f"{caller.fn.qualname} "
             f"({_relpath(index, caller.fn.path)}:{site.line})")
    for effect in list(callee.effects.values()):
        if len(effect.chain) >= MAX_CHAIN:
            continue
        mapped_site = CallSite(callees=site.callees,
                               receiver_roots=site.receiver_roots,
                               argmaps=site.argmaps, line=site.line)
        for root in _Analyzer._map_callee_root(effect.root, mapped_site,
                                               argmap):
            inherited = Effect(kind=effect.kind, root=root,
                               attr=effect.attr, path=effect.path,
                               line=effect.line, detail=effect.detail,
                               chain=(frame,) + effect.chain)
            if caller.add(inherited):
                changed = True
    return changed
