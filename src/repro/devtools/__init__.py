"""Repo-native developer tooling: static analysis and numerical checking.

Two pillars keep the reproduction trustworthy as it scales:

* :mod:`repro.devtools.lint` — **graphlint**, a dependency-free AST linter
  enforcing the repo's correctness invariants (seeded randomness, no blind
  exception handlers, sanctioned tensor mutation, dtype discipline,
  backward-closure hygiene, docstring coverage) as named ``REPxxx`` rules.
  Run it with ``python -m repro.devtools.lint src/ tests/ benchmarks/``.
* :mod:`repro.devtools.gradcheck` — the shared finite-difference gradient
  checker used by the ``repro.nn`` test-suite and by recommender-loss
  end-to-end checks.

The autograd *runtime* sanitizer lives next to the engine it instruments:
:mod:`repro.nn.anomaly`.
"""

__all__ = ["Diagnostic", "RULES", "lint_paths", "lint_source",
           "gradcheck", "gradcheck_param", "numeric_gradient"]


def __getattr__(name):
    """Lazily resolve the public surface from the two submodules.

    Keeps ``python -m repro.devtools.lint`` free of double-import
    warnings and keeps the (stdlib-only) linter importable without the
    numeric stack the gradcheck helpers need.
    """
    if name in ("Diagnostic", "RULES", "lint_paths", "lint_source"):
        from . import lint
        return getattr(lint, name)
    if name in ("gradcheck", "gradcheck_param", "numeric_gradient"):
        from . import gradcheck as _gradcheck
        return getattr(_gradcheck, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
