"""Repo-native developer tooling: static analysis and numerical checking.

Five pillars keep the reproduction trustworthy as it scales:

* :mod:`repro.devtools.lint` — **graphlint**, a dependency-free AST linter
  enforcing the repo's correctness invariants (seeded randomness, no blind
  exception handlers, sanctioned tensor mutation, dtype discipline,
  backward-closure hygiene, docstring coverage, checkpoint determinism,
  retry-wrapped environment queries) as named ``REPxxx`` rules.
  Run it with ``python -m repro.devtools.lint src/ tests/ benchmarks/``.
* :mod:`repro.devtools.shapecheck` — **shapecheck**, a symbolic
  shape/dtype abstract interpreter that runs the real ``repro.nn``
  forward passes on tensors with named symbolic dims and verifies the
  ``@shape_spec`` contracts declared across the stack.  Run it with
  ``python -m repro.devtools.shapecheck``.
* :mod:`repro.devtools.effectcheck` — **effectcheck**, a
  cross-procedural purity/effect analyzer that verifies the
  ``@pure``/``@mutates`` contracts from :mod:`repro.effects` and the
  snapshot/fork invariants behind the parallel query engine's bit-exact
  guarantee (rules REP009-REP012).  Run it with
  ``python -m repro.devtools.effectcheck``.
* :mod:`repro.devtools.faultcheck` — **faultcheck**, a cross-procedural
  exception-flow and fork-protocol analyzer proving the serve layer's
  fault-tolerance invariants: no taxonomy laundering of host errors,
  taxonomy exhaustiveness on the supervised query path, fork-safe
  worker closures, journal torn-tail discipline and restore-on-raise
  consistency (rules REP013-REP017).  Run it with
  ``python -m repro.devtools.faultcheck``.
* :mod:`repro.devtools.gradcheck` — the shared finite-difference gradient
  checker used by the ``repro.nn`` test-suite and by recommender-loss
  end-to-end checks.

The analyzer CLIs share suppression-comment parsing, JSON output and
the 0/1/2 exit-code convention through :mod:`repro.devtools.common`.
The autograd *runtime* sanitizer lives next to the engine it
instruments: :mod:`repro.nn.anomaly`.
"""

__all__ = ["Diagnostic", "RULES", "lint_paths", "lint_source",
           "gradcheck", "gradcheck_param", "numeric_gradient",
           "ContractError", "ShapeError", "SymTensor", "checked_call",
           "run_shapecheck", "symbolic_trace",
           "analyze_package", "run_effectcheck",
           "analyze_faults", "run_faultcheck"]

_LINT_NAMES = ("Diagnostic", "RULES", "lint_paths", "lint_source")
_GRADCHECK_NAMES = ("gradcheck", "gradcheck_param", "numeric_gradient")
_EFFECTCHECK_NAMES = {"analyze_package": "analyze_package",
                      "run_effectcheck": "main"}
_FAULTCHECK_NAMES = {"analyze_faults": "analyze_package",
                     "run_faultcheck": "main"}
_SHAPECHECK_NAMES = {"ContractError": "ContractError",
                     "ShapeError": "ShapeError",
                     "SymTensor": "SymTensor",
                     "checked_call": "checked_call",
                     "run_shapecheck": "run_all",
                     "symbolic_trace": "symbolic_trace"}


def __getattr__(name):
    """Lazily resolve the public surface from the submodules.

    Keeps ``python -m repro.devtools.lint`` free of double-import
    warnings and keeps the (stdlib-only) linter importable without the
    numeric stack the gradcheck/shapecheck helpers need.
    """
    if name in _LINT_NAMES:
        from . import lint
        return getattr(lint, name)
    if name in _GRADCHECK_NAMES:
        from . import gradcheck as _gradcheck
        return getattr(_gradcheck, name)
    if name in _SHAPECHECK_NAMES:
        from . import shapecheck as _shapecheck
        return getattr(_shapecheck, _SHAPECHECK_NAMES[name])
    if name in _EFFECTCHECK_NAMES:
        from . import effectcheck as _effectcheck
        return getattr(_effectcheck, _EFFECTCHECK_NAMES[name])
    if name in _FAULTCHECK_NAMES:
        from . import faultcheck as _faultcheck
        return getattr(_faultcheck, _FAULTCHECK_NAMES[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
