"""Whole-repo shape verification drivers.

Three lanes, mirroring how the stack is actually wired:

1. **Symbolic** — every nn layer and every neural recommender's inner
   network runs its real forward pass on tensors whose batch dim is the
   symbol ``B``, under :func:`~.trace.symbolic_trace`.  One pass proves
   the wiring for *all* batch sizes.
2. **Policy** — :class:`~repro.core.policy.PolicyNetwork` for all four
   action-space kinds (Plain, BPlain, both BCBTs) runs
   ``rollout_log_probs`` on symbolic tensors with small concrete dims
   (the rollout recompute indexes with ``np.arange``, which pins the
   batch), still without a single real matmul.
3. **Probe** — every registered ranker is fit on a tiny synthetic log
   and its ``score``/``score_batch`` contracts are verified on real
   values, covering the non-neural rankers the tracer can't reach.

Each check is independent; failures carry the ShapeError/ContractError
message with its ``file:line``-anchored op chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from ...core.action_space import ACTION_SPACE_KINDS, make_action_space
from ...core.policy import PolicyNetwork
from ...data.interactions import InteractionLog
from ...nn import GRU, GRUCell, LSTM, LSTMCell, MLP, Dense, Embedding
from ...recsys.autorec import _AutoRecNet
from ...recsys.gru4rec import _GRU4RecNet
from ...recsys.neumf import _NeuMFNet
from ...recsys.ngcf import _NGCFNet
from ...recsys.registry import RANKER_NAMES, make_ranker
from .contracts import ContractError, checked_call
from .symbolic import INT64, Dim, ShapeError, sym_input
from .trace import symbolic_trace

#: Exceptions a check may legitimately raise; anything else is a crash.
CHECK_ERRORS = (ShapeError, ContractError, TypeError, ValueError,
                AttributeError, RuntimeError, IndexError, KeyError,
                NotImplementedError)


@dataclass
class CheckResult:
    """Outcome of one named check (``detail`` holds the failure text)."""

    name: str
    ok: bool
    detail: str = ""


# ----------------------------------------------------------------------
# Lane 1: fully-symbolic nn layers and inner recommender nets
# ----------------------------------------------------------------------
def _check_dense() -> None:
    dense = Dense(4, 7, np.random.default_rng(0), activation="relu")
    with symbolic_trace():
        checked_call(dense, "__call__", sym_input(("B", 4)))


def _check_mlp() -> None:
    mlp = MLP([6, 5, 3], np.random.default_rng(0))
    with symbolic_trace():
        checked_call(mlp, "__call__", sym_input(("B", 6)))


def _check_embedding() -> None:
    embedding = Embedding(10, 6, np.random.default_rng(0))
    with symbolic_trace():
        checked_call(embedding, "__call__", sym_input(("B",), INT64))


def _check_lstm_cell() -> None:
    cell = LSTMCell(5, 9, np.random.default_rng(0))
    with symbolic_trace():
        state = cell.initial_state(Dim("B"))
        checked_call(cell, "__call__", sym_input(("B", 5)), state)


def _check_lstm() -> None:
    lstm = LSTM(5, 9, np.random.default_rng(0))
    with symbolic_trace():
        inputs = [sym_input(("B", 5)) for _ in range(3)]
        checked_call(lstm, "__call__", inputs)


def _check_gru_cell() -> None:
    cell = GRUCell(5, 9, np.random.default_rng(0))
    with symbolic_trace():
        state = cell.initial_state(Dim("B"))
        checked_call(cell, "__call__", sym_input(("B", 5)), state)


def _check_gru() -> None:
    gru = GRU(5, 9, np.random.default_rng(0))
    with symbolic_trace():
        inputs = [sym_input(("B", 5)) for _ in range(3)]
        checked_call(gru, "__call__", inputs)


def _check_neumf_net() -> None:
    net = _NeuMFNet(6, 10, 8, np.random.default_rng(0))
    with symbolic_trace():
        checked_call(net, "logits", sym_input(("B",), INT64),
                     sym_input(("B",), INT64))


def _check_autorec_net() -> None:
    net = _AutoRecNet(10, 4, np.random.default_rng(0))
    with symbolic_trace():
        checked_call(net, "__call__", sym_input(("B", 10)))


def _check_gru4rec_net() -> None:
    net = _GRU4RecNet(10, 6, np.random.default_rng(0))
    with symbolic_trace():
        hidden = checked_call(net, "encode", sym_input(("B", 5), INT64))
        checked_call(net, "all_item_logits", hidden)


def _check_ngcf_net() -> None:
    net = _NGCFNet(12, 6, 2, np.random.default_rng(0))
    adjacency = sp.csr_matrix((12, 12))
    with symbolic_trace():
        checked_call(net, "propagate", adjacency)


# ----------------------------------------------------------------------
# Lane 2: the policy network over every action-space design
# ----------------------------------------------------------------------
def _policy_decisions(kind: str, batch: int, steps: int,
                      depth: int) -> Dict[str, np.ndarray]:
    flat = np.zeros((batch, steps), dtype=np.int64)
    if kind == "plain":
        return {"items": flat}
    if kind == "bplain":
        return {"sides": flat, "items": flat.copy()}
    tree = np.zeros((batch, steps, depth), dtype=np.int64)
    return {"parents": tree, "sides": tree.copy()}


def _make_policy_check(kind: str) -> Callable[[], None]:
    def check() -> None:
        popularity = np.arange(12, dtype=np.float64)[::-1]
        space = make_action_space(kind, 8, np.arange(8, 12), popularity)
        policy = PolicyNetwork(space, num_attackers=3, dim=8, seed=0)
        batch, steps = 3, 4
        items = np.zeros((batch, steps), dtype=np.int64)
        decisions = _policy_decisions(kind, batch, steps,
                                      space.max_decisions)
        with symbolic_trace():
            checked_call(policy, "rollout_log_probs", items, decisions)
    return check


# ----------------------------------------------------------------------
# Lane 3: concrete micro-probe of every registered ranker
# ----------------------------------------------------------------------
_PROBE_USERS, _PROBE_ITEMS = 6, 12


def _probe_log() -> InteractionLog:
    log = InteractionLog(_PROBE_ITEMS)
    rng = np.random.default_rng(7)
    for user in range(_PROBE_USERS):
        log.add_sequence(user, rng.integers(0, _PROBE_ITEMS,
                                            size=5).tolist())
    return log


def _make_probe_check(name: str) -> Callable[[], None]:
    def check() -> None:
        ranker = make_ranker(name, _PROBE_USERS, _PROBE_ITEMS, seed=0)
        ranker.fit(_probe_log())
        checked_call(ranker, "score", 0, np.arange(5, dtype=np.int64))
        candidates = np.tile(np.arange(5, dtype=np.int64), (2, 1))
        checked_call(ranker, "score_batch",
                     np.array([0, 1], dtype=np.int64), candidates)
    return check


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def build_checks() -> List[Tuple[str, Callable[[], None]]]:
    """All named checks, in deterministic execution order."""
    checks: List[Tuple[str, Callable[[], None]]] = [
        ("nn.Dense", _check_dense),
        ("nn.MLP", _check_mlp),
        ("nn.Embedding", _check_embedding),
        ("nn.LSTMCell", _check_lstm_cell),
        ("nn.LSTM", _check_lstm),
        ("nn.GRUCell", _check_gru_cell),
        ("nn.GRU", _check_gru),
        ("recsys.neumf.net", _check_neumf_net),
        ("recsys.autorec.net", _check_autorec_net),
        ("recsys.gru4rec.net", _check_gru4rec_net),
        ("recsys.ngcf.net", _check_ngcf_net),
    ]
    checks.extend((f"core.policy[{kind}]", _make_policy_check(kind))
                  for kind in ACTION_SPACE_KINDS)
    checks.extend((f"recsys.probe[{name}]", _make_probe_check(name))
                  for name in RANKER_NAMES)
    return checks


def run_checks(checks) -> List[CheckResult]:
    """Run ``(name, fn)`` pairs, catching contract/shape violations."""
    results = []
    for name, check in checks:
        try:
            check()
        except CHECK_ERRORS as error:
            results.append(CheckResult(
                name, False, f"{type(error).__name__}: {error}"))
        else:
            results.append(CheckResult(name, True))
    return results


def run_all() -> List[CheckResult]:
    """Run every check over the whole repo."""
    return run_checks(build_checks())
