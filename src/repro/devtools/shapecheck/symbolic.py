"""Symbolic shape/dtype domain for the shapecheck abstract interpreter.

The abstract value is a :class:`SymTensor`: a tensor that carries a shape
(whose dims are ints or named :class:`Dim` symbols like ``B``), a dtype
from a four-point lattice (``bool < int64 < float32 < float64``) and
provenance (the op that produced it, the ``file:line`` call site, and its
parent values) — but **no data**.  Every op rule here mirrors the concrete
semantics of :mod:`repro.nn.tensor` and :mod:`repro.nn.functional`:
broadcasting, matmul (1-D/2-D/batched), concat/stack, reshape with ``-1``,
reductions and numpy basic/advanced indexing.

A rule violation raises :class:`ShapeError` carrying the op chain that led
to the bad call, anchored at the first stack frame outside the engine —
i.e. the line of *model* code that wired the shapes wrong.

Interop with the real engine is deliberate: ``SymTensor.data`` returns the
symbolic value itself and ``__array_ufunc__ = None`` makes numpy defer to
the reflected operators, so real ``Tensor`` arithmetic transparently
produces symbolic results while tracing (see ``trace.py``).
"""

from __future__ import annotations

import os
import sys
from typing import Optional, Sequence, Tuple, Union

import numpy as np

# ----------------------------------------------------------------------
# dtype lattice
# ----------------------------------------------------------------------
BOOL = "bool"
INT64 = "int64"
FLOAT32 = "float32"
FLOAT64 = "float64"

_DTYPE_ORDER = (BOOL, INT64, FLOAT32, FLOAT64)
_FLOATS = (FLOAT32, FLOAT64)


def promote(a: str, b: str) -> str:
    """Result dtype of combining two abstract dtypes (numpy-style)."""
    return _DTYPE_ORDER[max(_DTYPE_ORDER.index(a), _DTYPE_ORDER.index(b))]


def dtype_of_array(arr: np.ndarray) -> str:
    """Map a concrete numpy dtype onto the abstract lattice."""
    kind = arr.dtype.kind
    if kind == "b":
        return BOOL
    if kind in "iu":
        return INT64
    if arr.dtype == np.float32:
        return FLOAT32
    return FLOAT64


# ----------------------------------------------------------------------
# Symbolic dimensions
# ----------------------------------------------------------------------
class Dim:
    """A named symbolic dimension (e.g. the batch size ``B``).

    Two :class:`Dim` instances are interchangeable iff their names match;
    arithmetic with other dims produces derived names like ``B+T``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = str(name)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Dim) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Dim", self.name))


DimLike = Union[int, Dim]
ShapeLike = Tuple[DimLike, ...]


def dims_equal(a: DimLike, b: DimLike) -> bool:
    """Whether two dims are provably equal (symbolic vs concrete never is)."""
    if isinstance(a, Dim) or isinstance(b, Dim):
        return a == b
    return int(a) == int(b)


def add_dims(a: DimLike, b: DimLike) -> DimLike:
    """Sum of two dims; symbolic operands produce a derived name."""
    if isinstance(a, int) and isinstance(b, int):
        return a + b
    return Dim(f"{a}+{b}")


def fmt_shape(shape: Sequence[DimLike]) -> str:
    """Render ``(3, B, 5)``-style shape text."""
    if len(shape) == 1:
        return f"({shape[0]},)"
    return "(" + ", ".join(str(d) for d in shape) + ")"


def _normalize_shape(shape) -> ShapeLike:
    out = []
    for dim in tuple(shape):
        if isinstance(dim, Dim):
            out.append(dim)
        elif isinstance(dim, (int, np.integer)):
            out.append(int(dim))
        else:
            raise TypeError(f"invalid symbolic dim {dim!r}")
    return tuple(out)


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------
_PKG_DIR = os.path.dirname(os.path.abspath(__file__))
_ENGINE_BASENAMES = ("tensor.py", "functional.py", "layers.py", "lstm.py")


def capture_frames(limit: int = 8) -> Tuple[Tuple[str, int, str], ...]:
    """Call-site stack ``(file, line, function)`` outside shapecheck itself."""
    frames = []
    frame = sys._getframe(1)
    while frame is not None and len(frames) < limit:
        path = frame.f_code.co_filename
        if not os.path.abspath(path).startswith(_PKG_DIR):
            frames.append((path, frame.f_lineno, frame.f_code.co_name))
        frame = frame.f_back
    return tuple(frames)


def _is_engine_frame(frame: Tuple[str, int, str]) -> bool:
    path = frame[0]
    return (os.path.basename(path) in _ENGINE_BASENAMES
            and f"{os.sep}nn{os.sep}" in path)


def anchor_site(frames: Sequence[Tuple[str, int, str]]
                ) -> Optional[Tuple[str, int, str]]:
    """Preferred ``file:line`` anchor: the first non-engine caller frame."""
    for frame in frames:
        if not _is_engine_frame(frame):
            return frame
    return frames[0] if frames else None


def _site_text(frames) -> str:
    site = anchor_site(frames)
    if site is None:
        return "<unknown>"
    return f"{site[0]}:{site[1]}"


class ShapeError(ValueError):
    """An abstract-interpretation rule violation, with op-chain provenance.

    ``site`` is the anchored ``(file, line, function)`` of the offending
    call; the rendered message appends the chain of producing ops so a
    mis-wired layer reads like a traceback of shapes.
    """

    def __init__(self, message: str, site=None, operands=()) -> None:
        super().__init__(message)
        self.site = site
        self.operands = tuple(operands)


def format_chain(value: "SymTensor", limit: int = 8) -> str:
    """Render the first-parent op chain that produced ``value``."""
    lines = []
    node: Optional[SymTensor] = value
    while node is not None and len(lines) < limit:
        shape = fmt_shape(node.shape)
        lines.append(f"    {node.op:<12} -> {shape} {node.dtype}"
                     f"  at {_site_text(node.frames)}")
        node = next((p for p in node.parents if isinstance(p, SymTensor)),
                    None)
    return "\n".join(lines)


def _fail(op: str, message: str, operands=(), frames=None) -> None:
    frames = frames if frames is not None else capture_frames()
    site = anchor_site(frames)
    parts = [f"{op}: {message}", f"  at {_site_text(frames)} (op '{op}')"]
    # The anchor prefers the *caller* of the nn engine; when the op
    # actually executed inside an engine file, name that line too — a
    # mis-wired layer is fixed in the layer, not at its call site.
    if frames and site is not None and frames[0] != site:
        inner = frames[0]
        parts.insert(1, f"  in {inner[0]}:{inner[1]} ({inner[2]})")
    for index, operand in enumerate(operands):
        if isinstance(operand, SymTensor):
            parts.append(f"  operand {index}: {fmt_shape(operand.shape)} "
                         f"{operand.dtype} <- '{operand.op}' "
                         f"at {_site_text(operand.frames)}")
        else:
            parts.append(f"  operand {index}: {operand!r}")
    chains = [o for o in operands if isinstance(o, SymTensor) and o.parents]
    if chains:
        parts.append("  op chain (most recent first):")
        parts.append(format_chain(chains[0]))
    raise ShapeError("\n".join(parts), site=site, operands=operands)


# ----------------------------------------------------------------------
# Shape algebra
# ----------------------------------------------------------------------
def broadcast_shapes(a: ShapeLike, b: ShapeLike, op: str = "broadcast",
                     operands=()) -> ShapeLike:
    """Numpy broadcasting over symbolic shapes; raises on impossibility."""
    out = []
    for i in range(max(len(a), len(b))):
        da = a[len(a) - 1 - i] if i < len(a) else 1
        db = b[len(b) - 1 - i] if i < len(b) else 1
        if dims_equal(da, db):
            out.append(da)
        elif isinstance(da, int) and da == 1:
            out.append(db)
        elif isinstance(db, int) and db == 1:
            out.append(da)
        else:
            _fail(op, f"cannot broadcast {fmt_shape(a)} with {fmt_shape(b)} "
                      f"(dim {da} vs {db})", operands)
    return tuple(reversed(out))


def matmul_shape(a: ShapeLike, b: ShapeLike, operands=()) -> ShapeLike:
    """Shape of ``a @ b`` with numpy's 1-D/2-D/batched promotion rules."""
    if len(a) == 0 or len(b) == 0:
        _fail("matmul", "matmul operands must be at least 1-D", operands)
    if len(a) == 1 and len(b) == 1:
        if not dims_equal(a[0], b[0]):
            _fail("matmul", f"inner dims {a[0]} vs {b[0]} differ "
                            f"({fmt_shape(a)} @ {fmt_shape(b)})", operands)
        return ()
    if len(b) == 1:
        if not dims_equal(a[-1], b[0]):
            _fail("matmul", f"inner dims {a[-1]} vs {b[0]} differ "
                            f"({fmt_shape(a)} @ {fmt_shape(b)})", operands)
        return a[:-1]
    if len(a) == 1:
        if not dims_equal(a[0], b[-2]):
            _fail("matmul", f"inner dims {a[0]} vs {b[-2]} differ "
                            f"({fmt_shape(a)} @ {fmt_shape(b)})", operands)
        return b[:-2] + (b[-1],)
    if not dims_equal(a[-1], b[-2]):
        _fail("matmul", f"inner dims {a[-1]} vs {b[-2]} differ "
                        f"({fmt_shape(a)} @ {fmt_shape(b)})", operands)
    batch = broadcast_shapes(a[:-2], b[:-2], op="matmul", operands=operands)
    return batch + (a[-2], b[-1])


def concat_shapes(shapes: Sequence[ShapeLike], axis: int,
                  operands=()) -> ShapeLike:
    """Shape of concatenating along ``axis`` (non-axis dims must unify)."""
    if not shapes:
        _fail("concatenate", "needs at least one input", operands)
    ndim = len(shapes[0])
    if any(len(s) != ndim for s in shapes):
        _fail("concatenate",
              "rank mismatch: " + " vs ".join(fmt_shape(s) for s in shapes),
              operands)
    axis = _normalize_axis(axis, ndim, "concatenate", operands)
    out = list(shapes[0])
    for shape in shapes[1:]:
        for i in range(ndim):
            if i == axis:
                out[i] = add_dims(out[i], shape[i])
            elif not dims_equal(out[i], shape[i]):
                _fail("concatenate",
                      f"dim {i} mismatch off the concat axis: "
                      + " vs ".join(fmt_shape(s) for s in shapes), operands)
    return tuple(out)


def stack_shapes(shapes: Sequence[ShapeLike], axis: int,
                 operands=()) -> ShapeLike:
    """Shape of stacking equal shapes along a new axis."""
    if not shapes:
        _fail("stack", "needs at least one input", operands)
    first = shapes[0]
    for shape in shapes[1:]:
        if len(shape) != len(first) or not all(
                dims_equal(x, y) for x, y in zip(first, shape)):
            _fail("stack",
                  "all inputs must share a shape: "
                  + " vs ".join(fmt_shape(s) for s in shapes), operands)
    ndim = len(first) + 1
    axis = _normalize_axis(axis, ndim, "stack", operands)
    out = list(first)
    out.insert(axis, len(shapes))
    return tuple(out)


def _normalize_axis(axis: int, ndim: int, op: str, operands=()) -> int:
    if not isinstance(axis, (int, np.integer)):
        _fail(op, f"axis must be an int, got {axis!r}", operands)
    if axis < 0:
        axis += ndim
    if not 0 <= axis < max(ndim, 1):
        _fail(op, f"axis {axis} out of range for rank {ndim}", operands)
    return int(axis)


def _shape_factors(shape: Sequence[DimLike]):
    """Split a shape into (sorted symbolic factor names, int product)."""
    syms: list = []
    product = 1
    for dim in shape:
        if isinstance(dim, Dim):
            syms.append(dim.name)
        else:
            product *= int(dim)
    return sorted(syms), product


def reshape_shape(old: ShapeLike, new, operands=()) -> ShapeLike:
    """Shape of ``reshape(new)``; supports ``-1`` and symbolic factors.

    Symbolic dims must appear verbatim on both sides (a symbolic dim
    cannot be split or merged with ints other than 1); ``-1`` absorbs
    whatever remains.
    """
    new = tuple(new)
    negatives = [i for i, d in enumerate(new) if isinstance(d, int) and d == -1]
    if len(negatives) > 1:
        _fail("reshape", "at most one -1 allowed", operands)
    known = [d for d in new if not (isinstance(d, int) and d == -1)]
    old_syms, old_int = _shape_factors(old)
    new_syms, new_int = _shape_factors(known)
    leftover = list(old_syms)
    for name in new_syms:
        if name in leftover:
            leftover.remove(name)
        else:
            _fail("reshape",
                  f"symbolic dim {name} not available: "
                  f"{fmt_shape(old)} -> {fmt_shape(new)}", operands)
    if not negatives:
        if leftover or old_int != new_int:
            _fail("reshape",
                  f"element count mismatch: {fmt_shape(old)} -> "
                  f"{fmt_shape(new)}", operands)
        return _normalize_shape(new)
    if new_int == 0 or (not leftover and old_int % new_int != 0):
        _fail("reshape",
              f"element count mismatch: {fmt_shape(old)} -> "
              f"{fmt_shape(new)}", operands)
    if not leftover:
        fill: DimLike = old_int // new_int
    elif len(leftover) == 1 and old_int == new_int:
        fill = Dim(leftover[0])
    else:
        ratio = "" if old_int == new_int else f"*{old_int}//{new_int}"
        fill = Dim("*".join(leftover) + ratio)
    out = list(known)
    out.insert(negatives[0], fill)
    return _normalize_shape(out)


def _slice_dim(dim: DimLike, sl: slice, operands=()) -> DimLike:
    for bound in (sl.start, sl.stop, sl.step):
        if bound is not None and not isinstance(bound, (int, np.integer)):
            _fail("getitem", f"non-integer slice bound {bound!r}", operands)
    if sl.start is None and sl.stop is None and sl.step is None:
        return dim
    if isinstance(dim, int):
        return len(range(*sl.indices(dim)))
    start = "" if sl.start is None else sl.start
    stop = "" if sl.stop is None else sl.stop
    return Dim(f"{dim}[{start}:{stop}]")


# ----------------------------------------------------------------------
# The abstract tensor
# ----------------------------------------------------------------------
_ADV = object()  # marker for an advanced-index position in __getitem__

_FRESH_COUNTER = [0]


class SymTensor:
    """A shape/dtype/provenance triple standing in for a real tensor.

    Constructed either directly (``SymTensor((Dim("B"), 64))``) or by the
    op rules below.  ``__array_ufunc__ = None`` forces numpy to use the
    reflected operators, so mixed ``ndarray <op> SymTensor`` expressions
    inside the real engine stay symbolic.
    """

    __slots__ = ("shape", "dtype", "op", "frames", "parents", "name",
                 "requires_grad", "grad", "_backward", "_parents")

    __array_ufunc__ = None

    def __init__(self, shape, dtype: str = FLOAT64, op: str = "input",
                 parents=(), name: str = "", frames=None) -> None:
        self.shape = _normalize_shape(shape)
        if dtype not in _DTYPE_ORDER:
            raise TypeError(f"unknown abstract dtype {dtype!r}")
        self.dtype = dtype
        self.op = op
        self.frames = frames if frames is not None else capture_frames()
        self.parents = tuple(parents)
        self.name = name
        # Compatibility surface for Tensor._make, which may tag results
        # with graph metadata while tracing; values are ignored.
        self.requires_grad = False
        self.grad = None  # graphlint: disable=REP003
        self._backward = None
        self._parents = ()

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self):
        if any(isinstance(d, Dim) for d in self.shape):
            _fail(self.op, "size of a tensor with symbolic dims is unknown",
                  (self,))
        return int(np.prod([int(d) for d in self.shape], dtype=np.int64)) \
            if self.shape else 1

    @property
    def data(self) -> "SymTensor":
        return self

    @property
    def T(self) -> "SymTensor":
        return self.transpose()

    def numpy(self):
        """Symbolic tensors carry no values; always raises."""
        _fail(self.op, "a symbolic tensor has no concrete values "
                       "(.numpy() called while shape-tracing)", (self,))

    def item(self):
        """Symbolic tensors carry no values; always raises."""
        _fail(self.op, "a symbolic tensor has no concrete values "
                       "(.item() called while shape-tracing)", (self,))

    def __len__(self) -> int:
        if not self.shape:
            _fail(self.op, "len() of a 0-d symbolic tensor", (self,))
        if isinstance(self.shape[0], Dim):
            _fail(self.op, f"len() of symbolic leading dim {self.shape[0]}",
                  (self,))
        return int(self.shape[0])

    def __repr__(self) -> str:
        return f"SymTensor(shape={fmt_shape(self.shape)}, dtype={self.dtype})"

    def __array_function__(self, func, types, args, kwargs):
        if func in (np.ones_like, np.zeros_like, np.empty_like):
            return SymTensor(self.shape, FLOAT64, op=func.__name__,
                             parents=(self,))
        if func is np.shape:
            return self.shape
        return NotImplemented

    # ------------------------------------------------------------------
    # Elementwise arithmetic (broadcasting + dtype promotion)
    # ------------------------------------------------------------------
    def _binary(self, other, op: str, result_dtype: Optional[str] = None
                ) -> "SymTensor":
        other_s = as_symbolic(other)
        shape = broadcast_shapes(self.shape, other_s.shape, op=op,
                                 operands=(self, other_s))
        dtype = result_dtype or promote(self.dtype, other_s.dtype)
        return SymTensor(shape, dtype, op=op, parents=(self, other_s))

    def __add__(self, other):
        return self._binary(other, "add")

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __rsub__(self, other):
        return self._binary(other, "sub")

    def __mul__(self, other):
        return self._binary(other, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary(other, "div", result_dtype=self._float_result(
            as_symbolic(other)))

    def __rtruediv__(self, other):
        return self._binary(other, "div", result_dtype=self._float_result(
            as_symbolic(other)))

    def _float_result(self, other: "SymTensor") -> str:
        promoted = promote(self.dtype, other.dtype)
        return promoted if promoted in _FLOATS else FLOAT64

    def __neg__(self):
        return SymTensor(self.shape, self.dtype, op="neg", parents=(self,))

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float, np.integer, np.floating)):
            _fail("pow", f"exponent must be a scalar, got {exponent!r}",
                  (self,))
        return SymTensor(self.shape, FLOAT64, op="pow", parents=(self,))

    def __matmul__(self, other):
        other_s = as_symbolic(other)
        for operand in (self, other_s):
            if operand.dtype == BOOL:
                _fail("matmul", "matmul over bool values", (self, other_s))
        shape = matmul_shape(self.shape, other_s.shape,
                             operands=(self, other_s))
        return SymTensor(shape, promote(self.dtype, other_s.dtype),
                         op="matmul", parents=(self, other_s))

    def __rmatmul__(self, other):
        return as_symbolic(other).__matmul__(self)

    # Comparisons mirror Tensor's (non-differentiable, value-level) ones.
    def __gt__(self, other):
        return self._binary(other, "gt", result_dtype=BOOL)

    def __lt__(self, other):
        return self._binary(other, "lt", result_dtype=BOOL)

    def __ge__(self, other):
        return self._binary(other, "ge", result_dtype=BOOL)

    def __le__(self, other):
        return self._binary(other, "le", result_dtype=BOOL)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "SymTensor":
        """Abstract mirror of :meth:`Tensor.reshape` (supports ``-1``)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        new = reshape_shape(self.shape, shape, operands=(self,))
        return SymTensor(new, self.dtype, op="reshape", parents=(self,))

    def transpose(self, *axes) -> "SymTensor":
        """Abstract mirror of :meth:`Tensor.transpose` (permutes axes)."""
        axes_t = tuple(axes) if axes else tuple(range(self.ndim))[::-1]
        if sorted(axes_t) != list(range(self.ndim)):
            _fail("transpose",
                  f"axes {axes_t} are not a permutation of rank {self.ndim}",
                  (self,))
        return SymTensor(tuple(self.shape[a] for a in axes_t), self.dtype,
                         op="transpose", parents=(self,))

    def astype(self, dtype) -> "SymTensor":
        """Abstract dtype cast (mirrors ``ndarray.astype``)."""
        return SymTensor(self.shape, dtype_of_array(np.empty(0, dtype=dtype)),
                         op="astype", parents=(self,))

    def __getitem__(self, idx) -> "SymTensor":
        items = idx if isinstance(idx, tuple) else (idx,)
        out: list = []
        adv_shapes: list = []
        adv_positions: list = []
        axis = 0
        for item in items:
            if item is None:
                out.append(1)
                continue
            if axis >= self.ndim:
                _fail("getitem",
                      f"too many indices for shape {fmt_shape(self.shape)}",
                      (self,))
            dim = self.shape[axis]
            if isinstance(item, slice):
                out.append(_slice_dim(dim, item, (self,)))
            elif isinstance(item, (int, np.integer)):
                value = int(item)
                if isinstance(dim, int) and not -dim <= value < dim:
                    _fail("getitem",
                          f"index {value} out of bounds for dim {dim} "
                          f"of {fmt_shape(self.shape)}", (self,))
            elif isinstance(item, SymTensor):
                if item.dtype != INT64:
                    _fail("getitem",
                          f"tensor index must be integer, got {item.dtype}",
                          (self, item))
                adv_shapes.append(item.shape)
                adv_positions.append(len(out))
                out.append(_ADV)
            elif isinstance(item, (np.ndarray, list)):
                arr = np.asarray(item)
                if arr.dtype.kind == "b":
                    if arr.ndim != 1:
                        _fail("getitem", "only 1-D bool masks are supported",
                              (self,))
                    _FRESH_COUNTER[0] += 1
                    adv_shapes.append((Dim(f"nz{_FRESH_COUNTER[0]}"),))
                    adv_positions.append(len(out))
                    out.append(_ADV)
                elif arr.dtype.kind in "iu":
                    if (isinstance(dim, int) and arr.size
                            and (int(arr.max()) >= dim
                                 or int(arr.min()) < -dim)):
                        _fail("getitem",
                              f"index {int(arr.max())} out of bounds for "
                              f"dim {dim} of {fmt_shape(self.shape)}",
                              (self,))
                    adv_shapes.append(arr.shape)
                    adv_positions.append(len(out))
                    out.append(_ADV)
                else:
                    _fail("getitem",
                          f"non-integer array index dtype {arr.dtype}",
                          (self,))
            else:
                _fail("getitem", f"unsupported index {item!r}", (self,))
            axis += 1
        out.extend(self.shape[axis:])
        if not adv_shapes:
            return SymTensor(tuple(out), self.dtype, op="getitem",
                             parents=(self,))
        broadcast = adv_shapes[0]
        for shape in adv_shapes[1:]:
            broadcast = broadcast_shapes(broadcast, shape, op="getitem",
                                         operands=(self,))
        contiguous = all(b - a == 1 for a, b in zip(adv_positions,
                                                    adv_positions[1:]))
        rest = [d for d in out if d is not _ADV]
        if contiguous:
            before = sum(1 for d in out[:adv_positions[0]] if d is not _ADV)
            shape = tuple(rest[:before]) + tuple(broadcast) \
                + tuple(rest[before:])
        else:
            # Numpy moves the broadcast result to the front when advanced
            # indices are separated by basic ones.
            shape = tuple(broadcast) + tuple(rest)
        return SymTensor(shape, self.dtype, op="getitem", parents=(self,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduce(self, op: str, axis, keepdims: bool,
                dtype: Optional[str] = None) -> "SymTensor":
        if axis is None:
            shape: ShapeLike = tuple(1 for _ in self.shape) if keepdims else ()
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(_normalize_axis(a, self.ndim, op, (self,))
                         for a in axes)
            shape = tuple(
                (1 if keepdims else None) if i in axes else d
                for i, d in enumerate(self.shape))
            shape = tuple(d for d in shape if d is not None)
        return SymTensor(shape, dtype or self.dtype, op=op, parents=(self,))

    def sum(self, axis=None, keepdims: bool = False) -> "SymTensor":
        """Abstract mirror of :meth:`Tensor.sum`."""
        dtype = INT64 if self.dtype == BOOL else self.dtype
        return self._reduce("sum", axis, keepdims, dtype)

    def mean(self, axis=None, keepdims: bool = False) -> "SymTensor":
        """Abstract mirror of :meth:`Tensor.mean` (always float)."""
        dtype = self.dtype if self.dtype in _FLOATS else FLOAT64
        return self._reduce("mean", axis, keepdims, dtype)

    def max(self, axis=None, keepdims: bool = False) -> "SymTensor":
        """Abstract mirror of :meth:`Tensor.max`."""
        return self._reduce("max", axis, keepdims)


def as_symbolic(value) -> SymTensor:
    """Coerce a value (SymTensor / Tensor / ndarray / scalar) to symbolic."""
    if isinstance(value, SymTensor):
        return value
    data = getattr(value, "data", None)
    if isinstance(data, SymTensor):
        return data
    if isinstance(data, np.ndarray):  # a real Tensor
        return SymTensor(data.shape, dtype_of_array(data), op="const",
                         name=getattr(value, "name", ""))
    if isinstance(value, np.ndarray):
        return SymTensor(value.shape, dtype_of_array(value), op="const")
    if isinstance(value, (bool, np.bool_)):
        return SymTensor((), BOOL, op="const")
    if isinstance(value, (int, np.integer)):
        return SymTensor((), INT64, op="const")
    if isinstance(value, (float, np.floating)):
        return SymTensor((), FLOAT64, op="const")
    if isinstance(value, (list, tuple)):
        arr = np.asarray(value)
        return SymTensor(arr.shape, dtype_of_array(arr), op="const")
    raise TypeError(f"cannot interpret {type(value).__name__} symbolically")


def sym_input(shape, dtype: str = FLOAT64, name: str = "") -> SymTensor:
    """Convenience constructor for driver inputs (``B``/``T`` symbols ok)."""
    shape = tuple(Dim(d) if isinstance(d, str) else d for d in shape)
    return SymTensor(shape, dtype, op="input", name=name)
