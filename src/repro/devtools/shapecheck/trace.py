"""Symbolic tracing: run real ``repro.nn`` code on :class:`SymTensor` values.

:func:`symbolic_trace` is a context manager that temporarily swaps the
functional ops (``repro.nn.functional``), the graph constructors
(``concatenate``/``stack``), :class:`~repro.nn.layers.Embedding` lookup
and the recurrent ``initial_state`` factories for *abstract* versions
that compute only shapes and dtypes.  ``Tensor.__new__`` is also patched
so that ``Tensor(sym)`` passes the symbolic value straight through —
combined with ``SymTensor.data`` returning itself and
``__array_ufunc__ = None``, the real ``Tensor`` operator overloads then
propagate symbolic operands without any per-operator patching.

The patcher replaces every module attribute across loaded ``repro.*``
modules that is *identical* to an original (covering both
``F.log_softmax`` style access and ``from .tensor import concatenate``
direct-name imports) and restores everything on exit, even on error.
"""

from __future__ import annotations

import contextlib
import sys
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from .symbolic import (FLOAT64, INT64, SymTensor, as_symbolic,
                       broadcast_shapes, concat_shapes, dims_equal,
                       promote, stack_shapes, _fail, _FLOATS,
                       _normalize_axis)

#: Every op name a traced forward pass can record on a SymTensor.  The
#: gradcheck parity test (``tests/devtools/test_gradcheck.py``) asserts
#: each differentiable entry here has numeric-gradient coverage.
SYMBOLIC_OP_NAMES = frozenset({
    "exp", "log", "sqrt", "relu", "sigmoid", "tanh", "softmax",
    "log_softmax", "logsigmoid", "leaky_relu", "clip", "minimum",
    "dropout", "spmm", "binary_cross_entropy_with_logits", "mse_loss",
    "concatenate", "stack", "add", "sub", "mul", "div", "pow", "neg",
    "matmul", "getitem", "reshape", "transpose", "sum", "mean", "max",
})

_ACTIVE = [False]


def is_tracing() -> bool:
    """Whether a :func:`symbolic_trace` context is currently active."""
    return _ACTIVE[0]


def _float_dtype(sym: SymTensor) -> str:
    return sym.dtype if sym.dtype in _FLOATS else FLOAT64


# ----------------------------------------------------------------------
# Abstract op implementations
# ----------------------------------------------------------------------
def _unary(name: str) -> Callable:
    def wrapper(x, *args, **kwargs):
        sym = as_symbolic(x)
        return SymTensor(sym.shape, _float_dtype(sym), op=name,
                         parents=(sym,))
    wrapper.__name__ = name
    return wrapper


def _axis_softmax(name: str) -> Callable:
    def wrapper(x, axis: int = -1):
        sym = as_symbolic(x)
        _normalize_axis(axis, max(sym.ndim, 1), name, (sym,))
        if sym.ndim == 0:
            _fail(name, "requires at least a 1-D input", (sym,))
        return SymTensor(sym.shape, _float_dtype(sym), op=name,
                         parents=(sym,))
    wrapper.__name__ = name
    return wrapper


def _sym_clip(x, low, high):
    sym = as_symbolic(x)
    return SymTensor(sym.shape, _float_dtype(sym), op="clip", parents=(sym,))


def _sym_minimum(a, b):
    sa, sb = as_symbolic(a), as_symbolic(b)
    shape = broadcast_shapes(sa.shape, sb.shape, op="minimum",
                             operands=(sa, sb))
    return SymTensor(shape, promote(_float_dtype(sa), _float_dtype(sb)),
                     op="minimum", parents=(sa, sb))


def _sym_leaky_relu(x, slope: float = 0.2):
    sym = as_symbolic(x)
    return SymTensor(sym.shape, _float_dtype(sym), op="leaky_relu",
                     parents=(sym,))


def _sym_dropout(x, rate, rng, training: bool = True):
    sym = as_symbolic(x)
    return SymTensor(sym.shape, _float_dtype(sym), op="dropout",
                     parents=(sym,))


def _sym_spmm(sparse_matrix, x):
    sym = as_symbolic(x)
    rows, inner = sparse_matrix.shape
    if sym.ndim != 2:
        _fail("spmm", f"dense operand must be 2-D, got "
                      f"rank {sym.ndim}", (sym,))
    if not dims_equal(inner, sym.shape[0]):
        _fail("spmm", f"sparse ({rows}, {inner}) @ dense "
                      f"{sym.shape} inner dims differ", (sym,))
    return SymTensor((rows, sym.shape[1]), _float_dtype(sym), op="spmm",
                     parents=(sym,))


def _sym_bce(logits, targets):
    sym = as_symbolic(logits)
    tgt = as_symbolic(targets)
    broadcast_shapes(sym.shape, tgt.shape,
                     op="binary_cross_entropy_with_logits",
                     operands=(sym, tgt))
    return SymTensor((), FLOAT64, op="binary_cross_entropy_with_logits",
                     parents=(sym,))


def _sym_mse(pred, target, weight=None):
    sym = as_symbolic(pred)
    tgt = as_symbolic(target)
    broadcast_shapes(sym.shape, tgt.shape, op="mse_loss",
                     operands=(sym, tgt))
    if weight is not None:
        broadcast_shapes(sym.shape, as_symbolic(weight).shape,
                         op="mse_loss", operands=(sym,))
    return SymTensor((), FLOAT64, op="mse_loss", parents=(sym,))


def _sym_concatenate(tensors, axis: int = 0):
    syms = [as_symbolic(t) for t in tensors]
    shape = concat_shapes([s.shape for s in syms], axis, operands=syms)
    dtype = syms[0].dtype
    for sym in syms[1:]:
        dtype = promote(dtype, sym.dtype)
    return SymTensor(shape, dtype, op="concatenate", parents=tuple(syms))


def _sym_stack(tensors, axis: int = 0):
    syms = [as_symbolic(t) for t in tensors]
    shape = stack_shapes([s.shape for s in syms], axis, operands=syms)
    dtype = syms[0].dtype
    for sym in syms[1:]:
        dtype = promote(dtype, sym.dtype)
    return SymTensor(shape, dtype, op="stack", parents=tuple(syms))


# ----------------------------------------------------------------------
# Class-level patches
# ----------------------------------------------------------------------
def _sym_embedding_call(self, ids):
    """Abstract Embedding lookup: ids stay symbolic, bounds are checked."""
    if isinstance(ids, SymTensor):
        if ids.dtype != INT64:
            _fail("embedding",
                  f"ids must be integer, got {ids.dtype}", (ids,))
        ids_shape = ids.shape
        parents: tuple = (ids,)
    else:
        arr = np.asarray(ids, dtype=np.int64)
        if arr.size and (int(arr.max()) >= self.num_embeddings
                         or int(arr.min()) < 0):
            _fail("embedding",
                  f"id {int(arr.max())} out of range for table of "
                  f"{self.num_embeddings} rows", ())
        ids_shape = arr.shape
        parents = ()
    return SymTensor(tuple(ids_shape) + (self.dim,), FLOAT64,
                     op="embedding", parents=parents)


def _sym_lstm_initial_state(self, batch):
    """Abstract zero ``(h, c)`` state supporting a symbolic batch dim."""
    h = SymTensor((batch, self.hidden_dim), FLOAT64, op="initial_state")
    c = SymTensor((batch, self.hidden_dim), FLOAT64, op="initial_state")
    return h, c


def _sym_gru_initial_state(self, batch):
    """Abstract zero hidden state supporting a symbolic batch dim."""
    return SymTensor((batch, self.hidden_dim), FLOAT64, op="initial_state")


def _tensor_new(cls, data=None, requires_grad: bool = False, name: str = ""):
    if _ACTIVE[0] and isinstance(data, SymTensor):
        return data
    return object.__new__(cls)


# ----------------------------------------------------------------------
# The patcher
# ----------------------------------------------------------------------
def _build_replacements() -> Dict[int, Tuple[object, object]]:
    from ...nn import functional as F
    from ...nn import tensor as tensor_mod

    table = {
        F.exp: _unary("exp"),
        F.log: _unary("log"),
        F.sqrt: _unary("sqrt"),
        F.relu: _unary("relu"),
        F.sigmoid: _unary("sigmoid"),
        F.tanh: _unary("tanh"),
        F.softmax: _axis_softmax("softmax"),
        F.log_softmax: _axis_softmax("log_softmax"),
        F.logsigmoid: _unary("logsigmoid"),
        F.clip: _sym_clip,
        F.minimum: _sym_minimum,
        F.leaky_relu: _sym_leaky_relu,
        F.dropout: _sym_dropout,
        F.spmm: _sym_spmm,
        F.binary_cross_entropy_with_logits: _sym_bce,
        F.mse_loss: _sym_mse,
        tensor_mod.concatenate: _sym_concatenate,
        tensor_mod.stack: _sym_stack,
    }
    return {id(original): (original, replacement)
            for original, replacement in table.items()}


def _patch_modules(replacements) -> List[Tuple[object, str, object]]:
    records = []
    for name, module in list(sys.modules.items()):
        if module is None:
            continue
        if not (name == "repro" or name.startswith("repro.")):
            continue
        for attr, value in list(vars(module).items()):
            hit = replacements.get(id(value))
            if hit is not None and value is hit[0]:
                setattr(module, attr, hit[1])
                records.append((module, attr, hit[0]))
    return records


@contextlib.contextmanager
def symbolic_trace() -> Iterator[None]:
    """Patch the nn stack for abstract execution; restores on exit.

    Non-reentrant by design: a nested trace would record restore targets
    that are themselves wrappers.
    """
    if _ACTIVE[0]:
        raise RuntimeError("symbolic_trace is not reentrant")
    from ...nn.layers import Embedding
    from ...nn.lstm import GRUCell, LSTMCell
    from ...nn.tensor import Tensor

    module_records = _patch_modules(_build_replacements())
    class_records = [
        (Embedding, "__call__", Embedding.__call__),
        (LSTMCell, "initial_state", LSTMCell.initial_state),
        (GRUCell, "initial_state", GRUCell.initial_state),
    ]
    Embedding.__call__ = _sym_embedding_call
    LSTMCell.initial_state = _sym_lstm_initial_state
    GRUCell.initial_state = _sym_gru_initial_state
    # Installed once and left in place: removing a __new__ assigned after
    # class creation leaves CPython's slot dispatcher behind, breaking
    # default construction.  The wrapper is inert unless a trace is
    # active, when it passes SymTensor "data" straight through.
    if Tensor.__new__ is object.__new__:
        Tensor.__new__ = staticmethod(_tensor_new)
    _ACTIVE[0] = True
    try:
        yield
    finally:
        _ACTIVE[0] = False
        for cls, attr, original in class_records:
            setattr(cls, attr, original)
        for module, attr, original in module_records:
            setattr(module, attr, original)
