"""Command-line entry point: ``python -m repro.devtools.shapecheck``.

Runs every driver check (symbolic nn/recsys forward passes, all four
policy variants, concrete ranker probes) and reports per-check status.
Exit code 0 when every contract holds, 1 on any violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .drivers import CheckResult, run_all


def _render(results: List[CheckResult], verbose: bool) -> int:
    failures = [r for r in results if not r.ok]
    for result in results:
        if result.ok:
            if verbose:
                print(f"   ok {result.name}")
        else:
            print(f" FAIL {result.name}")
            for line in result.detail.splitlines():
                print(f"      {line}")
    if failures:
        print(f"shapecheck: {len(failures)} of {len(results)} checks "
              f"failed", file=sys.stderr)
        return 1
    print(f"shapecheck: clean ({len(results)} checks)", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the whole-repo shape check; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.shapecheck",
        description="Abstract-interpret every model forward pass with "
                    "symbolic shapes and verify @shape_spec contracts.")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print passing checks too")
    args = parser.parse_args(argv)
    return _render(run_all(), args.verbose)
