"""Command-line entry point: ``python -m repro.devtools.shapecheck``.

Runs every driver check (symbolic nn/recsys forward passes, all four
policy variants, concrete ranker probes) and reports per-check status.
Exit codes follow the shared analyzer convention
(:mod:`repro.devtools.common`): 0 when every contract holds, 1 on any
violation, 2 on an internal failure.  ``--format=json`` emits the same
machine-readable payload shape as the other analyzer CLIs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..common import EXIT_CLEAN, EXIT_FINDINGS, json_report
from .drivers import CheckResult, run_all


def _render(results: List[CheckResult], verbose: bool) -> int:
    failures = [r for r in results if not r.ok]
    for result in results:
        if result.ok:
            if verbose:
                print(f"   ok {result.name}")
        else:
            print(f" FAIL {result.name}")
            for line in result.detail.splitlines():
                print(f"      {line}")
    if failures:
        print(f"shapecheck: {len(failures)} of {len(results)} checks "
              f"failed", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"shapecheck: clean ({len(results)} checks)", file=sys.stderr)
    return EXIT_CLEAN


def _render_json(results: List[CheckResult]) -> int:
    failures = [r for r in results if not r.ok]
    rows = [{"name": r.name, "ok": r.ok, "detail": r.detail}
            for r in results if not r.ok]
    print(json_report(rows,
                      {"checks": len(results), "failures": len(failures)},
                      checks_run=len(results)))
    return EXIT_FINDINGS if failures else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Run the whole-repo shape check; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.shapecheck",
        description="Abstract-interpret every model forward pass with "
                    "symbolic shapes and verify @shape_spec contracts.")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print passing checks too")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (json suppresses the human "
                             "report; exit codes are unchanged)")
    args = parser.parse_args(argv)
    results = run_all()
    if args.format == "json":
        return _render_json(results)
    return _render(results, args.verbose)
