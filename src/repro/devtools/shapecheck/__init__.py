"""Shapecheck: a symbolic shape/dtype abstract interpreter for repro.nn.

Traces real forward-pass code on :class:`SymTensor` values whose dims
are ints or named symbols (``B``, ``T``), verifying ``@shape_spec``
contracts without a single real matmul.  See
``docs/static_analysis.md`` for the architecture and
``python -m repro.devtools.shapecheck`` for the whole-repo check.
"""

from .contracts import ContractError, checked_call, parse_spec, verify
from .drivers import CheckResult, build_checks, run_all, run_checks
from .symbolic import (BOOL, FLOAT32, FLOAT64, INT64, Dim, ShapeError,
                       SymTensor, as_symbolic, broadcast_shapes,
                       concat_shapes, matmul_shape, reshape_shape,
                       stack_shapes, sym_input)
from .trace import SYMBOLIC_OP_NAMES, is_tracing, symbolic_trace

__all__ = [
    "SymTensor", "Dim", "ShapeError", "sym_input", "as_symbolic",
    "BOOL", "INT64", "FLOAT32", "FLOAT64",
    "broadcast_shapes", "matmul_shape", "concat_shapes", "stack_shapes",
    "reshape_shape",
    "symbolic_trace", "is_tracing", "SYMBOLIC_OP_NAMES",
    "ContractError", "checked_call", "parse_spec", "verify",
    "CheckResult", "build_checks", "run_checks", "run_all",
]
