"""Verification of ``@shape_spec`` contracts against traced values.

The contract grammar is defined in :mod:`repro.nn.spec` (which only
attaches the string); this module parses it and unifies it with actual
argument/result shapes.  Dim names bind on first use and must match on
every later use; a name that resolves to an ``int`` attribute on the
bound instance (``in_dim``, ``cell.hidden_dim``,
``action_space.max_decisions``) is treated as that constant instead.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from ...nn.spec import get_shape_spec
from .symbolic import DimLike, as_symbolic, dims_equal, fmt_shape

_TOKEN_RE = re.compile(r"->|[()\[\],]|[A-Za-z_][A-Za-z0-9_.]*|\d+")

WILD = ("wild",)

Term = Union[Tuple[str], Tuple[str, tuple], Tuple[str, "Term"],
             Tuple[str, List["Term"]]]


class ContractError(Exception):
    """A value violated the shape contract attached to a callable."""


def _tokenize(spec: str) -> List[str]:
    tokens = _TOKEN_RE.findall(spec)
    if "".join(tokens).replace(" ", "") != re.sub(r"\s+", "", spec):
        raise ContractError(f"unparseable shape spec: {spec!r}")
    return tokens


class _Parser:
    """Recursive-descent parser over the spec token stream."""

    def __init__(self, tokens: List[str], spec: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.spec = spec

    def peek(self) -> Optional[str]:
        """The next token without consuming it (``None`` at the end)."""
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        """Consume and return the next token, optionally asserting it."""
        token = self.peek()
        if token is None or (expected is not None and token != expected):
            raise ContractError(
                f"bad shape spec {self.spec!r}: expected "
                f"{expected or 'a token'}, got {token!r}")
        self.pos += 1
        return token

    def parse_terms(self) -> List[Term]:
        """A comma-separated term list (one side of the ``->``)."""
        terms = [self.parse_term()]
        while self.peek() == ",":
            self.take(",")
            terms.append(self.parse_term())
        return terms

    def parse_term(self) -> Term:
        """One term: wildcard, shape, tuple of terms, or list of tensors."""
        token = self.peek()
        if token == "_":
            self.take()
            return WILD
        if token == "[":
            self.take("[")
            inner = self.parse_term()
            self.take("]")
            return ("list", inner)
        if token == "(":
            self.take("(")
            if self.peek() in ("(", "["):
                items = [self.parse_term()]
                while self.peek() == ",":
                    self.take(",")
                    items.append(self.parse_term())
                self.take(")")
                return ("tuple", items)
            dims: list = []
            while self.peek() != ")":
                dims.append(self.parse_dim())
                if self.peek() == ",":
                    self.take(",")
            self.take(")")
            return ("shape", tuple(dims))
        raise ContractError(
            f"bad shape spec {self.spec!r}: unexpected token {token!r}")

    def parse_dim(self):
        """One dim token: int literal, (dotted) name, or ``_``."""
        token = self.take()
        if token.isdigit():
            return int(token)
        if token in ("(", ")", "[", "]", ",", "->"):
            raise ContractError(
                f"bad shape spec {self.spec!r}: unexpected {token!r}")
        return token


_PARSE_CACHE: Dict[str, Tuple[List[Term], List[Term]]] = {}


def parse_spec(spec: str) -> Tuple[List[Term], List[Term]]:
    """Parse ``"args -> result"`` into (argument terms, result terms)."""
    cached = _PARSE_CACHE.get(spec)
    if cached is not None:
        return cached
    tokens = _tokenize(spec)
    if tokens.count("->") != 1:
        raise ContractError(f"shape spec needs exactly one '->': {spec!r}")
    arrow = tokens.index("->")
    left = _Parser(tokens[:arrow], spec)
    args = left.parse_terms() if tokens[:arrow] else []
    if left.peek() is not None:
        raise ContractError(f"trailing tokens in spec {spec!r}")
    right = _Parser(tokens[arrow + 1:], spec)
    results = right.parse_terms()
    if right.peek() is not None:
        raise ContractError(f"trailing tokens in spec {spec!r}")
    _PARSE_CACHE[spec] = (args, results)
    return args, results


_MISSING = object()


def _resolve_constant(instance, name: str) -> Optional[int]:
    target = instance
    for part in name.split("."):
        target = getattr(target, part, _MISSING)
        if target is _MISSING:
            return None
    if isinstance(target, bool) or not isinstance(target, int):
        return None
    return target


def _match_shape(dims: tuple, value, env: Dict[str, DimLike], instance,
                 where: str, spec: str) -> None:
    try:
        shape = as_symbolic(value).shape
    except TypeError as error:
        raise ContractError(
            f"{where}: expected a tensor for {fmt_spec_dims(dims)} in "
            f"{spec!r}, got {type(value).__name__}") from error
    if len(shape) != len(dims):
        raise ContractError(
            f"{where}: rank mismatch — spec {fmt_spec_dims(dims)} vs "
            f"actual {fmt_shape(shape)} (spec {spec!r})")
    for token, actual in zip(dims, shape):
        if token == "_":
            continue
        if isinstance(token, int):
            expected: DimLike = token
        else:
            resolved = _resolve_constant(instance, token)
            if resolved is not None:
                expected = resolved
            elif token in env:
                expected = env[token]
            else:
                env[token] = actual
                continue
        if not dims_equal(expected, actual):
            raise ContractError(
                f"{where}: dim '{token}' expected {expected}, got {actual} "
                f"— spec {fmt_spec_dims(dims)} vs actual "
                f"{fmt_shape(shape)} (spec {spec!r})")


def fmt_spec_dims(dims: tuple) -> str:
    """Render a parsed shape term back to ``(B, T)`` text."""
    return "(" + ", ".join(str(d) for d in dims) + ")"


def _match_term(term: Term, value, env: Dict[str, DimLike], instance,
                where: str, spec: str) -> None:
    kind = term[0]
    if kind == "wild":
        return
    if kind == "shape":
        _match_shape(term[1], value, env, instance, where, spec)
        return
    if kind == "tuple":
        items = term[1]
        if not isinstance(value, (tuple, list)) or len(value) != len(items):
            raise ContractError(
                f"{where}: expected a {len(items)}-tuple, got "
                f"{type(value).__name__} (spec {spec!r})")
        for index, (sub, element) in enumerate(zip(items, value)):
            _match_term(sub, element, env, instance,
                        f"{where}[{index}]", spec)
        return
    if kind == "list":
        if not isinstance(value, (tuple, list)):
            raise ContractError(
                f"{where}: expected a list of tensors, got "
                f"{type(value).__name__} (spec {spec!r})")
        for index, element in enumerate(value):
            _match_term(term[1], element, env, instance,
                        f"{where}[{index}]", spec)
        return
    raise ContractError(f"unknown spec term {term!r} in {spec!r}")


def verify(spec: str, instance, args: tuple, result,
           where: str = "call") -> None:
    """Unify ``args``/``result`` with ``spec``; raises :class:`ContractError`.

    Trailing spec terms without a matching argument are allowed (optional
    parameters left at their defaults); extra arguments are not.
    """
    arg_terms, result_terms = parse_spec(spec)
    if len(args) > len(arg_terms):
        raise ContractError(
            f"{where}: {len(args)} args but spec {spec!r} declares "
            f"{len(arg_terms)} terms")
    env: Dict[str, DimLike] = {}
    for index, (term, value) in enumerate(zip(arg_terms, args)):
        _match_term(term, value, env, instance,
                    f"{where}: arg {index}", spec)
    if len(result_terms) == 1:
        _match_term(result_terms[0], result, env, instance,
                    f"{where}: result", spec)
    else:
        _match_term(("tuple", result_terms), result, env, instance,
                    f"{where}: result", spec)


def checked_call(obj, method_name: str, *args):
    """Call ``obj.method_name(*args)`` and verify its shape contract.

    The spec is looked up on the class attribute (so contracts declared on
    a base class apply to inheriting implementations).  Argument terms are
    verified *before* the call — a mis-shaped input is reported against
    the declared contract instead of wherever the forward pass first
    trips over it — and the result term after, sharing one symbol
    environment.  Returns the call's result; raises
    :class:`ContractError` on violation.
    """
    fn = getattr(type(obj), method_name)
    spec = get_shape_spec(fn)
    if spec is None:
        return getattr(obj, method_name)(*args)
    where = f"{type(obj).__name__}.{method_name}"
    arg_terms, result_terms = parse_spec(spec)
    if len(args) > len(arg_terms):
        raise ContractError(
            f"{where}: {len(args)} args but spec {spec!r} declares "
            f"{len(arg_terms)} terms")
    env: Dict[str, DimLike] = {}
    for index, (term, value) in enumerate(zip(arg_terms, args)):
        _match_term(term, value, env, obj, f"{where}: arg {index}", spec)
    result = getattr(obj, method_name)(*args)
    if len(result_terms) == 1:
        _match_term(result_terms[0], result, env, obj,
                    f"{where}: result", spec)
    else:
        _match_term(("tuple", result_terms), result, env, obj,
                    f"{where}: result", spec)
    return result
