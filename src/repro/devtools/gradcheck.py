"""Finite-difference gradient checking for the autograd engine.

One shared implementation of the central-difference checks that were
previously duplicated across the ``repro.nn`` test files:

* :func:`gradcheck` — check the analytic gradient of a function of one
  *input* tensor (``tests/nn/test_functional.py``'s old helper);
* :func:`gradcheck_param` — check the analytic gradient of a loss with
  respect to a *parameter* tensor by perturbing it in place
  (``tests/nn/test_lstm.py``'s old through-time probe), which also covers
  layer compositions and end-to-end recommender losses.

Both raise :class:`GradcheckError` with the first offending index, so a
failing check names the exact coordinate whose analytic and numeric
derivatives disagree.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor


class GradcheckError(AssertionError):
    """Analytic and numeric gradients disagree beyond tolerance."""


def _scalar(out: Tensor) -> Tensor:
    return out if out.size == 1 else out.sum()


def numeric_gradient(fn: Callable[[np.ndarray], float], x0: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` at ``x0``."""
    grad = np.zeros_like(x0, dtype=float)
    for idx in np.ndindex(*x0.shape):
        xp = x0.copy()
        xp[idx] += eps
        xm = x0.copy()
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2.0 * eps)
    return grad


def _compare(analytic: np.ndarray, numeric: np.ndarray, atol: float,
             rtol: float, context: str) -> None:
    denom = np.maximum(np.abs(numeric), 1.0)
    err = np.abs(analytic - numeric)
    bad = err > (atol + rtol * denom)
    if np.any(bad):
        idx = tuple(int(i) for i in np.argwhere(bad)[0])
        raise GradcheckError(
            f"gradcheck failed for {context} at index {idx}: "
            f"analytic={analytic[idx]:.8g}, numeric={numeric[idx]:.8g}, "
            f"|diff|={err[idx]:.3g}")


def gradcheck(fn: Callable[[Tensor], Tensor], x0: np.ndarray,
              eps: float = 1e-6, atol: float = 1e-5,
              rtol: float = 1e-4) -> None:
    """Check ``fn``'s analytic input-gradient against central differences.

    ``fn`` maps a :class:`Tensor` to a tensor; non-scalar outputs are
    summed before differentiation (matching the numeric probe).
    """
    x0 = np.asarray(x0, dtype=float)
    x = Tensor(x0.copy(), requires_grad=True)
    _scalar(fn(x)).backward()
    if x.grad is None:
        raise GradcheckError("gradcheck: no gradient reached the input — "
                             "fn does not depend on it differentiably")
    numeric = numeric_gradient(
        lambda arr: float(_scalar(fn(Tensor(arr))).data.sum()), x0, eps)
    _compare(x.grad, numeric, atol, rtol, context=f"input (shape {x0.shape})")


def gradcheck_param(loss_fn: Callable[[], Tensor], param: Tensor,
                    probes: Optional[Sequence[Tuple[int, ...]]] = None,
                    eps: float = 1e-6, atol: float = 1e-5,
                    rtol: float = 1e-4) -> None:
    """Check a loss's analytic gradient w.r.t. ``param`` by perturbation.

    ``loss_fn`` rebuilds the forward pass (a fresh graph) on every call;
    ``param`` is perturbed in place and always restored.  ``probes``
    restricts the numeric check to a subset of indices — recurrent
    through-time checks probe a handful of coordinates instead of the
    full weight matrix.
    """
    param.zero_grad()
    _scalar(loss_fn()).backward()
    if param.grad is None:
        raise GradcheckError(
            "gradcheck_param: no gradient reached the parameter — is it "
            "requires_grad and used by loss_fn?")
    analytic = param.grad.copy()
    base = param.data.copy()
    indices: Iterable[Tuple[int, ...]] = (
        probes if probes is not None else np.ndindex(*base.shape))
    try:
        for idx in indices:
            probe = base.copy()
            probe[idx] += eps
            param.assign_(probe, copy=False)
            up = float(_scalar(loss_fn()).data.sum())
            probe = base.copy()
            probe[idx] -= eps
            param.assign_(probe, copy=False)
            down = float(_scalar(loss_fn()).data.sum())
            numeric = (up - down) / (2.0 * eps)
            err = abs(float(analytic[idx]) - numeric)
            if err > atol + rtol * max(abs(numeric), 1.0):
                raise GradcheckError(
                    f"gradcheck failed for parameter "
                    f"'{param.name or 'param'}' at index {tuple(idx)}: "
                    f"analytic={float(analytic[idx]):.8g}, "
                    f"numeric={numeric:.8g}, |diff|={err:.3g}")
    finally:
        param.assign_(base, copy=False)
        param.zero_grad()
