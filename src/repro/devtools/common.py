"""Shared CLI infrastructure for the repo's static analyzers.

graphlint, shapecheck, effectcheck and faultcheck each grew their own
copies of three conventions; this module is the single home for all of
them:

* **suppression comments** — ``# <tool>: disable=REPxxx`` on any
  physical line of the innermost statement containing a diagnostic
  (``disable`` with no ids silences every rule there);
* **output plumbing** — ``--format=json`` payload assembly and the
  per-rule ``--statistics`` counts;
* **exit codes** — ``0`` clean, ``1`` findings, ``2`` internal error
  (bad paths, unparseable sources, analyzer crashes).  ``argparse``
  usage errors also exit ``2``, so the codes are uniform across all
  four CLIs and CI can gate on them without per-tool cases.

Nothing here imports the analyzed package or the numeric stack; the
module is stdlib-only so the linters stay runnable in a bare container.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

#: Uniform analyzer exit codes (see module docstring).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2


def suppression_pattern(tool: str) -> "re.Pattern[str]":
    """The compiled ``# <tool>: disable[=ids]`` comment pattern."""
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*disable(?:=(?P<ids>[A-Za-z0-9_,\s]+))?")


def suppressed_rules(line: str,
                     pattern: "re.Pattern[str]") -> Optional[frozenset]:
    """Rule ids disabled on ``line``; empty set means "all rules"."""
    match = pattern.search(line)
    if match is None:
        return None
    ids = match.group("ids")
    if not ids:
        return frozenset()
    return frozenset(part.strip().upper() for part in ids.split(",")
                     if part.strip())


def stmt_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """Physical line spans of every statement, headers only for blocks.

    A compound statement's span stops before its first body statement so
    a suppression inside a ``def`` cannot silence a diagnostic anchored
    on the ``def`` line itself.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or start
        spans.append((start, end))
    return spans


class SuppressionFilter:
    """Per-file suppression lookups for one tool.

    With a parsed ``tree`` the disable comment may sit on any physical
    line of the *innermost* statement containing the diagnostic —
    multi-line calls and parenthesized expressions commonly carry it on
    their closing line.  Without a tree only the diagnostic's own line
    is consulted.
    """

    def __init__(self, tool: str, lines: Sequence[str],
                 tree: Optional[ast.AST] = None) -> None:
        self.pattern = suppression_pattern(tool)
        self.lines = lines
        self.spans: Sequence[Tuple[int, int]] = (
            stmt_spans(tree) if tree is not None else ())

    def covers(self, rule: str, line: int) -> bool:
        """Whether a disable comment silences ``rule`` at ``line``."""
        candidates = {line}
        best: Optional[Tuple[int, int]] = None
        for start, end in self.spans:
            if start <= line <= end:
                if best is None or end - start < best[1] - best[0]:
                    best = (start, end)
        if best is not None:
            candidates.update(range(best[0], best[1] + 1))
        for lineno in candidates:
            if not 0 < lineno <= len(self.lines):
                continue
            disabled = suppressed_rules(self.lines[lineno - 1], self.pattern)
            if disabled is not None and (not disabled or rule in disabled):
                return True
        return False


def rule_statistics(diagnostics: Iterable, rule_ids: Iterable[str]) -> dict:
    """Diagnostic counts per rule id, covering every registered rule."""
    counts = {rule_id: 0 for rule_id in rule_ids}
    for diag in diagnostics:
        counts[diag.rule] = counts.get(diag.rule, 0) + 1
    return counts


def diagnostic_row(diag, fields: Sequence[str]) -> dict:
    """One diagnostic as a JSON-ready dict of the named attributes."""
    row = {}
    for name in fields:
        value = getattr(diag, name)
        row[name] = list(value) if isinstance(value, tuple) else value
    return row


def json_report(rows: Sequence[dict], statistics: dict, **extra) -> str:
    """The ``--format=json`` payload shared by every analyzer CLI."""
    payload = {"diagnostics": list(rows), "statistics": statistics}
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)


def display_path(path: str) -> str:
    """Render ``path`` relative to the CWD when possible (clickable)."""
    try:
        return str(Path(path).resolve().relative_to(Path.cwd()))
    except ValueError:
        return path


def render_chain_text(diagnostics: Sequence) -> None:
    """Print path:line diagnostics with their ``via``/``->`` call chains."""
    for diag in diagnostics:
        print(f"{display_path(diag.path)}:{diag.line}: "
              f"{diag.rule} {diag.message}")
        for depth, frame in enumerate(diag.chain):
            arrow = "via" if depth == 0 else " ->"
            print(f"    {arrow} {frame}")


def describe_rules(rules: Iterable[Tuple[str, str, str]]) -> None:
    """Print the ``--rules`` listing: id, title, indented rationale."""
    for rule_id, title, rationale in rules:
        print(f"{rule_id}  {title}")
        print(f"        {rationale}")


def exit_code(diagnostics: Sequence) -> int:
    """The uniform exit code for a finished, non-crashed analysis."""
    return EXIT_FINDINGS if diagnostics else EXIT_CLEAN
