"""graphlint — the repo's AST-based static analyzer (stdlib only).

Enforces the correctness invariants that keep the reproduction's
experiment tables trustworthy, as named rules with ``file:line:col``
diagnostics:

========  ===========================================================
REP001    no legacy global ``np.random.*`` calls — randomness must
          flow through ``np.random.default_rng(seed)`` / injected rngs
REP002    no bare or blind ``except`` handlers
REP003    no in-place mutation of ``Tensor.data`` / ``Tensor.grad``
          outside the sanctioned mutation points
REP004    no dtype literals bypassing the engine's ``_FLOAT``
          convention inside ``repro/nn/``
REP005    every ``Tensor._make`` call site in ``repro/nn/`` defines a
          local ``backward`` closure
REP006    public modules, classes and functions carry docstrings
REP007    no wall-clock / process-identity / set-iteration values
          flowing into checkpointed state (flow-sensitive taint)
REP008    environment queries in ``repro/core/`` go through the
          ``call_with_retry`` wrapper, never raw ``env.attack``
========  ===========================================================

Usage::

    python -m repro.devtools.lint src/ tests/ benchmarks/
    python -m repro.devtools.lint --rules          # describe every rule
    python -m repro.devtools.lint --format=json    # machine-readable
    python -m repro.devtools.lint --statistics     # per-rule counts

A diagnostic can be silenced with a trailing comment on any physical
line of the offending statement::

    thing.data = arr  # graphlint: disable=REP003

``# graphlint: disable`` (no rule ids) silences every rule on that line.
See ``docs/static_analysis.md`` for the full rationale per rule.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple

from .common import (EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL,
                     SuppressionFilter, describe_rules, exit_code,
                     json_report)
from .common import rule_statistics as _common_statistics

#: Members of ``np.random`` that are part of the seeded-Generator API and
#: therefore allowed; everything else is the legacy global-state API.
_ALLOWED_NP_RANDOM = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Modules allowed to assign to ``.data`` / ``.grad`` attributes: the
#: optimizers (parameter updates are their whole job) and the engine
#: itself.  Everything else — including the finite-difference checker's
#: parameter perturbations — funnels through ``Tensor.assign_``.
_REP003_WHITELIST = (
    "repro/nn/optim.py",
    "repro/nn/tensor.py",
)

_EXCLUDED_DIR_PARTS = {"__pycache__", ".git", ".github", "results"}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, formatted as ``path:line:col: RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render in the conventional compiler-diagnostic layout."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class _FileContext:
    """Everything a rule needs to inspect one parsed file."""

    def __init__(self, path: str, tree: ast.Module,
                 lines: Sequence[str]) -> None:
        self.path = path
        self.rel = Path(path).as_posix()
        self.tree = tree
        self.lines = lines

    # -- scope helpers ------------------------------------------------
    def in_nn(self) -> bool:
        """Whether the file belongs to the autograd engine package."""
        return "repro/nn/" in self.rel

    def is_testlike(self) -> bool:
        """Test / benchmark / fixture files (docstring rule exempt)."""
        parts = Path(self.rel).parts
        name = Path(self.rel).name
        return ("tests" in parts or "benchmarks" in parts
                or name.startswith(("test_", "bench_"))
                or name == "conftest.py")

    def diag(self, node: ast.AST, rule: str, message: str) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node``."""
        return Diagnostic(self.path, getattr(node, "lineno", 1),
                          getattr(node, "col_offset", 0) + 1, rule, message)


class Rule:
    """Base class: a named invariant checked against one file's AST."""

    id: str = "REP000"
    title: str = ""
    rationale: str = ""

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for every violation in ``ctx``."""
        raise NotImplementedError


def _attr_chain_is_np_random(node: ast.Attribute) -> bool:
    """True for ``np.random.<attr>`` / ``numpy.random.<attr>`` chains."""
    value = node.value
    return (isinstance(value, ast.Attribute) and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy"))


class LegacyRandomRule(Rule):
    """REP001: reproducibility requires seeded Generator randomness."""

    id = "REP001"
    title = "legacy global np.random.* API"
    rationale = ("Unseeded global-state randomness makes experiment tables "
                 "non-reproducible; use np.random.default_rng(seed) or an "
                 "injected rng.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag legacy ``np.random`` members and imports."""
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Attribute)
                    and _attr_chain_is_np_random(node)
                    and node.attr not in _ALLOWED_NP_RANDOM):
                yield ctx.diag(
                    node, self.id,
                    f"legacy 'np.random.{node.attr}' — route randomness "
                    "through np.random.default_rng(seed) or an injected rng")
            elif (isinstance(node, ast.ImportFrom)
                    and node.module == "numpy.random"):
                for alias in node.names:
                    if alias.name not in _ALLOWED_NP_RANDOM:
                        yield ctx.diag(
                            node, self.id,
                            f"import of legacy 'numpy.random.{alias.name}' "
                            "— use the Generator API")


class BlindExceptRule(Rule):
    """REP002: exception handlers must be typed and non-swallowing."""

    id = "REP002"
    title = "bare or blind except handler"
    rationale = ("Swallowed exceptions hide corrupted experiment state; "
                 "catch the narrowest exception type, or re-raise.")

    @staticmethod
    def _is_blind_type(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("Exception", "BaseException")
        if isinstance(node, ast.Tuple):
            return any(BlindExceptRule._is_blind_type(e) for e in node.elts)
        return False

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag ``except:`` and ``except Exception:`` without re-raise."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diag(node, self.id,
                               "bare 'except:' — name the exception type")
            elif self._is_blind_type(node.type):
                reraises = any(isinstance(inner, ast.Raise)
                               for stmt in node.body
                               for inner in ast.walk(stmt))
                if not reraises:
                    yield ctx.diag(
                        node, self.id,
                        "blind 'except Exception' that never re-raises — "
                        "catch a specific type or re-raise")


class TensorMutationRule(Rule):
    """REP003: parameter state changes only via sanctioned entry points."""

    id = "REP003"
    title = "in-place .data/.grad mutation outside sanctioned modules"
    rationale = ("Ad-hoc writes to Tensor.data/.grad bypass the optimizer "
                 "and snapshot/restore contracts; use Tensor.assign_() or "
                 "an optimizer.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag assignments and aug-assignments to ``.data`` / ``.grad``."""
        if ctx.rel.endswith(_REP003_WHITELIST):
            return
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if (isinstance(target, ast.Attribute)
                        and target.attr in ("data", "grad")):
                    yield ctx.diag(
                        node, self.id,
                        f"direct write to '.{target.attr}' — use "
                        "Tensor.assign_() (data) or autograd/optimizers "
                        "(grad)")


class DtypeLiteralRule(Rule):
    """REP004: one float-width switch (``_FLOAT``) for the whole engine."""

    id = "REP004"
    title = "dtype literal bypassing the _FLOAT convention"
    rationale = ("repro/nn modules must inherit the engine's float width "
                 "from tensor._FLOAT so precision can be switched in one "
                 "place.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag float dtype literals in nn modules other than tensor.py."""
        if not ctx.in_nn() or ctx.rel.endswith("repro/nn/tensor.py"):
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in ("float32", "float64")
                    and isinstance(node.value, ast.Name)
                    and node.value.id in ("np", "numpy")):
                yield ctx.diag(
                    node, self.id,
                    f"'np.{node.attr}' literal — import _FLOAT from "
                    "repro.nn.tensor instead")
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (kw.arg == "dtype"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value in ("float32", "float64")):
                        yield ctx.diag(
                            kw.value, self.id,
                            f"dtype='{kw.value.value}' string literal — "
                            "use _FLOAT from repro.nn.tensor")


class BackwardClosureRule(Rule):
    """REP005: graph nodes must carry their gradient rule."""

    id = "REP005"
    title = "Tensor._make call without a local backward closure"
    rationale = ("A _make call whose enclosing op does not define its own "
                 "backward closure either reuses a stale closure or "
                 "silently drops gradients.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag ``_make`` call sites lacking a sibling ``backward`` def."""
        if not ctx.in_nn():
            return

        def walk(node: ast.AST, enclosing: ast.AST | None
                 ) -> Iterator[Diagnostic]:
            for child in ast.iter_child_nodes(node):
                if (isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr == "_make"):
                    if not self._defines_backward(enclosing):
                        yield ctx.diag(
                            child, self.id,
                            "Tensor._make call site must define a local "
                            "'backward' closure in the enclosing function")
                next_enclosing = (child if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else enclosing)
                yield from walk(child, next_enclosing)

        yield from walk(ctx.tree, None)

    @staticmethod
    def _defines_backward(fn: ast.AST | None) -> bool:
        if fn is None:
            return False
        return any(isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                   and stmt.name == "backward"
                   for stmt in fn.body)


class DocstringRule(Rule):
    """REP006: the public surface documents itself."""

    id = "REP006"
    title = "missing docstring on public module/class/function"
    rationale = ("Docstring coverage is part of the reproduction "
                 "deliverable; this subsumes the old runtime "
                 "test_docstrings.py walker.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag undocumented public defs in library (non-test) files."""
        if ctx.is_testlike():
            return
        if not ast.get_docstring(ctx.tree):
            yield Diagnostic(ctx.path, 1, 1, self.id,
                             "module is missing a docstring")
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if node.name.startswith("_"):
                continue
            kind = ("class" if isinstance(node, ast.ClassDef)
                    else "function")
            if not ast.get_docstring(node):
                yield ctx.diag(node, self.id,
                               f"public {kind} '{node.name}' is missing a "
                               "docstring")
            if isinstance(node, ast.ClassDef):
                yield from self._check_methods(ctx, node)

    def _check_methods(self, ctx: _FileContext,
                       cls: ast.ClassDef) -> Iterator[Diagnostic]:
        # Subclasses may legitimately inherit docstrings, which a purely
        # syntactic pass cannot see — only no-base classes are checked.
        inherits = any(not (isinstance(b, ast.Name) and b.id == "object")
                       for b in cls.bases)
        if inherits:
            return
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") or node.decorator_list:
                continue
            if not ast.get_docstring(node):
                yield ctx.diag(
                    node, self.id,
                    f"public method '{cls.name}.{node.name}' is missing a "
                    "docstring")


#: ``module.func`` attribute chains whose results are nondeterministic
#: across runs and must never reach checkpointed state.
_REP007_SOURCE_CHAINS = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("os", "urandom"), ("os", "getpid"),
})

#: Callable names that persist state (checkpoint writers / serializers).
_REP007_SINK_NAMES = frozenset({
    "save_campaign", "save_policy", "atomic_savez",
    "savez", "savez_compressed", "dump", "dumps",
})


def _call_name(node: ast.Call) -> str:
    """The trailing identifier of a call target (``a.b.c()`` → ``"c"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _walk_unsorted(node: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but pruned below ``sorted(...)`` calls.

    Sorting launders set-iteration-order nondeterminism, so anything
    inside a ``sorted`` call is deterministic for REP007's purposes.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.Call) and _call_name(current) == "sorted":
            continue
        stack.extend(ast.iter_child_nodes(current))


def _is_rep007_source(node: ast.AST) -> str | None:
    """Describe ``node`` if it produces a run-to-run varying value."""
    if not isinstance(node, ast.Call):
        # Set displays have no stable iteration order either.
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set (unordered iteration)"
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        value = func.value
        # time.time(), uuid.uuid4(), datetime.datetime.now(), ...
        base = None
        if isinstance(value, ast.Name):
            base = value.id
        elif isinstance(value, ast.Attribute):
            base = value.attr
        if base is not None and (base, attr) in _REP007_SOURCE_CHAINS:
            return f"{base}.{attr}()"
    elif isinstance(func, ast.Name) and func.id == "set":
        return "set() (unordered iteration)"
    return None


class CheckpointDeterminismRule(Rule):
    """REP007: checkpointed state must be a pure function of the seed."""

    id = "REP007"
    title = "nondeterministic value flowing into checkpointed state"
    rationale = ("Checkpoints must make a resumed campaign bit-identical; "
                 "wall-clock readings, process ids, uuids and set iteration "
                 "order differ between runs, so persisting them breaks the "
                 "resume contract.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Taint-track nondeterministic sources into persistence sinks."""
        if ctx.is_testlike():
            return
        yield from self._check_scope(ctx, ctx.tree.body, set())

    def _check_scope(self, ctx: _FileContext, body: Sequence[ast.stmt],
                     tainted: set) -> Iterator[Diagnostic]:
        # Flow-sensitive over statement order within one scope; nested
        # function scopes start from a copy of the enclosing taint set
        # (a closure sees names bound before its definition).
        tainted = set(tainted)
        origins: dict = {}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, stmt.body, tainted)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._check_scope(ctx, stmt.body, set())
                continue
            # Sinks first, so `x = time.time(); dump(x)` on one line of
            # control flow reports at the dump, not the assignment.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield from self._check_sink(ctx, node, tainted, origins)
            self._propagate(stmt, tainted, origins)

    @staticmethod
    def _propagate(stmt: ast.stmt, tainted: set, origins: dict) -> None:
        for node in ast.walk(stmt):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            value = node.value
            if value is None:
                continue
            source = None
            for sub in _walk_unsorted(value):
                source = _is_rep007_source(sub)
                if source is None and isinstance(sub, ast.Name):
                    if sub.id in tainted:
                        source = origins.get(sub.id, "tainted value")
                if source is not None:
                    break
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        if source is not None:
                            tainted.add(name.id)
                            origins[name.id] = source
                        else:
                            tainted.discard(name.id)
                            origins.pop(name.id, None)

    def _check_sink(self, ctx: _FileContext, call: ast.Call, tainted: set,
                    origins: dict) -> Iterator[Diagnostic]:
        name = _call_name(call)
        if not (name in _REP007_SINK_NAMES or "checkpoint" in name.lower()):
            return
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for sub in _walk_unsorted(argument):
                source = _is_rep007_source(sub)
                if source is None and isinstance(sub, ast.Name):
                    if sub.id in tainted:
                        source = origins.get(sub.id, "tainted value")
                if source is not None:
                    yield ctx.diag(
                        call, self.id,
                        f"nondeterministic value from {source} flows into "
                        f"checkpointed state via '{name}' — derive persisted "
                        "values from the seed instead")
                    return


class RawEnvironmentQueryRule(Rule):
    """REP008: the agent's environment queries carry the retry contract."""

    id = "REP008"
    title = "raw env.attack query outside the retry wrapper"
    rationale = ("repro/core code must query the black-box environment "
                 "through call_with_retry so transient faults are retried "
                 "and budgeted instead of killing a long campaign.")

    def check(self, ctx: _FileContext) -> Iterator[Diagnostic]:
        """Flag ``env.attack(...)`` outside ``call_with_retry`` scopes."""
        if "repro/core/" not in ctx.rel or ctx.is_testlike():
            return

        def walk(node: ast.AST, sanctioned: bool) -> Iterator[Diagnostic]:
            for child in ast.iter_child_nodes(node):
                child_ok = sanctioned
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_ok = sanctioned or self._uses_retry(child)
                if (isinstance(child, ast.Call)
                        and self._is_env_attack(child) and not child_ok):
                    yield ctx.diag(
                        child, self.id,
                        "raw environment query — route it through "
                        "call_with_retry (see PoisonRec._query)")
                yield from walk(child, child_ok)

        yield from walk(ctx.tree, False)

    @staticmethod
    def _is_env_attack(call: ast.Call) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "attack"):
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in ("env", "environment")
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in ("env", "environment", "_env")
        return False

    @staticmethod
    def _uses_retry(fn: ast.AST) -> bool:
        return any(isinstance(node, ast.Call)
                   and _call_name(node) == "call_with_retry"
                   for node in ast.walk(fn))


#: Every active rule, in report order.
RULES: Tuple[Rule, ...] = (
    LegacyRandomRule(), BlindExceptRule(), TensorMutationRule(),
    DtypeLiteralRule(), BackwardClosureRule(), DocstringRule(),
    CheckpointDeterminismRule(), RawEnvironmentQueryRule(),
)


def lint_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Lint one file's source text; returns sorted diagnostics."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Diagnostic(path, err.lineno or 1, (err.offset or 0) + 1,
                           "REP000", f"syntax error: {err.msg}")]
    lines = source.splitlines()
    suppressions = SuppressionFilter("graphlint", lines, tree)
    diagnostics: List[Diagnostic] = []
    ctx = _FileContext(path, tree, lines)
    for rule in RULES:
        for diag in rule.check(ctx):
            if suppressions.covers(diag.rule, diag.line):
                continue
            diagnostics.append(diag)
    return sorted(diagnostics)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files and directories into a deduplicated ``*.py`` stream."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            # A typo'd CI path must not produce a vacuous "clean" pass.
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if set(candidate.parts) & _EXCLUDED_DIR_PARTS:
                continue
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                yield candidate


def lint_paths(paths: Iterable[str]) -> Tuple[List[Diagnostic], int]:
    """Lint every python file under ``paths``.

    Returns ``(diagnostics, files_checked)``.
    """
    diagnostics: List[Diagnostic] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        source = path.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, str(path)))
    return diagnostics, checked


def _print_rules() -> None:
    describe_rules((rule.id, rule.title, rule.rationale) for rule in RULES)


def rule_statistics(diagnostics: Sequence[Diagnostic]) -> dict:
    """Diagnostic counts per rule id, covering every registered rule."""
    return _common_statistics(diagnostics, [rule.id for rule in RULES])


def _render_json(diagnostics: Sequence[Diagnostic], checked: int) -> str:
    """The ``--format=json`` payload (diagnostics, stats, file count)."""
    rows = [{"path": d.path, "line": d.line, "col": d.col,
             "rule": d.rule, "message": d.message} for d in diagnostics]
    return json_report(rows, rule_statistics(diagnostics),
                       files_checked=checked)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="graphlint: repo-specific static analysis")
    parser.add_argument("paths", nargs="*", default=["src", "tests",
                                                     "benchmarks"],
                        help="files or directories to lint "
                             "(default: src tests benchmarks)")
    parser.add_argument("--rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json suppresses the human "
                             "report; exit codes are unchanged)")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule diagnostic counts")
    args = parser.parse_args(argv)
    if args.rules:
        _print_rules()
        return 0
    try:
        diagnostics, checked = lint_paths(args.paths)
    except FileNotFoundError as error:
        print(f"graphlint: {error}", file=sys.stderr)
        return EXIT_INTERNAL
    if args.format == "json":
        print(_render_json(diagnostics, checked))
        return exit_code(diagnostics)
    for diag in diagnostics:
        print(diag.format())
    if args.statistics:
        for rule_id, count in sorted(rule_statistics(diagnostics).items()):
            print(f"{rule_id}  {count}")
    if diagnostics:
        files = len({d.path for d in diagnostics})
        print(f"graphlint: {len(diagnostics)} error(s) in {files} file(s) "
              f"({checked} checked)", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"graphlint: clean ({checked} files, {len(RULES)} rules)",
          file=sys.stderr)
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
