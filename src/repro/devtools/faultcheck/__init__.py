"""faultcheck: cross-procedural exception-flow & fork-protocol analyzer.

Statically proves the serve layer's fault-tolerance invariants over the
same :class:`~repro.devtools.effectcheck.index.PackageIndex` and
bottom-up fixed-point machinery effectcheck uses for purity:

* **REP013** — no taxonomy laundering: broad handlers re-raise
  ``HOST_ERRORS`` (MemoryError/SystemError/RecursionError);
* **REP014** — taxonomy exhaustiveness: every raise escaping the
  supervised query path is classifiable (Transient/Fatal/host/contract);
* **REP015** — fork-protocol safety: worker-reachable code installs no
  signal handlers, spawns nothing, touches no parent fds, and the
  worker entry resets inherited SIGTERM/SIGINT;
* **REP016** — journal torn-tail discipline: append-only handles,
  write→flush→fsync, no seek/truncate;
* **REP017** — restore-on-raise: try-scoped ranker mutations are
  restored in re-raising handlers.

Run ``python -m repro.devtools.faultcheck`` (or ``--self-test`` for the
planted-bug end-to-end check).  Stdlib-only: the analyzed package is
parsed, never imported.
"""

from .cli import analyze_package, default_root, main, run_self_test
from .flows import (ExceptionTable, FaultFacts, RaiseFact, extract_facts,
                    propagate_raises, reachability)
from .rules import FaultContext, check_all

__all__ = [
    "ExceptionTable",
    "FaultContext",
    "FaultFacts",
    "RaiseFact",
    "analyze_package",
    "check_all",
    "default_root",
    "extract_facts",
    "main",
    "propagate_raises",
    "reachability",
    "run_self_test",
]
