"""Module runner for ``python -m repro.devtools.faultcheck``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
