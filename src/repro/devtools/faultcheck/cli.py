"""faultcheck CLI — static fault-tolerance verification for ``repro``.

Usage::

    python -m repro.devtools.faultcheck                 # analyze src/repro
    python -m repro.devtools.faultcheck --rules         # describe rules
    python -m repro.devtools.faultcheck --format=json   # machine-readable
    python -m repro.devtools.faultcheck --self-test     # planted-bug
                                                        # end-to-end check

A diagnostic can be silenced with a trailing comment on any physical
line of the offending statement::

    except Exception:  # faultcheck: disable=REP013

``# faultcheck: disable`` (no rule ids) silences every rule there.

``--self-test`` proves the analyzer end-to-end without executing any
repro code: it copies the analyzed tree and plants the two historical
fault-path bugs this tool exists to prevent — it widens the supervised
handler in ``CampaignScheduler._run_slice`` to swallow ``MemoryError``
(deleting the isinstance-HOST_ERRORS re-raise gate) and deletes the
inherited-signal resets at the top of the pool worker entry
``_worker_main`` (the PR 6 leaked-worker bug).  The doctored copy must
fail with a REP013 at the exact handler line (call chain through
``CampaignScheduler.run``) and a REP015 at the worker entry (provenance
chain naming ``DrainController.install``).  Because a successful
self-test by construction *finds* both planted bugs, it exits
``EXIT_FINDINGS`` (1); a miss is an analyzer defect and exits
``EXIT_INTERNAL`` (2).
"""

from __future__ import annotations

import argparse
import ast
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import (EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL,
                      SuppressionFilter, describe_rules, display_path,
                      exit_code, json_report, render_chain_text,
                      rule_statistics)
from ..effectcheck.index import PackageIndex
from ..effectcheck.rules import Diagnostic
from ..effectcheck.summaries import FunctionSummary, build_summaries
from .rules import check_all

_RULES = (
    ("REP013", "no taxonomy laundering of host errors",
     "handlers broad enough to catch MemoryError/SystemError/"
     "RecursionError must re-raise them (the CampaignScheduler."
     "_run_slice gate) or ship them out of process (the pool worker)"),
    ("REP014", "taxonomy exhaustiveness on the query path",
     "every statically-typed raise escaping the supervised query path "
     "must map into the Transient/Fatal taxonomy (CampaignError), the "
     "host triple, control-flow or contract exceptions"),
    ("REP015", "fork-protocol safety",
     "code reachable from a forked worker entry must not install "
     "signal handlers, spawn threads/processes or touch parent fds; "
     "the entry must reset inherited SIGTERM/SIGINT handlers"),
    ("REP016", "journal torn-tail write protocol",
     "self-stored open() journal handles are append-only, every write "
     "is flushed in the same method, the class fsyncs the handle, and "
     "nothing seeks or truncates it"),
    ("REP017", "restore-on-raise consistency",
     "a method that mutates ranker state inside a try must restore it "
     "in any re-raising handler before the raise (the "
     "RecommenderSystem.inject pattern)"),
)


def default_root() -> Path:
    """The ``repro`` package directory this module is installed in."""
    return Path(__file__).resolve().parents[2]


def analyze_package(root: Path, package: str = "repro"
                    ) -> Tuple[PackageIndex, Dict[str, FunctionSummary],
                               List[Diagnostic]]:
    """Index, summarize and fault-rule-check one package tree."""
    index = PackageIndex(Path(root), package)
    summaries = build_summaries(index)
    filters = {module.path: SuppressionFilter("faultcheck",
                                              module.source_lines,
                                              module.tree)
               for module in index.modules.values()}
    diagnostics = []
    for diag in check_all(index, summaries):
        suppressions = filters.get(diag.path)
        if suppressions is not None \
                and suppressions.covers(diag.rule, diag.line):
            continue
        diagnostics.append(diag)
    return index, summaries, diagnostics


def _render_json(diagnostics: Sequence[Diagnostic],
                 index: PackageIndex) -> str:
    rows = [{"path": display_path(d.path), "line": d.line,
             "rule": d.rule, "message": d.message, "chain": list(d.chain)}
            for d in diagnostics]
    statistics = rule_statistics(diagnostics,
                                 [rule_id for rule_id, _, _ in _RULES])
    return json_report(rows, statistics,
                       modules_checked=len(index.modules),
                       functions_analyzed=len(index.functions))


# ----------------------------------------------------------------------
# Planted-bug self-test
# ----------------------------------------------------------------------
def _delete_lines(path: Path, spans: Sequence[Tuple[int, int]]) -> None:
    """Remove the 1-based inclusive line spans from ``path``."""
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    doomed = {line for start, end in spans
              for line in range(start, end + 1)}
    path.write_text(
        "".join(line for number, line in enumerate(lines, start=1)
                if number not in doomed), encoding="utf-8")


def _plant_swallowed_host_error(root: Path) -> Tuple[Path, int]:
    """Widen the supervised scheduler handler to swallow MemoryError.

    Deletes the ``if isinstance(error, HOST_ERRORS): raise`` gate from
    the broad ``except Exception`` in ``CampaignScheduler._run_slice``.
    Returns the doctored file and the handler's 1-based line (unchanged:
    the deleted lines sit below it).
    """
    target = root / "serve" / "scheduler.py"
    tree = ast.parse(target.read_text(encoding="utf-8"))
    gate: Optional[ast.If] = None
    handler_line: Optional[int] = None
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "_run_slice"):
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.ExceptHandler):
                continue
            for stmt in inner.body:
                if isinstance(stmt, ast.If) \
                        and isinstance(stmt.test, ast.Call) \
                        and isinstance(stmt.test.func, ast.Name) \
                        and stmt.test.func.id == "isinstance":
                    gate = stmt
                    handler_line = inner.lineno
    if gate is None or handler_line is None:
        raise RuntimeError(
            "self-test: HOST_ERRORS gate in _run_slice not found")
    _delete_lines(target, [(gate.lineno,
                            gate.end_lineno or gate.lineno)])
    return target, handler_line


def _plant_deleted_signal_reset(root: Path) -> Tuple[Path, int]:
    """Delete the worker's inherited-signal resets (the PR 6 bug).

    Removes every top-level ``signal.signal(..., SIG_DFL/SIG_IGN)``
    statement from ``_worker_main`` in ``perf/pool.py``.  Returns the
    doctored file and the worker entry's 1-based ``def`` line.
    """
    target = root / "perf" / "pool.py"
    tree = ast.parse(target.read_text(encoding="utf-8"))
    worker: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) \
                and node.name == "_worker_main":
            worker = node
    if worker is None:
        raise RuntimeError("self-test: _worker_main not found")
    spans: List[Tuple[int, int]] = []
    for stmt in worker.body:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            continue
        call = stmt.value
        refs = [ast.unparse(arg) for arg in call.args[1:2]]
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr == "signal" \
                and any(ref.endswith(("SIG_DFL", "SIG_IGN"))
                        for ref in refs):
            spans.append((stmt.lineno, stmt.end_lineno or stmt.lineno))
    if not spans:
        raise RuntimeError(
            "self-test: signal resets in _worker_main not found")
    _delete_lines(target, spans)
    return target, worker.lineno


def run_self_test() -> int:
    """Copy the tree, plant both historical bugs, require detection.

    Returns ``EXIT_FINDINGS`` when both planted violations are caught
    at their exact lines with the required call chains (the self-test
    *is* a finding run), ``EXIT_INTERNAL`` when the analyzer misses.
    """
    source_root = default_root()
    with tempfile.TemporaryDirectory(prefix="faultcheck-") as scratch:
        copy_root = Path(scratch) / "repro"
        shutil.copytree(source_root, copy_root,
                        ignore=shutil.ignore_patterns("__pycache__"))
        sched_path, handler_line = _plant_swallowed_host_error(copy_root)
        pool_path, entry_line = _plant_deleted_signal_reset(copy_root)
        _, _, diagnostics = analyze_package(copy_root)
        swallowed = [d for d in diagnostics
                     if d.path == str(sched_path)
                     and d.line == handler_line and d.rule == "REP013"]
        swallowed_chained = [
            d for d in swallowed
            if any("CampaignScheduler.run" in frame for frame in d.chain)]
        unreset = [d for d in diagnostics
                   if d.path == str(pool_path)
                   and d.line == entry_line and d.rule == "REP015"]
        unreset_chained = [
            d for d in unreset
            if any("DrainController.install" in frame
                   for frame in d.chain)]
        if swallowed_chained and unreset_chained:
            print("faultcheck --self-test: both planted bugs caught — "
                  f"swallowed MemoryError at scheduler.py:{handler_line} "
                  "(chain through CampaignScheduler.run), missing signal "
                  f"reset at pool.py:{entry_line} (provenance chain "
                  "through DrainController.install)", file=sys.stderr)
            render_chain_text(swallowed_chained + unreset_chained)
            return EXIT_FINDINGS
        print("faultcheck --self-test: FAILED — "
              f"scheduler.py:{handler_line} REP013 "
              f"(found={len(swallowed)}, chained={len(swallowed_chained)}"
              f"), pool.py:{entry_line} REP015 (found={len(unreset)}, "
              f"chained={len(unreset_chained)})", file=sys.stderr)
        render_chain_text(diagnostics)
        return EXIT_INTERNAL


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.faultcheck",
        description="faultcheck: cross-procedural exception-flow and "
                    "fork-protocol verification")
    parser.add_argument("--root", default=None,
                        help="package directory to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--package", default="repro",
                        help="dotted package name of --root")
    parser.add_argument("--rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (json suppresses the human "
                             "report; exit codes are unchanged)")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule diagnostic counts")
    parser.add_argument("--self-test", action="store_true",
                        help="plant a swallowed MemoryError and a "
                             "deleted worker signal reset in a copy of "
                             "the source and require exact-line, "
                             "call-chained detection of both (exits 1 "
                             "on success: the planted bugs are found)")
    args = parser.parse_args(argv)
    if args.rules:
        describe_rules(_RULES)
        return EXIT_CLEAN
    if args.self_test:
        return run_self_test()
    root = Path(args.root) if args.root else default_root()
    if not root.is_dir():
        print(f"faultcheck: no such directory: {root}", file=sys.stderr)
        return EXIT_INTERNAL
    index, summaries, diagnostics = analyze_package(root, args.package)
    if index.errors:
        for error in index.errors:
            print(f"faultcheck: {error}", file=sys.stderr)
        return EXIT_INTERNAL
    if args.format == "json":
        print(_render_json(diagnostics, index))
        return exit_code(diagnostics)
    render_chain_text(diagnostics)
    if args.statistics:
        counts = rule_statistics(diagnostics,
                                 [rule_id for rule_id, _, _ in _RULES])
        for rule_id, count in sorted(counts.items()):
            print(f"{rule_id}  {count}")
    if diagnostics:
        files = len({d.path for d in diagnostics})
        print(f"faultcheck: {len(diagnostics)} error(s) in {files} "
              f"file(s) ({len(index.modules)} modules, "
              f"{len(index.functions)} functions)", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"faultcheck: clean ({len(index.modules)} modules, "
          f"{len(index.functions)} functions analyzed)", file=sys.stderr)
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
