"""Cross-procedural exception-flow model for faultcheck.

Builds, per function, the raw fault-path facts the rules consume:

* **raise sites** — every ``raise SomeError(...)`` whose exception class
  resolves statically (to an indexed package class or a builtin), with
  the stack of enclosing ``try`` frames that could intercept it;
* **handler summaries** — what each ``except`` clause catches (tuple
  aliases like ``HOST_ERRORS`` expanded), whether it re-raises
  unconditionally (a top-level bare ``raise``), through an
  ``isinstance`` gate, or by shipping the error over a pipe and raising
  ``SystemExit`` (the pool-worker pattern);
* **concurrency ops** — signal installs/resets, thread/process spawns
  and parent-fd touches, plus the functions handed to ``Process`` as
  fork targets.

On top of the facts, :func:`propagate_raises` runs the same bottom-up
fixed point effectcheck uses for effects: a function's **raise set** is
its own escaping raise sites plus every callee raise that escapes the
``try`` frames around the call site, each carrying the full call chain
back to the leaf ``raise``.  Dynamic re-raises (``raise err``) and
raises inside nested ``def``s are out of scope and documented as such —
the taxonomy classes all flow through first-class ``raise Class(...)``
statements, which is the shape the rules police.

Handler subtraction is deliberately absorbing: a handler that matches
an exception type swallows it unless it *always* re-raises (top-level
bare ``raise``) or its ``isinstance`` gate names the type.  A handler
that conditionally re-raises has made a classification decision; REP013
separately polices that the decision never launders host errors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..effectcheck.index import (FunctionInfo, ModuleInfo, PackageIndex,
                                 dotted_name)
from ..effectcheck.summaries import MAX_CHAIN, FunctionSummary

#: Builtin exception hierarchy (child -> parent), enough to decide what
#: ``except Exception`` catches without importing anything.
BUILTIN_EXCEPTION_BASES: Dict[str, Optional[str]] = {
    "BaseException": None,
    "Exception": "BaseException",
    "SystemExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "BlockingIOError": "OSError",
    "BrokenPipeError": "OSError",
    "ConnectionError": "OSError",
    "ConnectionResetError": "ConnectionError",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "Warning": "Exception",
}

#: The host-fault triple the serve layer must never classify away.
HOST_ERROR_NAMES = ("MemoryError", "SystemError", "RecursionError")

#: Call targets recognized as thread/process creation (REP015).
SPAWN_FACTORIES = {"Thread", "Process", "Pool", "ThreadPoolExecutor",
                   "ProcessPoolExecutor", "Popen", "Timer"}

#: Dotted stdlib calls that fork (REP015).
FORK_CALLS = {"os.fork", "os.forkpty"}

#: Receivers that are fds owned by the parent process (REP015).
PARENT_FD_RECEIVERS = {"sys.stdin", "sys.stdout", "sys.stderr"}


@dataclass(frozen=True)
class Handler:
    """One summarized ``except`` clause."""

    #: Trailing names of the caught types, tuple aliases expanded;
    #: empty together with ``bare=True`` for ``except:``.
    covers: Tuple[str, ...]
    bare: bool
    line: int
    #: Unconditional top-level bare ``raise``: everything passes through.
    transparent: bool
    #: Type names re-raised via ``if isinstance(err, T): raise`` gates.
    gate: Tuple[str, ...]
    #: The pool-worker pattern: the caught error is shipped out through
    #: a call (``conn.send((.., error, ..))``) and the handler raises
    #: ``SystemExit`` — classification happens on the receiving side.
    ships: bool
    bound: Optional[str]


@dataclass(frozen=True)
class TryFrame:
    """The handler clauses of one enclosing ``try``."""

    handlers: Tuple[Handler, ...]


@dataclass(frozen=True)
class RaiseSite:
    """One statically-typed ``raise`` with its guarding ``try`` stack."""

    type_key: str                 # package class key or builtin name
    name: str                     # trailing class name
    line: int
    frames: Tuple[TryFrame, ...]  # innermost first


@dataclass(frozen=True)
class OpSite:
    """One concurrency-protocol-relevant operation (REP015)."""

    kind: str   # "signal_reset" | "signal_install" | "spawn" | "parent_fd"
    line: int
    detail: str


@dataclass(frozen=True)
class RaiseFact:
    """One exception type escaping a function, with its origin chain."""

    type_key: str
    name: str
    path: str
    line: int
    chain: Tuple[str, ...] = ()   # caller frames, outermost first

    @property
    def key(self) -> Tuple[str, str, int]:
        """Deduplication key within one function's raise set."""
        return (self.type_key, self.path, self.line)


@dataclass
class FaultFacts:
    """All per-function raw facts extracted in one AST pass."""

    fn: FunctionInfo
    raises: List[RaiseSite] = field(default_factory=list)
    handlers: List[Handler] = field(default_factory=list)
    #: (start, end, frames) statement regions for call-site lookups.
    regions: List[Tuple[int, int, Tuple[TryFrame, ...]]] = \
        field(default_factory=list)
    ops: List[OpSite] = field(default_factory=list)
    #: Signal names reset (SIG_DFL/SIG_IGN) at the function's top level.
    resets: Set[str] = field(default_factory=set)
    #: Function keys passed as ``target=`` to a ``Process(...)`` call.
    process_targets: List[str] = field(default_factory=list)


def relpath(index: PackageIndex, path: str) -> str:
    """Render ``path`` relative to the analyzed tree's parent."""
    try:
        return str(Path(path).relative_to(index.root.parent))
    except ValueError:
        return path


# ----------------------------------------------------------------------
# Exception-type resolution and ancestry
# ----------------------------------------------------------------------
class ExceptionTable:
    """Resolve exception references and ancestry against the index.

    Types are keyed by the package class key (``repro.runtime.errors
    .CorruptRewardError``) or the bare builtin name (``ValueError``).
    Ancestry is a *name* set — package class names merged with the
    builtin chain reached through unresolved base refs — so handler
    matching degrades gracefully (CHA-style, by trailing name) when a
    reference cannot be resolved precisely.
    """

    def __init__(self, index: PackageIndex) -> None:
        self.index = index
        #: ``module.NAME`` -> expanded type names, for module-level
        #: exception tuples like ``HOST_ERRORS = (MemoryError, ...)``.
        self.tuple_aliases: Dict[str, Tuple[str, ...]] = {}
        self._ancestry_cache: Dict[str, FrozenSet[str]] = {}
        for module in index.modules.values():
            self._scan_tuples(module)

    def _scan_tuples(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Tuple)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            names: List[str] = []
            for element in node.value.elts:
                ref = dotted_name(element)
                if ref is None:
                    names = []
                    break
                tail = ref.rsplit(".", 1)[-1]
                if tail in BUILTIN_EXCEPTION_BASES or \
                        self.index.resolve_class(module.dotted, ref):
                    names.append(tail)
                else:
                    names = []
                    break
            if names:
                key = f"{module.dotted}.{node.targets[0].id}"
                self.tuple_aliases[key] = tuple(names)

    def resolve_raise(self, module: str, ref: str) -> Optional[str]:
        """Type key for ``raise <ref>(...)``, or ``None`` if dynamic."""
        cls = self.index.resolve_class(module, ref)
        if cls is not None:
            return cls.key
        tail = ref.rsplit(".", 1)[-1]
        if tail in BUILTIN_EXCEPTION_BASES:
            return tail
        return None

    def handler_names(self, module: str, ref: str) -> Tuple[str, ...]:
        """Names one ``except <ref>`` entry covers (aliases expanded)."""
        resolved = self.index.resolve(module, ref)
        for key in (resolved, f"{module}.{ref}"):
            if key in self.tuple_aliases:
                return self.tuple_aliases[key]
        cls = self.index.resolve_class(module, ref)
        if cls is not None:
            return (cls.name,)
        return (ref.rsplit(".", 1)[-1],)

    def ancestry(self, type_key: str) -> FrozenSet[str]:
        """All class names an instance of ``type_key`` is."""
        cached = self._ancestry_cache.get(type_key)
        if cached is not None:
            return cached
        names: Set[str] = set()
        cls = self.index.classes.get(type_key)
        if cls is None:
            self._add_builtin_chain(names, type_key.rsplit(".", 1)[-1])
        else:
            for ancestor in self.index.mro(cls):
                names.add(ancestor.name)
                for base_ref in ancestor.base_refs:
                    if self.index.resolve_class(ancestor.module,
                                                base_ref) is None:
                        self._add_builtin_chain(
                            names, base_ref.rsplit(".", 1)[-1])
        result = frozenset(names)
        self._ancestry_cache[type_key] = result
        return result

    @staticmethod
    def _add_builtin_chain(names: Set[str], name: str) -> None:
        while name in BUILTIN_EXCEPTION_BASES:
            names.add(name)
            parent = BUILTIN_EXCEPTION_BASES[name]
            if parent is None:
                break
            name = parent

    def catches(self, handler: Handler, type_key: str) -> bool:
        """Whether ``handler`` matches an exception of ``type_key``."""
        if handler.bare:
            return True
        return bool(set(handler.covers) & self.ancestry(type_key))


def escapes(table: ExceptionTable, type_key: str,
            frames: Sequence[TryFrame]) -> bool:
    """Whether ``type_key`` raised under ``frames`` leaves the function."""
    for frame in frames:                      # innermost first
        matched = None
        for handler in frame.handlers:
            if table.catches(handler, type_key):
                matched = handler
                break
        if matched is None:
            continue
        if matched.transparent:
            continue                          # re-raised; keep climbing
        if set(matched.gate) & table.ancestry(type_key):
            continue                          # gate re-raises this type
        return False                          # absorbed (classified here)
    return True


# ----------------------------------------------------------------------
# Per-function fact extraction
# ----------------------------------------------------------------------
class _FactExtractor:
    """One pass over a function body collecting :class:`FaultFacts`."""

    def __init__(self, index: PackageIndex, table: ExceptionTable,
                 fn: FunctionInfo) -> None:
        self.index = index
        self.table = table
        self.fn = fn
        self.module = fn.module
        self.facts = FaultFacts(fn=fn)

    def run(self) -> FaultFacts:
        """Extract raises, handlers, regions and concurrency ops."""
        body = self.fn.node.body
        self._walk(body, ())
        for stmt in body:
            self._top_level_resets(stmt)
        return self.facts

    # -- statement walk with the enclosing-try stack -------------------
    def _walk(self, body: Sequence[ast.stmt],
              frames: Tuple[TryFrame, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue                      # nested scopes: out of scope
            end = getattr(stmt, "end_lineno", stmt.lineno)
            self.facts.regions.append((stmt.lineno, end, frames))
            self._scan_expressions(stmt)
            if isinstance(stmt, ast.Try):
                handlers = tuple(self._handler(h) for h in stmt.handlers)
                self.facts.handlers.extend(handlers)
                self._walk(stmt.body, frames + (TryFrame(handlers),))
                for node in stmt.handlers:
                    self._walk(node.body, frames)
                self._walk(stmt.orelse, frames)
                self._walk(stmt.finalbody, frames)
            elif isinstance(stmt, ast.Raise):
                self._raise_site(stmt, frames)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._walk(stmt.body, frames)
                self._walk(stmt.orelse, frames)
            elif isinstance(stmt, ast.If):
                self._walk(stmt.body, frames)
                self._walk(stmt.orelse, frames)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, frames)

    def _raise_site(self, stmt: ast.Raise,
                    frames: Tuple[TryFrame, ...]) -> None:
        exc = stmt.exc
        if exc is None:
            return                            # bare re-raise: transparent
        target = exc.func if isinstance(exc, ast.Call) else exc
        ref = dotted_name(target)
        if ref is None:
            return
        type_key = self.table.resolve_raise(self.module, ref)
        if type_key is None:
            return                            # ``raise err``: dynamic
        self.facts.raises.append(RaiseSite(
            type_key=type_key, name=type_key.rsplit(".", 1)[-1],
            line=stmt.lineno, frames=frames))

    # -- handler summarization -----------------------------------------
    def _handler(self, node: ast.ExceptHandler) -> Handler:
        covers: List[str] = []
        bare = node.type is None
        if node.type is not None:
            elements = (node.type.elts if isinstance(node.type, ast.Tuple)
                        else [node.type])
            for element in elements:
                ref = dotted_name(element)
                if ref is None:
                    continue
                covers.extend(self.table.handler_names(self.module, ref))
        transparent = any(isinstance(stmt, ast.Raise) and stmt.exc is None
                          for stmt in node.body)
        gate = self._gate_names(node)
        ships = self._ships_and_exits(node)
        return Handler(covers=tuple(covers), bare=bare, line=node.lineno,
                       transparent=transparent, gate=gate, ships=ships,
                       bound=node.name)

    def _gate_names(self, node: ast.ExceptHandler) -> Tuple[str, ...]:
        """Types re-raised through ``if isinstance(err, T): raise``."""
        if node.name is None:
            return ()
        gate: List[str] = []
        for stmt in node.body:
            if not (isinstance(stmt, ast.If)
                    and isinstance(stmt.test, ast.Call)
                    and isinstance(stmt.test.func, ast.Name)
                    and stmt.test.func.id == "isinstance"
                    and len(stmt.test.args) == 2
                    and isinstance(stmt.test.args[0], ast.Name)
                    and stmt.test.args[0].id == node.name):
                continue
            if not any(isinstance(inner, ast.Raise) and inner.exc is None
                       for inner in stmt.body):
                continue
            spec = stmt.test.args[1]
            elements = (spec.elts if isinstance(spec, ast.Tuple)
                        else [spec])
            for element in elements:
                ref = dotted_name(element)
                if ref is not None:
                    gate.extend(self.table.handler_names(self.module, ref))
        return tuple(gate)

    def _ships_and_exits(self, node: ast.ExceptHandler) -> bool:
        """The worker pattern: error shipped out, then ``SystemExit``."""
        if node.name is None:
            return False
        shipped = False
        exits = False
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Call):
                    for arg in ast.walk(inner):
                        if isinstance(arg, ast.Name) \
                                and arg.id == node.name \
                                and arg is not inner.func:
                            shipped = True
                if isinstance(inner, ast.Raise) and inner.exc is not None:
                    target = inner.exc.func \
                        if isinstance(inner.exc, ast.Call) else inner.exc
                    if dotted_name(target) == "SystemExit":
                        exits = True
        return shipped and exits

    # -- concurrency ops -----------------------------------------------
    def _scan_expressions(self, stmt: ast.stmt) -> None:
        for value in ast.iter_child_nodes(stmt):
            if not isinstance(value, ast.expr):
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Call):
                    self._classify_call(node)

    def _classify_call(self, node: ast.Call) -> None:
        func = node.func
        ref = dotted_name(func)
        dotted = self._stdlib_target(ref)
        if dotted == "signal.signal":
            self._signal_call(node)
            return
        if dotted in FORK_CALLS:
            self.facts.ops.append(OpSite("spawn", node.lineno,
                                         f"{dotted}()"))
            return
        terminal = ref.rsplit(".", 1)[-1] if ref else None
        if terminal in SPAWN_FACTORIES \
                and self.index.resolve_class(self.module,
                                             ref or "") is None:
            self.facts.ops.append(OpSite(
                "spawn", node.lineno, f"{terminal}(...) constructor"))
            if terminal == "Process":
                self._process_target(node)
            return
        if isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value)
            if receiver is not None \
                    and self._stdlib_target(receiver) \
                    in PARENT_FD_RECEIVERS:
                self.facts.ops.append(OpSite(
                    "parent_fd", node.lineno,
                    f"{receiver}.{func.attr}()"))
        elif isinstance(func, ast.Name) and func.id == "input":
            self.facts.ops.append(OpSite("parent_fd", node.lineno,
                                         "input()"))

    def _stdlib_target(self, ref: Optional[str]) -> Optional[str]:
        """Map ``sig.signal`` through the module's import table."""
        if ref is None:
            return None
        head, _, rest = ref.partition(".")
        module = self.index.modules.get(self.module)
        target = module.imports.get(head) if module else None
        if target is None:
            return ref
        return f"{target}.{rest}" if rest else target

    def _signal_call(self, node: ast.Call) -> None:
        signame = "?"
        if node.args:
            sig_ref = dotted_name(node.args[0])
            if sig_ref:
                signame = sig_ref.rsplit(".", 1)[-1]
        handler_ref = None
        if len(node.args) > 1:
            handler_ref = dotted_name(node.args[1])
        tail = handler_ref.rsplit(".", 1)[-1] if handler_ref else None
        if tail in ("SIG_DFL", "SIG_IGN"):
            self.facts.ops.append(OpSite(
                "signal_reset", node.lineno,
                f"signal.signal({signame}, {tail})"))
        else:
            self.facts.ops.append(OpSite(
                "signal_install", node.lineno,
                f"signal.signal({signame}, ...)"))

    def _top_level_resets(self, stmt: ast.stmt) -> None:
        """Record SIG_DFL/SIG_IGN resets in the function's own body."""
        if not isinstance(stmt, ast.Expr) \
                or not isinstance(stmt.value, ast.Call):
            return
        node = stmt.value
        if self._stdlib_target(dotted_name(node.func)) != "signal.signal":
            return
        handler_ref = dotted_name(node.args[1]) if len(node.args) > 1 \
            else None
        tail = handler_ref.rsplit(".", 1)[-1] if handler_ref else None
        if tail not in ("SIG_DFL", "SIG_IGN") or not node.args:
            return
        sig_ref = dotted_name(node.args[0])
        if sig_ref:
            self.facts.resets.add(sig_ref.rsplit(".", 1)[-1])

    def _process_target(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            ref = dotted_name(keyword.value)
            if ref is None:
                continue
            resolved = self.index.resolve_function(self.module, ref)
            if resolved is not None:
                self.facts.process_targets.append(resolved.key)


def extract_facts(index: PackageIndex,
                  table: ExceptionTable) -> Dict[str, FaultFacts]:
    """Fault-path facts for every indexed function."""
    return {fn.key: _FactExtractor(index, table, fn).run()
            for fn in index.iter_functions()}


def guards_at(facts: FaultFacts, line: int) -> Tuple[TryFrame, ...]:
    """The ``try`` stack around the innermost statement covering ``line``."""
    best: Optional[Tuple[int, int, Tuple[TryFrame, ...]]] = None
    for start, end, frames in facts.regions:
        if start <= line <= end:
            if best is None or end - start <= best[1] - best[0]:
                best = (start, end, frames)
    return best[2] if best is not None else ()


# ----------------------------------------------------------------------
# Bottom-up raise-set propagation (effectcheck-style fixed point)
# ----------------------------------------------------------------------
def propagate_raises(index: PackageIndex,
                     summaries: Dict[str, FunctionSummary],
                     facts: Dict[str, FaultFacts],
                     table: ExceptionTable
                     ) -> Dict[str, Dict[Tuple[str, str, int], RaiseFact]]:
    """Escaping raise sets per function, with full call chains.

    Seeds each function with its own escaping raise sites, then pushes
    callee raise sets through call sites — subtracting whatever the
    ``try`` frames around each call site absorb — until nothing changes.
    """
    table_out: Dict[str, Dict[Tuple[str, str, int], RaiseFact]] = {}
    for key, fact in facts.items():
        own: Dict[Tuple[str, str, int], RaiseFact] = {}
        for site in fact.raises:
            if escapes(table, site.type_key, site.frames):
                raised = RaiseFact(type_key=site.type_key, name=site.name,
                                   path=fact.fn.path, line=site.line)
                own[raised.key] = raised
        table_out[key] = own
    changed = True
    while changed:
        changed = False
        for key, summary in summaries.items():
            fact = facts.get(key)
            if fact is None:
                continue
            mine = table_out.setdefault(key, {})
            for site in summary.call_sites:
                frames = guards_at(fact, site.line)
                frame = (f"{summary.fn.qualname} "
                         f"({relpath(index, summary.fn.path)}:{site.line})")
                for callee_key in site.callees:
                    for raised in list(table_out.get(callee_key,
                                                     {}).values()):
                        if len(raised.chain) >= MAX_CHAIN:
                            continue
                        if not escapes(table, raised.type_key, frames):
                            continue
                        inherited = RaiseFact(
                            type_key=raised.type_key, name=raised.name,
                            path=raised.path, line=raised.line,
                            chain=(frame,) + raised.chain)
                        if inherited.key not in mine:
                            mine[inherited.key] = inherited
                            changed = True
    return table_out


def reachability(index: PackageIndex,
                 summaries: Dict[str, FunctionSummary],
                 entries: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
    """BFS call closure from ``entries``: fn key -> chain from an entry.

    The chain holds one ``qualname (path:line)`` frame per hop,
    outermost first; entries map to the empty chain.
    """
    reach: Dict[str, Tuple[str, ...]] = {key: () for key in entries
                                         if key in summaries}
    queue: List[str] = list(reach)
    while queue:
        key = queue.pop(0)
        summary = summaries.get(key)
        if summary is None:
            continue
        chain = reach[key]
        if len(chain) >= MAX_CHAIN:
            continue
        frame = (f"{summary.fn.qualname} "
                 f"({relpath(index, summary.fn.path)}")
        for site in summary.call_sites:
            hop = f"{frame}:{site.line})"
            for callee_key in site.callees:
                if callee_key in reach:
                    continue
                reach[callee_key] = chain + (hop,)
                queue.append(callee_key)
    return reach
