"""Fault-tolerance rules REP013-REP017 over exception-flow facts.

================  =====================================================
REP013            a handler broad enough to catch ``HOST_ERRORS``
                  (MemoryError/SystemError/RecursionError) must re-raise
                  them — the supervised handler in
                  ``CampaignScheduler._run_slice`` is the sanctioned
                  shape, the pool worker's ship-and-exit pattern the
                  sanctioned exception
REP014            every statically-typed raise escaping the supervised
                  query path maps into the Transient/Fatal taxonomy
                  (``CampaignError``), the host triple, control-flow
                  exceptions, or the programmer-contract builtins
REP015            code reachable from a forked worker entry must not
                  install signal handlers, spawn threads/processes or
                  touch parent-owned fds; the entry itself must reset
                  inherited SIGTERM/SIGINT handlers
REP016            journal write protocol: self-stored ``open`` handles
                  are append-mode, every write is flushed in the same
                  method, the class fsyncs the handle, and nothing
                  seeks/truncates it
REP017            a function that mutates ranker state inside a ``try``
                  (per effectcheck summaries) must restore it in any
                  re-raising handler before the raise
================  =====================================================

Diagnostics reuse effectcheck's :class:`Diagnostic` (path/line/rule/
message plus a call chain), so both analyzers render identically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..effectcheck.index import ClassInfo, PackageIndex, dotted_name
from ..effectcheck.rules import Diagnostic
from ..effectcheck.summaries import FunctionSummary
from .flows import (HOST_ERROR_NAMES, ExceptionTable, FaultFacts, Handler,
                    extract_facts, propagate_raises, reachability, relpath)

#: Entry points of the supervised query path (class name, method name):
#: the agent's training loop, the fleet scheduler's drive loop, the
#: recommender's reload-and-poison query, and the pool's batch dispatch.
QUERY_PATH_ENTRIES: Tuple[Tuple[str, str], ...] = (
    ("PoisonRec", "train"),
    ("CampaignScheduler", "run"),
    ("RecommenderSystem", "attack"),
    ("QueryPool", "attack_many"),
)

#: Exception *ancestry names* allowed to escape the query path (REP014).
#: Everything else — bare RuntimeError, ad-hoc customs — would reach
#: ``CampaignSupervisor.classify`` unclassifiable.
TAXONOMY_ROOT = "CampaignError"
CONTROL_EXCEPTIONS = frozenset({
    "SystemExit", "KeyboardInterrupt", "GeneratorExit", "StopIteration",
    "DrainRequested",
})
CONTRACT_EXCEPTIONS = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError", "LookupError",
    "AttributeError", "NotImplementedError", "AssertionError",
    "ZeroDivisionError", "OverflowError", "FloatingPointError",
    "OSError", "FileNotFoundError", "FileExistsError", "PermissionError",
    "IsADirectoryError", "EOFError", "UnicodeError", "ImportError",
})
_ALLOWED_ANCESTRY = (frozenset({TAXONOMY_ROOT}) | set(HOST_ERROR_NAMES)
                     | CONTROL_EXCEPTIONS | CONTRACT_EXCEPTIONS)

#: Sanctioned repair channels for REP017 (and excluded from its list of
#: state-mutating triggers — they *are* the restore path).
RESTORE_METHODS = frozenset({"restore", "poison_revert"})


@dataclass
class FaultContext:
    """Everything the five rules consume, built once per analysis."""

    index: PackageIndex
    summaries: Dict[str, FunctionSummary]
    table: ExceptionTable
    facts: Dict[str, FaultFacts]
    raise_table: Dict[str, Dict[Tuple[str, str, int], "object"]] = \
        field(default_factory=dict)
    entries: Tuple[str, ...] = ()
    #: fn key -> chain from a query-path entry (provenance for REP013).
    query_reach: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Function keys passed as ``target=`` to ``Process(...)``.
    fork_entries: Tuple[str, ...] = ()

    @classmethod
    def build(cls, index: PackageIndex,
              summaries: Dict[str, FunctionSummary]) -> "FaultContext":
        """Extract facts, propagate raise sets, resolve entry points."""
        table = ExceptionTable(index)
        facts = extract_facts(index, table)
        ctx = cls(index=index, summaries=summaries, table=table,
                  facts=facts)
        ctx.raise_table = propagate_raises(index, summaries, facts, table)
        entries: List[str] = []
        for class_name, method in QUERY_PATH_ENTRIES:
            owner = _class_named(index, class_name)
            if owner is None:
                continue
            fn = index.find_method(owner, method)
            if fn is not None:
                entries.append(fn.key)
        ctx.entries = tuple(entries)
        ctx.query_reach = reachability(index, summaries, entries)
        ctx.fork_entries = tuple(sorted(
            {target for fact in facts.values()
             for target in fact.process_targets}))
        return ctx


def _class_named(index: PackageIndex, name: str) -> Optional[ClassInfo]:
    matches = [c for c in index.classes.values() if c.name == name]
    return matches[0] if len(matches) == 1 else None


# ----------------------------------------------------------------------
# REP013: no taxonomy laundering of host errors
# ----------------------------------------------------------------------
def _host_coverage(handler: Handler) -> Set[str]:
    """Which of the host triple this handler could catch."""
    if handler.bare:
        return set(HOST_ERROR_NAMES)
    covered: Set[str] = set()
    for name in handler.covers:
        if name in ("Exception", "BaseException"):
            return set(HOST_ERROR_NAMES)
        if name in HOST_ERROR_NAMES:
            covered.add(name)
    return covered


def check_host_laundering(ctx: FaultContext) -> List[Diagnostic]:
    """REP013: broad handlers must re-raise the host-error triple."""
    diagnostics: List[Diagnostic] = []
    for key, fact in ctx.facts.items():
        for handler in fact.handlers:
            covered = _host_coverage(handler)
            if not covered:
                continue
            if handler.transparent or handler.ships:
                continue
            swallowed = sorted(covered - set(handler.gate))
            if not swallowed:
                continue
            what = "bare except" if handler.bare else \
                "except " + "/".join(handler.covers or ("?",))
            diagnostics.append(Diagnostic(
                path=fact.fn.path, line=handler.line, rule="REP013",
                message=(f"'{fact.fn.qualname}' {what} can swallow "
                         f"{'/'.join(swallowed)}; a sick host is not a "
                         f"campaign-local fault — re-raise HOST_ERRORS "
                         f"(the CampaignScheduler._run_slice pattern)"),
                chain=ctx.query_reach.get(key, ())))
    return diagnostics


# ----------------------------------------------------------------------
# REP014: taxonomy exhaustiveness on the supervised query path
# ----------------------------------------------------------------------
def check_taxonomy(ctx: FaultContext) -> List[Diagnostic]:
    """REP014: raises escaping the query path must be classified."""
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, int, str]] = set()
    for entry_key in ctx.entries:
        summary = ctx.summaries.get(entry_key)
        if summary is None:
            continue
        for raised in ctx.raise_table.get(entry_key, {}).values():
            if ctx.table.ancestry(raised.type_key) & _ALLOWED_ANCESTRY:
                continue
            dedup = (raised.path, raised.line, raised.name)
            if dedup in seen:
                continue
            seen.add(dedup)
            diagnostics.append(Diagnostic(
                path=raised.path, line=raised.line, rule="REP014",
                message=(f"'{raised.name}' raised here escapes the "
                         f"supervised query path "
                         f"('{summary.fn.qualname}') but maps into "
                         f"neither the Transient/Fatal taxonomy nor the "
                         f"contract allowlist; base it on CampaignError "
                         f"(repro.runtime.errors) or classify it "
                         f"on-path"),
                chain=raised.chain))
    return diagnostics


# ----------------------------------------------------------------------
# REP015: fork-protocol safety of the worker closure
# ----------------------------------------------------------------------
def _installer_frames(ctx: FaultContext) -> Tuple[str, ...]:
    """Provenance: in-package signal installers workers would inherit."""
    frames: List[str] = []
    for fact in ctx.facts.values():
        for op in fact.ops:
            if op.kind != "signal_install":
                continue
            frames.append(
                f"{fact.fn.qualname} "
                f"({relpath(ctx.index, fact.fn.path)}:{op.line}) "
                f"installs {op.detail} — forked workers inherit it")
    return tuple(sorted(frames))


_OP_MESSAGES = {
    "signal_install": "installs a signal handler",
    "spawn": "spawns a thread/process",
    "parent_fd": "touches a parent-owned fd",
}


def check_fork_protocol(ctx: FaultContext) -> List[Diagnostic]:
    """REP015: worker entries reset signals; their closure stays clean."""
    diagnostics: List[Diagnostic] = []
    required = {"SIGTERM", "SIGINT"}
    for entry_key in ctx.fork_entries:
        entry = ctx.facts.get(entry_key)
        if entry is None:
            continue
        missing = sorted(required - entry.resets)
        if missing:
            diagnostics.append(Diagnostic(
                path=entry.fn.path, line=entry.fn.node.lineno,
                rule="REP015",
                message=(f"forked worker entry '{entry.fn.qualname}' "
                         f"does not reset the inherited "
                         f"{'/'.join(missing)} handler(s) at entry; "
                         f"without signal.signal(..., SIG_DFL/SIG_IGN) "
                         f"resets, workers inherit the parent's drain "
                         f"handlers and terminate() leaks processes"),
                chain=_installer_frames(ctx)))
        closure = reachability(ctx.index, ctx.summaries, [entry_key])
        for key, chain in sorted(closure.items()):
            fact = ctx.facts.get(key)
            if fact is None:
                continue
            for op in fact.ops:
                if op.kind == "signal_reset":
                    continue          # resets are always fork-safe
                message = _OP_MESSAGES.get(op.kind)
                if message is None:
                    continue
                diagnostics.append(Diagnostic(
                    path=fact.fn.path, line=op.line, rule="REP015",
                    message=(f"'{fact.fn.qualname}' {message} "
                             f"({op.detail}) in code reachable from the "
                             f"forked worker entry "
                             f"'{entry.fn.qualname}'; fork-side code "
                             f"must stay signal- and fd-clean"),
                    chain=chain))
    return diagnostics


# ----------------------------------------------------------------------
# REP016: journal/JSONL torn-tail write protocol
# ----------------------------------------------------------------------
def _open_mode(call: ast.Call) -> str:
    if len(call.args) > 1 and isinstance(call.args[1], ast.Constant) \
            and isinstance(call.args[1].value, str):
        return call.args[1].value
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value,
                                                ast.Constant) \
                and isinstance(keyword.value.value, str):
            return keyword.value.value
    return "r"


def _handle_calls(fn_node: ast.AST, receiver: str,
                  attr: str) -> List[Tuple[str, int, ast.Call]]:
    """``self.<attr>.<method>(...)`` calls inside one method body."""
    target = f"{receiver}.{attr}"
    calls: List[Tuple[str, int, ast.Call]] = []
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and dotted_name(node.func.value) == target:
            calls.append((node.func.attr, node.lineno, node))
    return calls


def _mentions_handle(node: ast.AST, receiver: str, attr: str) -> bool:
    target = f"{receiver}.{attr}"
    return any(isinstance(sub, ast.Attribute)
               and dotted_name(sub) == target
               for sub in ast.walk(node))


def check_journal_protocol(ctx: FaultContext) -> List[Diagnostic]:
    """REP016: append-only, write->flush->fsync, no seek/truncate."""
    diagnostics: List[Diagnostic] = []
    for cls in ctx.index.classes.values():
        handles: Dict[str, Tuple[str, int]] = {}
        for fn in cls.methods.values():
            receiver = fn.receiver_name()
            if receiver is None:
                continue
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)
                        and node.value.func.id == "open"):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == receiver:
                        handles[target.attr] = (_open_mode(node.value),
                                                node.lineno)
        for attr, (mode, open_line) in sorted(handles.items()):
            writable = any(flag in mode for flag in "wax+")
            if writable and "a" not in mode:
                diagnostics.append(Diagnostic(
                    path=cls.path, line=open_line, rule="REP016",
                    message=(f"'{cls.name}.{attr}' stores a mode="
                             f"{mode!r} write handle; journal handles "
                             f"must be append-only ('a') so a crash can "
                             f"at worst tear the final record")))
                continue
            if "a" not in mode:
                continue              # read-only handle: not a journal
            fsynced = False
            for fn in cls.methods.values():
                receiver = fn.receiver_name()
                if receiver is None:
                    continue
                writes: List[int] = []
                flushes: List[int] = []
                for method, line, _ in _handle_calls(fn.node, receiver,
                                                     attr):
                    if method == "write":
                        writes.append(line)
                    elif method == "flush":
                        flushes.append(line)
                    elif method in ("seek", "truncate"):
                        diagnostics.append(Diagnostic(
                            path=fn.path, line=line, rule="REP016",
                            message=(f"'{fn.qualname}' calls "
                                     f".{method}() on the append-only "
                                     f"journal handle "
                                     f"'{cls.name}.{attr}'; records are "
                                     f"immutable once written")))
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Call) \
                            and dotted_name(node.func) == "os.fsync" \
                            and node.args \
                            and _mentions_handle(node.args[0], receiver,
                                                 attr):
                        fsynced = True
                for write_line in writes:
                    if not any(line > write_line for line in flushes):
                        diagnostics.append(Diagnostic(
                            path=fn.path, line=write_line, rule="REP016",
                            message=(f"'{fn.qualname}' writes to journal "
                                     f"handle '{cls.name}.{attr}' "
                                     f"without flushing it afterwards "
                                     f"in the same method; an "
                                     f"acknowledged record could sit in "
                                     f"userspace buffers at kill -9")))
            if not fsynced:
                diagnostics.append(Diagnostic(
                    path=cls.path, line=open_line, rule="REP016",
                    message=(f"'{cls.name}.{attr}' is an append-mode "
                             f"journal handle but the class never "
                             f"os.fsync()s it; flushed-but-unsynced "
                             f"records do not survive power loss")))
    return diagnostics


# ----------------------------------------------------------------------
# REP017: restore-on-raise around ranker mutations
# ----------------------------------------------------------------------
def _ranker_attrs(ctx: FaultContext, cls: ClassInfo,
                  ranker_keys: FrozenSet[str]) -> Set[str]:
    attrs = {attr for attr, types
             in ctx.index.merged_attr_types(cls).items()
             if types & ranker_keys}
    attrs |= {attr for attr in ctx.index.merged_own_attrs(cls)
              if attr in ("ranker", "_ranker")}
    return attrs


def _mutates_receiver(ctx: FaultContext, cls: ClassInfo, attr: str,
                      method: str) -> bool:
    """Whether ``self.<attr>.<method>()`` writes the receiver's state."""
    candidates = []
    for type_key in ctx.index.merged_attr_types(cls).get(attr, set()):
        type_cls = ctx.index.classes.get(type_key)
        if type_cls is not None:
            found = ctx.index.find_method(type_cls, method)
            if found is not None:
                candidates.append(found)
    if not candidates:
        candidates = [definer.methods[method]
                      for definer in ctx.index.defining_classes(method)]
    for fn in candidates:
        summary = ctx.summaries.get(fn.key)
        if summary is None:
            continue
        for effect in summary.effects.values():
            if effect.kind == "write" and effect.root[0] == "self":
                return True
    return False


def _restore_lines(body: Sequence[ast.stmt], receiver: str,
                   attrs: Set[str]) -> List[int]:
    lines: List[int] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in RESTORE_METHODS:
                base = dotted_name(node.func.value)
                if base is not None and base.startswith(f"{receiver}.") \
                        and base.split(".", 1)[1] in attrs:
                    lines.append(node.lineno)
    return lines


def check_restore_on_raise(ctx: FaultContext) -> List[Diagnostic]:
    """REP017: try-scoped ranker mutations restore before re-raising."""
    diagnostics: List[Diagnostic] = []
    ranker = _class_named(ctx.index, "Ranker")
    ranker_keys: FrozenSet[str] = frozenset(
        [ranker.key] + [c.key for c in ctx.index.subclasses(ranker)]
    ) if ranker is not None else frozenset()
    for cls in ctx.index.classes.values():
        attrs = _ranker_attrs(ctx, cls, ranker_keys)
        if not attrs:
            continue
        for fn in cls.methods.values():
            receiver = fn.receiver_name()
            if receiver is None:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Try):
                    continue
                mutated = self_attr_mutations(ctx, cls, node.body,
                                              receiver, attrs)
                if not mutated:
                    continue
                final_restores = _restore_lines(node.finalbody, receiver,
                                                attrs)
                if final_restores:
                    continue
                for handler in node.handlers:
                    raises = [inner.lineno for stmt in handler.body
                              for inner in ast.walk(stmt)
                              if isinstance(inner, ast.Raise)]
                    if not raises:
                        continue
                    first_raise = min(raises)
                    restores = _restore_lines(handler.body, receiver,
                                              attrs)
                    if any(line < first_raise for line in restores):
                        continue
                    attr, mut_line = mutated[0]
                    diagnostics.append(Diagnostic(
                        path=fn.path, line=handler.lineno, rule="REP017",
                        message=(f"'{fn.qualname}' mutates "
                                 f"self.{attr} inside this try (line "
                                 f"{mut_line}) but the handler "
                                 f"re-raises without restoring it; "
                                 f"call self.{attr}.restore(...) before "
                                 f"the raise (the "
                                 f"RecommenderSystem.inject pattern)")))
    return diagnostics


def self_attr_mutations(ctx: FaultContext, cls: ClassInfo,
                        body: Sequence[ast.stmt], receiver: str,
                        attrs: Set[str]) -> List[Tuple[str, int]]:
    """``self.<attr>.<m>(...)`` calls in ``body`` that mutate ``attr``."""
    mutated: List[Tuple[str, int]] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Attribute)
                    and isinstance(node.func.value.value, ast.Name)
                    and node.func.value.value.id == receiver):
                continue
            attr = node.func.value.attr
            method = node.func.attr
            if attr not in attrs or method in RESTORE_METHODS:
                continue
            if _mutates_receiver(ctx, cls, attr, method):
                mutated.append((attr, node.lineno))
    return mutated


def check_all(index: PackageIndex,
              summaries: Dict[str, FunctionSummary]) -> List[Diagnostic]:
    """Run every fault rule; diagnostics sorted by location."""
    ctx = FaultContext.build(index, summaries)
    diagnostics = (check_host_laundering(ctx) + check_taxonomy(ctx)
                   + check_fork_protocol(ctx)
                   + check_journal_protocol(ctx)
                   + check_restore_on_raise(ctx))
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics
