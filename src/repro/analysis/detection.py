"""Shilling-attack detectors: how visible is each poisoning strategy?

An extension beyond the paper: platforms defend against data poisoning
with statistical profile analysis.  This module implements three classic
detector families and an evaluation harness that scores every attack in
the repository by how easily its fake accounts are separated from organic
users.

* :class:`DuplicateClickDetector` — attackers that flood one item (the
  optimal ItemPop strategy) produce abnormally repetitive profiles.
* :class:`PopularityDeviationDetector` — fake profiles concentrate on
  items that organic users rarely touch (brand-new targets), giving a low
  mean popularity per click.
* :class:`ProfileSimilarityDetector` — attackers sharing one policy
  produce near-duplicate profiles; organic users are more diverse
  (the classic co-rating shilling signal).

Each detector assigns every new account a suspicion score; accounts above
a percentile threshold (calibrated on organic users) are flagged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..data.interactions import InteractionLog


@dataclass
class DetectionReport:
    """Outcome of running one detector against one attack."""

    detector: str
    flagged: List[int]
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return (2 * self.precision * self.recall
                / (self.precision + self.recall))


class Detector(abc.ABC):
    """Scores accounts by suspicion; higher = more likely fake."""

    name = "detector"

    def __init__(self, threshold_percentile: float = 99.0) -> None:
        if not 0 < threshold_percentile <= 100:
            raise ValueError("threshold_percentile must be in (0, 100]")
        self.threshold_percentile = threshold_percentile
        self._threshold: float | None = None

    @abc.abstractmethod
    def score_user(self, sequence: Sequence[int],
                   context: "DetectionContext") -> float:
        """Suspicion score of one account's click sequence."""

    def fit(self, clean_log: InteractionLog) -> None:
        """Calibrate the flagging threshold on organic users."""
        context = DetectionContext(clean_log)
        scores = [self.score_user(seq, context)
                  for _, seq in clean_log.iter_sequences()]
        self._threshold = float(np.percentile(scores,
                                              self.threshold_percentile))
        self._context = context

    def detect(self, accounts: Dict[int, List[int]]) -> List[int]:
        """Flag the accounts whose score exceeds the calibrated threshold."""
        if self._threshold is None:
            raise RuntimeError("call fit() before detect()")
        return [user for user, sequence in accounts.items()
                if self.score_user(sequence, self._context)
                > self._threshold]


class DetectionContext:
    """Precomputed organic statistics shared by the detectors."""

    def __init__(self, clean_log: InteractionLog) -> None:
        self.popularity = clean_log.item_counts().astype(float)
        total = self.popularity.sum() or 1.0
        self.popularity_share = self.popularity / total
        self.profiles = [set(seq) for _, seq in clean_log.iter_sequences()]


class DuplicateClickDetector(Detector):
    """Score = 1 - (#distinct items / #clicks)."""

    name = "duplicate-clicks"

    def score_user(self, sequence: Sequence[int],
                   context: DetectionContext) -> float:
        if not sequence:
            return 0.0
        return 1.0 - len(set(sequence)) / len(sequence)


class PopularityDeviationDetector(Detector):
    """Score = fraction of clicks on items below median organic popularity.

    Organic users mostly click established items; profiles dominated by
    cold items (like brand-new targets) stand out.
    """

    name = "popularity-deviation"

    def score_user(self, sequence: Sequence[int],
                   context: DetectionContext) -> float:
        if not sequence:
            return 0.0
        popularity = context.popularity
        median = np.median(popularity[popularity > 0]) if (
            popularity > 0).any() else 0.0
        cold = sum(1 for item in sequence
                   if item >= len(popularity) or popularity[item] < median)
        return cold / len(sequence)


class ProfileSimilarityDetector(Detector):
    """Score = max Jaccard similarity with a sample of other profiles.

    Calibrated on organic-vs-organic similarity; a batch of attacker
    accounts drawn from one shared policy is mutually near-duplicate.
    When scoring a suspect batch, the suspect's own batch is included in
    the comparison set (a platform sees all recent signups together).
    """

    name = "profile-similarity"

    def __init__(self, threshold_percentile: float = 99.0,
                 sample_size: int = 200, seed: int = 0) -> None:
        super().__init__(threshold_percentile)
        self.sample_size = sample_size
        self.rng = np.random.default_rng(seed)
        self._batch_profiles: List[set] = []

    def _organic_sample(self, context: DetectionContext) -> List[set]:
        if len(context.profiles) > self.sample_size:
            index = self.rng.choice(len(context.profiles),
                                    size=self.sample_size, replace=False)
            return [context.profiles[i] for i in index]
        return list(context.profiles)

    @staticmethod
    def _max_similarity(profile: set, candidates: Iterable[set]) -> float:
        best = 0.0
        for other in candidates:
            union = len(profile | other)
            if union:
                best = max(best, len(profile & other) / union)
        return best

    def score_user(self, sequence: Sequence[int],
                   context: DetectionContext) -> float:
        profile = set(sequence)
        if not profile:
            return 0.0
        # During calibration the scored user is part of the organic pool;
        # drop exactly one equal profile so self-similarity doesn't push
        # the threshold to 1.0 (genuine organic twins still count once).
        candidates = self._organic_sample(context)
        filtered: List[set] = []
        removed_self = False
        for other in candidates:
            if not removed_self and other == profile:
                removed_self = True
                continue
            filtered.append(other)
        return self._max_similarity(profile, filtered)

    def detect(self, accounts: Dict[int, List[int]]) -> List[int]:
        """Flag accounts similar to organic users *or to each other*.

        Each account is compared against everyone else in the arriving
        batch (excluded by identity, not value, so clone armies with
        identical profiles are mutually visible) plus an organic sample.
        """
        if self._threshold is None:
            raise RuntimeError("call fit() before detect()")
        profiles = {user: set(seq) for user, seq in accounts.items()}
        organic = self._organic_sample(self._context)
        flagged = []
        for user, profile in profiles.items():
            if not profile:
                continue
            others = [p for v, p in profiles.items() if v != user]
            score = self._max_similarity(profile, organic + others)
            if score > self._threshold:
                flagged.append(user)
        return flagged


ALL_DETECTORS = (DuplicateClickDetector, PopularityDeviationDetector,
                 ProfileSimilarityDetector)


def evaluate_detection(detector: Detector, clean_log: InteractionLog,
                       attack_accounts: Dict[int, List[int]],
                       organic_holdout: Dict[int, List[int]] | None = None
                       ) -> DetectionReport:
    """Fit on organic data, flag a mixed batch, report precision/recall.

    ``attack_accounts`` maps fake user ids to their injected sequences.
    ``organic_holdout`` (optional) adds genuine accounts to the batch so
    precision is meaningful; by default a sample of organic users doubles
    as the holdout.
    """
    detector.fit(clean_log)
    if organic_holdout is None:
        organic_holdout = {user: clean_log.sequence(user)
                           for user in clean_log.users[:len(attack_accounts)]}
    batch: Dict[int, List[int]] = {}
    batch.update(organic_holdout)
    batch.update(attack_accounts)
    flagged = set(detector.detect(batch))
    fake = set(attack_accounts)
    true_positives = len(flagged & fake)
    precision = true_positives / len(flagged) if flagged else 0.0
    recall = true_positives / len(fake) if fake else 0.0
    return DetectionReport(detector=detector.name,
                           flagged=sorted(flagged), precision=precision,
                           recall=recall)
