"""Minimal exact t-SNE (van der Maaten & Hinton, 2008) for Figure 6.

Good enough for visualizing a few hundred item embeddings: exact pairwise
affinities with per-point perplexity calibration via binary search,
gradient descent with momentum and early exaggeration.  No Barnes-Hut —
complexity is O(n^2) per iteration.
"""

from __future__ import annotations

import numpy as np


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x ** 2).sum(axis=1)
    d2 = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _conditional_probabilities(distances: np.ndarray, perplexity: float,
                               tolerance: float = 1e-5,
                               max_iterations: int = 50) -> np.ndarray:
    """Row-stochastic P with each row's entropy matched to ``perplexity``."""
    n = len(distances)
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(max_iterations):
            exp_row = np.exp(-row * beta)
            exp_row[i] = 0.0
            total = exp_row.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = exp_row / total
            nonzero = p > 0
            entropy = -np.sum(p[nonzero] * np.log(p[nonzero]))
            error = entropy - target_entropy
            if abs(error) < tolerance:
                break
            if error > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (
                    (beta + beta_high) / 2.0)
            else:
                beta_high = beta
                beta = (beta + beta_low) / 2.0
        probabilities[i] = exp_row / max(total, 1e-12)
    return probabilities


def tsne(x: np.ndarray, num_components: int = 2, perplexity: float = 30.0,
         iterations: int = 300, learning_rate: float = 100.0,
         seed: int = 0) -> np.ndarray:
    """Embed ``x`` into ``num_components`` dimensions with exact t-SNE."""
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 4:
        raise ValueError("t-SNE needs at least 4 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = np.random.default_rng(seed)

    distances = _pairwise_squared_distances(x)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    y = rng.normal(0.0, 1e-4, size=(n, num_components))
    velocity = np.zeros_like(y)
    exaggeration = 4.0
    for iteration in range(iterations):
        p = joint * exaggeration if iteration < 50 else joint
        d2 = _pairwise_squared_distances(y)
        inv = 1.0 / (1.0 + d2)
        np.fill_diagonal(inv, 0.0)
        q = inv / max(inv.sum(), 1e-12)
        q = np.maximum(q, 1e-12)
        coefficient = (p - q) * inv
        gradient = 4.0 * ((np.diag(coefficient.sum(axis=1)) - coefficient)
                          @ y)
        momentum = 0.5 if iteration < 100 else 0.8
        velocity = momentum * velocity - learning_rate * gradient
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
