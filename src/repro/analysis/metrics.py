"""Attack- and strategy-level metrics used across the experiments."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

import numpy as np


def target_click_ratio(trajectories: Sequence[Sequence[int]],
                       num_original_items: int) -> float:
    """Fraction of clicks landing on target items (Figure 5's y-axis)."""
    total = 0
    on_target = 0
    for trajectory in trajectories:
        for item in trajectory:
            total += 1
            if item >= num_original_items:
                on_target += 1
    return on_target / max(total, 1)


def clicked_item_counts(trajectories: Sequence[Sequence[int]]
                        ) -> Dict[int, int]:
    """Click count per item across all trajectories (Figure 6 overlay)."""
    counts: Counter = Counter()
    for trajectory in trajectories:
        counts.update(trajectory)
    return dict(counts)


def distinct_targets_promoted(trajectories: Sequence[Sequence[int]],
                              num_original_items: int,
                              min_clicks: int = 1) -> int:
    """How many distinct target items receive at least ``min_clicks``."""
    counts = clicked_item_counts(trajectories)
    return sum(1 for item, count in counts.items()
               if item >= num_original_items and count >= min_clicks)


def uplift(poisoned_recnum: float, clean_recnum: float) -> float:
    """Absolute RecNum gain of an attack over the clean system."""
    return poisoned_recnum - clean_recnum


def win_counts(results: Dict[str, List[float]]) -> Dict[str, int]:
    """Table IV: per-method count of testbeds where the method is best.

    ``results`` maps method name to a list of per-testbed RecNum values
    (all lists aligned and equal length).  Ties award every tied winner.
    Testbeds where *every* method scores zero are skipped, matching the
    paper's exclusion of the all-zero ItemPop/MovieLens cell.
    """
    if not results:
        return {}
    lengths = {len(values) for values in results.values()}
    if len(lengths) != 1:
        raise ValueError("all methods must cover the same testbeds")
    num_testbeds = lengths.pop()
    wins = {method: 0 for method in results}
    for testbed in range(num_testbeds):
        scores = {method: values[testbed]
                  for method, values in results.items()}
        best = max(scores.values())
        if best <= 0:
            continue
        for method, score in scores.items():
            if score == best:
                wins[method] += 1
    return wins
