"""Analysis utilities: t-SNE visualization and attack metrics."""

from .detection import (ALL_DETECTORS, DetectionReport, Detector,
                        DuplicateClickDetector, PopularityDeviationDetector,
                        ProfileSimilarityDetector, evaluate_detection)
from .metrics import (clicked_item_counts, distinct_targets_promoted,
                      target_click_ratio, uplift, win_counts)
from .plotting import line_chart, popularity_color, scatter_plot
from .tsne import tsne

__all__ = [
    "tsne",
    "target_click_ratio", "clicked_item_counts",
    "distinct_targets_promoted", "uplift", "win_counts",
    "line_chart", "scatter_plot", "popularity_color",
    "Detector", "DetectionReport", "DuplicateClickDetector",
    "PopularityDeviationDetector", "ProfileSimilarityDetector",
    "ALL_DETECTORS", "evaluate_detection",
]
