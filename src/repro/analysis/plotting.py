"""Dependency-free SVG plotting for the figure benchmarks.

matplotlib is not available in the reproduction environment, so the
figure benches render their line charts (Figure 4 training curves) and
scatter plots (Figure 6 t-SNE overlays) as standalone SVG files with this
tiny plotting layer.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, pathlib.Path]

#: A compact categorical palette (distinct at small sizes).
PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5")


@dataclass
class _Frame:
    """Shared axis-frame geometry for both chart types."""

    width: int = 560
    height: int = 360
    margin_left: int = 56
    margin_right: int = 16
    margin_top: int = 36
    margin_bottom: int = 44

    @property
    def plot_width(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> int:
        return self.height - self.margin_top - self.margin_bottom

    def x_pixel(self, value: float, lo: float, hi: float) -> float:
        span = (hi - lo) or 1.0
        return self.margin_left + (value - lo) / span * self.plot_width

    def y_pixel(self, value: float, lo: float, hi: float) -> float:
        span = (hi - lo) or 1.0
        return (self.margin_top
                + (1.0 - (value - lo) / span) * self.plot_height)


def _axis_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        return [lo]
    raw = np.linspace(lo, hi, count)
    return [float(v) for v in raw]


def _svg_header(frame: _Frame, title: str) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{frame.width}" '
        f'height="{frame.height}" viewBox="0 0 {frame.width} '
        f'{frame.height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{frame.width}" height="{frame.height}" '
        'fill="white"/>',
        f'<text x="{frame.width / 2}" y="20" text-anchor="middle" '
        f'font-size="13" font-weight="bold">{title}</text>',
    ]


def _svg_axes(frame: _Frame, x_range: Tuple[float, float],
              y_range: Tuple[float, float], x_label: str,
              y_label: str) -> List[str]:
    parts = []
    x0, x1 = frame.margin_left, frame.margin_left + frame.plot_width
    y0, y1 = frame.margin_top, frame.margin_top + frame.plot_height
    parts.append(f'<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" '
                 'stroke="#333"/>')
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" '
                 'stroke="#333"/>')
    for tick in _axis_ticks(*x_range):
        px = frame.x_pixel(tick, *x_range)
        parts.append(f'<line x1="{px:.1f}" y1="{y1}" x2="{px:.1f}" '
                     f'y2="{y1 + 4}" stroke="#333"/>')
        parts.append(f'<text x="{px:.1f}" y="{y1 + 16}" '
                     f'text-anchor="middle">{tick:g}</text>')
    for tick in _axis_ticks(*y_range):
        py = frame.y_pixel(tick, *y_range)
        parts.append(f'<line x1="{x0 - 4}" y1="{py:.1f}" x2="{x0}" '
                     f'y2="{py:.1f}" stroke="#333"/>')
        parts.append(f'<text x="{x0 - 7}" y="{py + 3:.1f}" '
                     f'text-anchor="end">{tick:g}</text>')
    parts.append(f'<text x="{(x0 + x1) / 2}" y="{frame.height - 8}" '
                 f'text-anchor="middle">{x_label}</text>')
    parts.append(f'<text x="14" y="{(y0 + y1) / 2}" text-anchor="middle" '
                 f'transform="rotate(-90 14 {(y0 + y1) / 2})">'
                 f'{y_label}</text>')
    return parts


def line_chart(series: Dict[str, Sequence[float]], path: PathLike,
               title: str = "", x_label: str = "step",
               y_label: str = "RecNum") -> pathlib.Path:
    """Write a multi-series line chart (Figure 4 style) as SVG.

    ``series`` maps legend label to the y-values (x is the index).
    Returns the written path.
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    frame = _Frame()
    max_len = max(len(values) for values in series.values())
    all_values = [v for values in series.values() for v in values]
    y_lo = min(0.0, min(all_values))
    y_hi = max(all_values) or 1.0
    x_range = (0.0, float(max(max_len - 1, 1)))
    y_range = (y_lo, y_hi * 1.05)

    parts = _svg_header(frame, title)
    parts += _svg_axes(frame, x_range, y_range, x_label, y_label)
    for index, (label, values) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{frame.x_pixel(i, *x_range):.1f},"
            f"{frame.y_pixel(v, *y_range):.1f}"
            for i, v in enumerate(values))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        legend_y = frame.margin_top + 14 * index
        legend_x = frame.margin_left + frame.plot_width - 130
        parts.append(f'<line x1="{legend_x}" y1="{legend_y}" '
                     f'x2="{legend_x + 18}" y2="{legend_y}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{legend_x + 23}" y="{legend_y + 4}">'
                     f'{label}</text>')
    parts.append("</svg>")
    output = pathlib.Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text("\n".join(parts))
    return output


def scatter_plot(points: np.ndarray, path: PathLike, title: str = "",
                 colors: Optional[Sequence[str]] = None,
                 sizes: Optional[Sequence[float]] = None,
                 highlight: Optional[Sequence[int]] = None
                 ) -> pathlib.Path:
    """Write a 2-D scatter (Figure 6 style) as SVG.

    ``points`` is ``(n, 2)``; ``highlight`` indices are drawn as outlined
    stars-of-circles (the paper circles clicked items).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("scatter_plot expects (n, 2) points")
    frame = _Frame()
    x_range = (float(points[:, 0].min()), float(points[:, 0].max()))
    y_range = (float(points[:, 1].min()), float(points[:, 1].max()))

    parts = _svg_header(frame, title)
    parts += _svg_axes(frame, x_range, y_range, "t-SNE dim 1", "t-SNE dim 2")
    highlight_set = set(highlight or ())
    for index, (x, y) in enumerate(points):
        px = frame.x_pixel(x, *x_range)
        py = frame.y_pixel(y, *y_range)
        color = (colors[index] if colors is not None else PALETTE[0])
        radius = (sizes[index] if sizes is not None else 2.5)
        parts.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius:.1f}" '
                     f'fill="{color}" fill-opacity="0.75"/>')
        if index in highlight_set:
            parts.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" '
                         f'r="{radius + 3:.1f}" fill="none" '
                         'stroke="#d62728" stroke-width="1.5"/>')
    parts.append("</svg>")
    output = pathlib.Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text("\n".join(parts))
    return output


def popularity_color(popularity: np.ndarray) -> List[str]:
    """Map popularity to a blue->orange ramp (Figure 6's color coding)."""
    popularity = np.asarray(popularity, dtype=float)
    hi = popularity.max() or 1.0
    ramp = np.clip(popularity / hi, 0.0, 1.0)
    colors = []
    for level in ramp:
        red = int(60 + 195 * level)
        green = int(105 + 60 * level)
        blue = int(208 - 170 * level)
        colors.append(f"#{red:02x}{green:02x}{blue:02x}")
    return colors
