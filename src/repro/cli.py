"""Command-line interface for the PoisonRec reproduction.

Usage (after ``pip install -e .``)::

    python -m repro datasets --scale ci
    python -m repro evaluate --dataset steam --ranker bpr
    python -m repro attack --dataset steam --ranker itempop \
        --method poisonrec --steps 10
    python -m repro attack --method poisonrec --chaos 0.1 \
        --checkpoint campaign.npz --resume
    python -m repro compare --dataset steam --ranker covisitation
    python -m repro submit --dir fleet --name pmf-probe --ranker pmf
    python -m repro serve --dir fleet --resume --workers 4 \
        --obs-log fleet/obs.jsonl
    python -m repro trace fleet/obs.jsonl --export trace.json
    python -m repro metrics fleet/obs.jsonl
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence, Tuple

from .attacks import BASELINE_CLASSES
from .core import PoisonRec
from .perf import QueryPool
from .data import DATASET_NAMES, load_dataset
from .experiments import SCALES, build_environment, format_table, run_baseline
from .obs import RunTelemetry, load_run, write_chrome_trace
from .obs.cli import render_events, render_metrics, render_trace
from .recsys import RANKER_NAMES
from .recsys.evaluation import evaluate_ranking, random_baseline_quality
from .runtime import (FaultPlan, FaultyEnvironment, ResilienceConfig,
                      RetryPolicy, WorkerFaultPlan, as_npz_path)
from .runtime.errors import CorruptCheckpointError
from .serve import (DEFAULT_ACTION_SPACES, DEFAULT_RANKERS, CampaignScheduler,
                    CampaignSpec, FleetTelemetry, SchedulerJournal,
                    grid_specs, replay)
from .serve.supervision import HOST_ERRORS

METHOD_CHOICES = tuple(BASELINE_CLASSES) + ("poisonrec",)
ACTION_SPACE_CHOICES = ("plain", "bplain", "bcbt-popular", "bcbt-random")


def _add_testbed_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, default="steam")
    parser.add_argument("--ranker", choices=RANKER_NAMES, default="itempop")
    parser.add_argument("--scale", choices=tuple(SCALES), default="ci")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PoisonRec (ICDE 2020) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser(
        "datasets", help="print Table II-style dataset statistics")
    datasets.add_argument("--scale", choices=tuple(SCALES), default="ci")
    datasets.add_argument("--seed", type=int, default=0)

    evaluate = subparsers.add_parser(
        "evaluate", help="held-out ranking quality of one ranker")
    _add_testbed_arguments(evaluate)

    attack = subparsers.add_parser(
        "attack", help="run one attack method against one testbed")
    _add_testbed_arguments(attack)
    attack.add_argument("--method", choices=METHOD_CHOICES,
                        default="poisonrec")
    attack.add_argument("--steps", type=int, default=None,
                        help="PoisonRec training steps (default: per scale)")
    attack.add_argument("--action-space", choices=ACTION_SPACE_CHOICES,
                        default="bcbt-popular")
    attack.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                        help="inject RATE transient faults per query "
                             "(FaultyEnvironment chaos mode; poisonrec only)")
    attack.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="crash-safe campaign checkpoint path "
                             "(poisonrec only)")
    attack.add_argument("--checkpoint-every", type=int, default=10,
                        metavar="K", help="checkpoint cadence in steps "
                                          "(default: 10)")
    attack.add_argument("--resume", action="store_true",
                        help="resume from --checkpoint if it exists")
    attack.add_argument("--max-retries", type=int, default=3,
                        help="retries per failed environment query "
                             "(default: 3)")
    attack.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fan reward queries out over N forked system "
                             "replicas; bit-identical to serial "
                             "(poisonrec only, default: 1)")
    attack.add_argument("--obs-log", default=None, metavar="PATH",
                        help="crash-safe JSONL run telemetry log "
                             "(render with repro trace / repro metrics; "
                             "poisonrec only)")

    compare = subparsers.add_parser(
        "compare", help="run every attack method against one testbed")
    _add_testbed_arguments(compare)
    compare.add_argument("--steps", type=int, default=None)

    submit = subparsers.add_parser(
        "submit", help="queue one campaign in a fleet directory")
    submit.add_argument("--dir", required=True, metavar="FLEET",
                        help="fleet directory (journal + checkpoints)")
    submit.add_argument("--name", required=True,
                        help="unique campaign name")
    _add_testbed_arguments(submit)
    submit.add_argument("--action-space", choices=ACTION_SPACE_CHOICES,
                        default="bcbt-popular")
    submit.add_argument("--steps", type=int, default=None,
                        help="training steps (default: per scale)")
    submit.add_argument("--priority", type=float, default=1.0,
                        help="fair-share weight (default: 1.0)")
    submit.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                        help="retryable fault injection rate for this "
                             "campaign's environment")

    serve = subparsers.add_parser(
        "serve", help="run a supervised fleet of campaigns over one "
                      "shared worker pool")
    serve.add_argument("--dir", required=True, metavar="FLEET",
                       help="fleet directory (journal + checkpoints)")
    serve.add_argument("--resume", action="store_true",
                       help="replay the fleet journal first (continue "
                            "submitted/interrupted campaigns)")
    serve.add_argument("--grid", action="store_true",
                       help="submit the ranker x action-space grid "
                            "(Table-2/3 client)")
    serve.add_argument("--rankers", nargs="+", choices=RANKER_NAMES,
                       default=list(DEFAULT_RANKERS), metavar="RANKER",
                       help="grid rankers (with --grid)")
    serve.add_argument("--action-spaces", nargs="+",
                       choices=ACTION_SPACE_CHOICES,
                       default=list(DEFAULT_ACTION_SPACES), metavar="SPACE",
                       help="grid action spaces (with --grid)")
    serve.add_argument("--dataset", choices=DATASET_NAMES, default="steam")
    serve.add_argument("--scale", choices=tuple(SCALES), default="ci")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--steps", type=int, default=None,
                       help="per-campaign steps for --grid "
                            "(default: per scale)")
    serve.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                       help="per-campaign environment fault rate for "
                            "--grid campaigns")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker fleet size (1 = in-process serial)")
    serve.add_argument("--slice-steps", type=int, default=2, metavar="K",
                       help="steps per campaign scheduling turn "
                            "(default: 2)")
    serve.add_argument("--stall-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-query worker heartbeat deadline")
    serve.add_argument("--worker-kills", type=float, default=0.0,
                       metavar="RATE",
                       help="seeded worker-kill injection rate "
                            "(fleet chaos)")
    serve.add_argument("--worker-stalls", type=float, default=0.0,
                       metavar="RATE",
                       help="seeded worker-stall injection rate "
                            "(fleet chaos)")
    serve.add_argument("--obs-log", default=None, metavar="PATH",
                       help="crash-safe JSONL run telemetry log "
                            "(render with repro trace / repro metrics)")

    trace = subparsers.add_parser(
        "trace", help="render the span rollup of an obs run log")
    trace.add_argument("log", help="obs run log (--obs-log output)")
    trace.add_argument("--export", default=None, metavar="PATH",
                       help="also write a Chrome trace (chrome://tracing "
                            "/ Perfetto JSON) to PATH")

    metrics = subparsers.add_parser(
        "metrics", help="render the metrics dashboard of an obs run log")
    metrics.add_argument("log", help="obs run log (--obs-log output)")
    metrics.add_argument("--events", type=int, default=0, metavar="N",
                         help="also print the last N narrator events")

    check = subparsers.add_parser(
        "check", help="run the static analyzers (graphlint + shapecheck "
                      "+ effectcheck + faultcheck)")
    check.add_argument("paths", nargs="*",
                       default=["src", "tests", "benchmarks"],
                       help="paths for graphlint "
                            "(default: src tests benchmarks)")
    check.add_argument("-v", "--verbose", action="store_true",
                       help="list every passing shapecheck check")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run the analyzers in N parallel processes "
                            "(they are independent; findings still "
                            "aggregate into one exit code)")
    return parser


def cmd_datasets(args: argparse.Namespace) -> int:
    """``datasets``: print Table II-style statistics."""
    scale = SCALES[args.scale]
    rows = []
    for name in DATASET_NAMES:
        stats = load_dataset(name, scale=scale.dataset_scale,
                             seed=args.seed).statistics()
        rows.append([name, stats["users"], stats["items"], stats["samples"]])
    print(format_table(["dataset", "users", "items", "samples"], rows))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``evaluate``: held-out HR@k/NDCG@k of one ranker."""
    scale = SCALES[args.scale]
    dataset, system, _ = build_environment(args.dataset, args.ranker, scale,
                                           seed=args.seed)
    quality = evaluate_ranking(system.ranker, dataset, seed=args.seed)
    random_hr = random_baseline_quality(dataset)
    print(f"{args.ranker} on {args.dataset} ({args.scale}): {quality}")
    print(f"random baseline: HR@{quality.k}={random_hr:.3f}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """``attack``: run one attack method on one testbed."""
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]
    _, system, env = build_environment(args.dataset, args.ranker, scale,
                                       seed=args.seed)
    clean = env.clean_recnum()
    print(f"testbed: {args.dataset} / {args.ranker} ({args.scale}), "
          f"clean RecNum = {clean}")
    if args.method == "poisonrec":
        attack_env = env
        chaos = None
        if args.chaos > 0.0:
            chaos = FaultyEnvironment(
                env, FaultPlan.mixed(args.chaos, seed=args.seed))
            attack_env = chaos
            print(f"chaos mode: {args.chaos:.0%} injected fault rate "
                  f"(seed {args.seed})")
        obs = RunTelemetry(args.obs_log) if args.obs_log else None
        pool = None
        if args.workers > 1:
            pool = QueryPool(attack_env, workers=args.workers)
            mode = "parallel" if pool.parallel else "serial fallback"
            print(f"query pool: {args.workers} workers ({mode})")
            if obs is not None:
                # Parent-side only: workers fork before these attach.
                pool.tracer = obs.tracer
                pool.metrics = obs.metrics
        agent = PoisonRec(attack_env, scale.config(seed=args.seed),
                          action_space=args.action_space, query_pool=pool,
                          obs=obs)
        resilience = None
        if args.chaos > 0.0 or args.checkpoint:
            resilience = ResilienceConfig(
                retry=RetryPolicy(max_attempts=args.max_retries + 1),
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                jitter_seed=args.seed)
        resume_from = None
        if args.resume and as_npz_path(args.checkpoint).exists():
            resume_from = args.checkpoint
            print(f"resuming campaign from {as_npz_path(args.checkpoint)}")
        steps = args.steps if args.steps is not None else scale.rl_steps
        try:
            agent.train(steps, callback=lambda s: print(
                f"  step {s.step:3d}: mean={s.mean_reward:8.1f} "
                f"max={s.max_reward:6.0f}" + (
                    f" retries={s.retries} quarantined={s.quarantined}"
                    if resilience is not None else "")),
                resilience=resilience, resume_from=resume_from)
        finally:
            if pool is not None:
                pool.close()
            if obs is not None:
                obs.close()
        print(f"poisonrec best RecNum: {agent.result.best_reward:.0f}")
        if pool is not None and pool.crashes:
            print(f"query pool: healed {pool.crashes} worker crash(es), "
                  f"{pool.serial_fallbacks} serial fallback(s)")
        if resilience is not None:
            history = agent.result.history
            print(f"resilience: retries="
                  f"{sum(s.retries for s in history)} quarantined="
                  f"{sum(s.quarantined for s in history)} rollbacks="
                  f"{history[-1].rollbacks if history else 0}")
        if chaos is not None:
            if args.workers > 1:
                # Fault schedules are pure functions of query content,
                # so injection happens inside the forked replicas; the
                # parent wrapper only sees serial-fallback traffic.
                print("chaos: content-keyed fault schedule active in "
                      f"{args.workers} worker replicas")
            else:
                print(f"chaos: injected={chaos.injected} "
                      f"(served queries: {chaos.query_count})")
        if args.checkpoint:
            print(f"campaign checkpoint: {as_npz_path(args.checkpoint)}")
        if args.obs_log:
            print(f"obs run log: {args.obs_log} (render with "
                  f"repro trace / repro metrics)")
    else:
        recnum = run_baseline(args.method, env, system, scale,
                              seed=args.seed)
        print(f"{args.method} RecNum: {recnum}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``compare``: run every attack method on one testbed."""
    scale = SCALES[args.scale]
    _, system, env = build_environment(args.dataset, args.ranker, scale,
                                       seed=args.seed)
    print(f"testbed: {args.dataset} / {args.ranker} ({args.scale}), "
          f"clean RecNum = {env.clean_recnum()}")
    rows = []
    for method in BASELINE_CLASSES:
        rows.append([method, run_baseline(method, env, system, scale,
                                          seed=args.seed)])
    agent = PoisonRec(env, scale.config(seed=args.seed))
    steps = args.steps if args.steps is not None else scale.rl_steps
    agent.train(steps)
    rows.append(["poisonrec", int(agent.result.best_reward)])
    rows.sort(key=lambda row: -row[1])
    print(format_table(["method", "RecNum"], rows))
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """``submit``: append one campaign to a fleet journal."""
    try:
        spec = CampaignSpec(
            name=args.name, dataset=args.dataset, ranker=args.ranker,
            action_space=args.action_space, scale=args.scale,
            seed=args.seed, steps=args.steps, priority=args.priority,
            chaos_rate=args.chaos)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    journal_path = pathlib.Path(args.dir) / "journal.jsonl"
    if journal_path.exists():
        if spec.name in replay(journal_path).campaigns:
            print(f"error: campaign {spec.name!r} already exists in "
                  f"{args.dir}", file=sys.stderr)
            return 2
    with SchedulerJournal(journal_path) as journal:
        journal.append({"event": "submit", "name": spec.name,
                        "spec": spec.to_json()})
    print(f"submitted campaign {spec.name!r} "
          f"({spec.dataset}/{spec.ranker}/{spec.action_space}, "
          f"scale {spec.scale}) to {args.dir}")
    print(f"run the fleet with: repro serve --dir {args.dir} --resume")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: drive a supervised campaign fleet to completion."""
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    worker_chaos = None
    if args.worker_kills > 0.0 or args.worker_stalls > 0.0:
        worker_chaos = WorkerFaultPlan(kill_rate=args.worker_kills,
                                       stall_rate=args.worker_stalls,
                                       seed=args.seed)
    obs = RunTelemetry(args.obs_log) if args.obs_log else None
    scheduler = CampaignScheduler(
        args.dir, workers=args.workers, slice_steps=args.slice_steps,
        stall_timeout=args.stall_timeout, worker_chaos=worker_chaos,
        telemetry=FleetTelemetry(stream=sys.stdout, obs=obs), obs=obs)
    if args.resume:
        scheduler.resume()
    if args.grid:
        for spec in grid_specs(rankers=args.rankers,
                               action_spaces=args.action_spaces,
                               dataset=args.dataset, scale=args.scale,
                               steps=args.steps, seed=args.seed,
                               chaos_rate=args.chaos):
            if spec.name not in scheduler.records:
                scheduler.submit(spec)
    if not scheduler.records:
        print("error: nothing to serve (use --grid, --resume, or "
              "repro submit first)", file=sys.stderr)
        return 2
    print(f"fleet: {len(scheduler.records)} campaign(s), "
          f"{args.workers} worker(s), slice={args.slice_steps} step(s)")
    try:
        result = scheduler.run(handle_signals=True)
    finally:
        if obs is not None:
            obs.close()
    if args.obs_log:
        print(f"obs run log: {args.obs_log} (render with "
              f"repro trace / repro metrics)")
    print(scheduler.telemetry.render_table(result.records))
    totals = scheduler.telemetry.phase_totals()
    if totals:
        print("query phases (parent-side): " + "  ".join(
            f"{phase}={seconds:.2f}s"
            for phase, seconds in sorted(totals.items())))
    if result.pool_crashes or result.serial_fallbacks:
        print(f"fleet healed {result.pool_crashes} worker crash(es), "
              f"{result.serial_fallbacks} serial fallback(s); final tier: "
              f"{result.tier}")
    if result.drained:
        print("fleet drained cleanly; resume with: "
              f"repro serve --dir {args.dir} --resume")
        return 0
    if result.failed:
        print(f"failed campaign(s): {', '.join(sorted(result.failed))}",
              file=sys.stderr)
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: flamegraph-style span rollup of an obs run log."""
    try:
        replay = load_run(args.log)
    except (OSError, CorruptCheckpointError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_trace(replay))
    if args.export:
        write_chrome_trace(args.export, replay.spans, replay.events)
        print(f"chrome trace written to {args.export} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """``metrics``: counters/gauges/histograms dashboard of a run log."""
    try:
        replay = load_run(args.log)
    except (OSError, CorruptCheckpointError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_metrics(replay))
    if args.events:
        print()
        print(render_events(replay, limit=args.events))
    return 0


def _run_analyzer(spec: Tuple[str, str, List[str]]
                  ) -> Tuple[str, int, str, str]:
    """Run one analyzer CLI with captured output.

    Module-level and picklable so ``check --jobs N`` can dispatch it to
    worker processes.  Returns ``(name, exit_code, stdout, stderr)``;
    analyzer crashes map to the shared internal-error code 2 with the
    traceback on stderr, so one broken tool cannot mask the others.
    """
    import importlib
    import io
    import traceback
    from contextlib import redirect_stderr, redirect_stdout

    name, module_name, argv = spec
    out, err = io.StringIO(), io.StringIO()
    try:
        module = importlib.import_module(module_name)
        with redirect_stdout(out), redirect_stderr(err):
            code = module.main(list(argv))
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 2
    except Exception as error:
        if isinstance(error, HOST_ERRORS):
            raise  # a sick host is not an analyzer finding
        err.write(traceback.format_exc())
        code = 2
    return name, code, out.getvalue(), err.getvalue()


def cmd_check(args: argparse.Namespace) -> int:
    """``check``: graphlint, shapecheck, effectcheck, then faultcheck.

    With ``--jobs N`` the four analyzers run in parallel processes;
    their reports are still printed in the fixed order above, and the
    aggregate exit code is the worst individual one (0 clean /
    1 findings / 2 internal error).
    """
    specs: List[Tuple[str, str, List[str]]] = [
        ("graphlint", "repro.devtools.lint", list(args.paths)),
        ("shapecheck", "repro.devtools.shapecheck.cli",
         ["-v"] if args.verbose else []),
        ("effectcheck", "repro.devtools.effectcheck.cli", []),
        ("faultcheck", "repro.devtools.faultcheck.cli", []),
    ]
    if args.jobs > 1:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(args.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_analyzer, specs))
    else:
        results = [_run_analyzer(spec) for spec in specs]
    codes = []
    for name, code, out, err in results:
        sys.stdout.write(out)
        sys.stderr.write(err)
        codes.append(code)
    return max(codes)


COMMANDS = {
    "datasets": cmd_datasets,
    "evaluate": cmd_evaluate,
    "attack": cmd_attack,
    "compare": cmd_compare,
    "submit": cmd_submit,
    "serve": cmd_serve,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "check": cmd_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
