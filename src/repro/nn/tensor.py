"""A minimal reverse-mode automatic differentiation engine on numpy arrays.

This module is the neural substrate of the reproduction: every neural
recommender (PMF, BPR, NeuMF, AutoRec, GRU4Rec, NGCF) and the PoisonRec
policy network (LSTM + DNN) is built on :class:`Tensor`.

The design mirrors the core of larger frameworks at a small scale:

* a :class:`Tensor` wraps an ``np.ndarray`` plus an optional gradient and a
  backward closure,
* operators record their inputs and a function that propagates the output
  gradient to each input,
* :meth:`Tensor.backward` runs a topological sort over the recorded graph
  and accumulates gradients.

Broadcasting is fully supported: gradients flowing into a broadcast input
are summed back to the input's original shape by :func:`unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..effects import sanctioned_channel

ArrayLike = Union[np.ndarray, float, int, Sequence]

_FLOAT = np.float64


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    When an input of shape ``shape`` was broadcast to produce an output, the
    gradient w.r.t. that input is the output gradient summed over every axis
    that was expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array data; copied to ``float64`` unless already a float array.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(_FLOAT)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single scalar value of a 1-element tensor."""
        return float(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=_FLOAT)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    @sanctioned_channel
    def assign_(self, data: ArrayLike, copy: bool = True) -> "Tensor":
        """Replace the underlying array in place (sanctioned mutation).

        graphlint's REP003 forbids ad-hoc ``t.data = ...`` writes; state
        loading (snapshot restore, policy deserialization, gradcheck
        perturbations) funnels through here so shape drift is caught at
        the boundary instead of corrupting a later matmul.
        """
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(_FLOAT)
        elif copy:
            arr = arr.copy()
        if arr.shape != self.data.shape:
            raise ValueError(
                f"assign_ shape mismatch: tensor has shape "
                f"{self.data.shape}, got {arr.shape}")
        self.data = arr
        return self

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}")
            grad = np.ones_like(self.data, dtype=_FLOAT)
        grad = np.asarray(grad, dtype=_FLOAT)

        # Topological order over the graph reachable from self.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        # Each op's backward closure accumulates into its parents' ``.grad``
        # directly.  Processing nodes in reverse topological order guarantees
        # a node's ``.grad`` is complete before its own closure runs.
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            a._accumulate(unbroadcast(g, a.shape))
            b._accumulate(unbroadcast(g, b.shape))

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._accumulate(-g)

        return Tensor._make(-a.data, (a,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            a._accumulate(unbroadcast(g * b.data, a.shape))
            b._accumulate(unbroadcast(g * a.data, b.shape))

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            a._accumulate(unbroadcast(g / b.data, a.shape))
            b._accumulate(unbroadcast(-g * a.data / (b.data ** 2), b.shape))

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        a = self
        p = float(exponent)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * p * np.power(a.data, p - 1.0))

        return Tensor._make(np.power(a.data, p), (a,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    a._accumulate(np.outer(g, b.data)
                                  if g.ndim == 1 and a.data.ndim == 2
                                  else unbroadcast(
                                      np.expand_dims(g, -1) * b.data, a.shape))
                else:
                    ga = g @ np.swapaxes(b.data, -1, -2)
                    a._accumulate(unbroadcast(ga, a.shape))
            if b.requires_grad:
                if a.data.ndim == 1:
                    gb = np.outer(a.data, g) if g.ndim == 1 else None
                    if gb is None:
                        gb = np.expand_dims(a.data, -1) * np.expand_dims(g, 0)
                    b._accumulate(unbroadcast(gb, b.shape))
                else:
                    gb = np.swapaxes(a.data, -1, -2) @ g
                    b._accumulate(unbroadcast(gb, b.shape))

        return Tensor._make(a.data @ b.data, (a, b), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Differentiable reshape to ``shape``."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = a.shape

        def backward(g: np.ndarray) -> None:
            a._accumulate(g.reshape(original))

        return Tensor._make(a.data.reshape(shape), (a,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Differentiable axis permutation (reverses all axes by default)."""
        a = self
        axes_t = tuple(axes) if axes else tuple(range(a.ndim))[::-1]
        inverse = tuple(np.argsort(axes_t))

        def backward(g: np.ndarray) -> None:
            a._accumulate(g.transpose(inverse))

        return Tensor._make(a.data.transpose(axes_t), (a,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            full = np.zeros_like(a.data, dtype=_FLOAT)
            np.add.at(full, idx, g)
            a._accumulate(full)

        return Tensor._make(a.data[idx], (a,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable sum over ``axis`` (all elements by default)."""
        a = self

        def backward(g: np.ndarray) -> None:
            if axis is None:
                a._accumulate(np.broadcast_to(g, a.shape).astype(_FLOAT))
                return
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            a._accumulate(np.broadcast_to(g_expanded, a.shape).astype(_FLOAT))

        return Tensor._make(a.data.sum(axis=axis, keepdims=keepdims), (a,),
                            backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean over ``axis``."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[ax] for ax in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable max; ties split the gradient evenly."""
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            expanded = out_data if keepdims or axis is None else (
                np.expand_dims(out_data, axis))
            mask = (a.data == expanded).astype(_FLOAT)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g_expanded = g if keepdims or axis is None else (
                np.expand_dims(g, axis))
            a._accumulate(mask * g_expanded)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Comparison (non-differentiable; returns numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    parts = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    sizes = [p.data.shape[axis] for p in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            part._accumulate(g[tuple(slicer)])

    data = np.concatenate([p.data for p in parts], axis=axis)
    return Tensor._make(data, parts, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    parts = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]

    def backward(g: np.ndarray) -> None:
        for i, part in enumerate(parts):
            part._accumulate(np.take(g, i, axis=axis))

    data = np.stack([p.data for p in parts], axis=axis)
    return Tensor._make(data, parts, backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce a value to a :class:`Tensor` (no copy if already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
