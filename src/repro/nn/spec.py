"""Shape contracts: declare the symbolic signature of a forward pass.

A *shape spec* is a one-line string attached to a callable, e.g.::

    @shape_spec("(B, in_dim) -> (B, out_dim)")
    def __call__(self, x): ...

The left side lists one term per positional argument (``self`` excluded),
the right side describes the return value.  Terms are

* ``(B, T)``            — a tensor shape; names bind dims, ints are exact
* ``((B, H), (B, H))``  — a tuple of shapes (e.g. an LSTM ``(h, c)`` state)
* ``[(B, D)]``          — a list/tuple of tensors, each matching the shape
* ``_``                 — a wildcard argument (not shape-checked)

Dim names unify across the whole spec: the first occurrence binds, later
occurrences must match.  A dotted name (``action_space.max_decisions``) or
a plain name that resolves to an ``int`` attribute on the bound instance
(``in_dim``, ``hidden_dim``) is treated as that constant.

This module is deliberately dependency-free (no numpy import): the
decorator only *attaches* the string.  Parsing and verification live in
:mod:`repro.devtools.shapecheck.contracts`, so production forward passes
pay nothing.
"""

from __future__ import annotations

from typing import Callable, TypeVar

SPEC_ATTRIBUTE = "__shape_spec__"

_F = TypeVar("_F", bound=Callable)


def shape_spec(spec: str) -> Callable[[_F], _F]:
    """Attach a shape contract string to a function (zero runtime cost)."""
    if "->" not in spec:
        raise ValueError(f"shape spec needs an '->': {spec!r}")

    def decorate(fn: _F) -> _F:
        setattr(fn, SPEC_ATTRIBUTE, spec)
        return fn

    return decorate


def get_shape_spec(fn: Callable) -> str | None:
    """The spec attached to ``fn`` (or ``None``); follows ``__func__``."""
    spec = getattr(fn, SPEC_ATTRIBUTE, None)
    if spec is None and hasattr(fn, "__func__"):
        spec = getattr(fn.__func__, SPEC_ATTRIBUTE, None)
    return spec
