"""Gradient-descent optimizers for the numpy neural substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clip norm.
        """
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional L2 weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        """One SGD step: ``p -= lr * (grad + wd * p)``."""
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer — the paper uses Adam with lr=2e-3 for PoisonRec."""

    def __init__(self, params: Iterable[Tensor], lr: float = 2e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        """One bias-corrected Adam step."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            m = self._m[i]
            v = self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the Adam state for campaign checkpoints.

        Captures the step counter, the (mutable) learning rate and both
        moment buffers; lazily uninitialized entries stay ``None``.
        """
        return {
            "t": self._t,
            "lr": self.lr,
            "m": [None if m is None else m.copy() for m in self._m],
            "v": [None if v is None else v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The managed parameter list must match in length; moment shapes
        are validated against the current parameters.
        """
        moments_m, moments_v = state["m"], state["v"]
        if len(moments_m) != len(self.params) \
                or len(moments_v) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(moments_m)} moment buffers, "
                f"optimizer manages {len(self.params)} parameters")
        for i, param in enumerate(self.params):
            for name, moment in (("m", moments_m[i]), ("v", moments_v[i])):
                if moment is not None and moment.shape != param.data.shape:
                    raise ValueError(
                        f"Adam {name}[{i}] shape {moment.shape} disagrees "
                        f"with parameter shape {param.data.shape}")
        self._t = int(state["t"])
        self.lr = float(state["lr"])
        self._m = [None if m is None else np.array(m, copy=True)
                   for m in moments_m]
        self._v = [None if v is None else np.array(v, copy=True)
                   for v in moments_v]
