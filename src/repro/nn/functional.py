"""Differentiable elementwise and reduction operations on :class:`Tensor`.

These free functions complement the operator overloads on
:class:`~repro.nn.tensor.Tensor` with the non-linearities and losses the
recommenders and the PoisonRec policy network need.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, unbroadcast

_EPS = 1e-12


def exp(x: Tensor) -> Tensor:
    """Elementwise ``e**x``."""
    out_data = np.exp(x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural log (inputs clamped away from zero)."""
    def backward(g: np.ndarray) -> None:
        x._accumulate(g / np.maximum(x.data, _EPS))

    return Tensor._make(np.log(np.maximum(x.data, _EPS)), (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    out_data = np.sqrt(x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * 0.5 / np.maximum(out_data, _EPS))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit: ``max(x, 0)``."""
    mask = (x.data > 0).astype(x.data.dtype)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    out_data = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Shift-stabilized softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        # d softmax: s * (g - sum(g * s))
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Shift-stabilized log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Differentiable clamp: the gradient is zero outside ``[low, high]``."""
    mask = ((x.data >= low) & (x.data <= high)).astype(x.data.dtype)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(np.clip(x.data, low, high), (x,), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; the gradient routes to the smaller input."""
    mask_a = (a.data <= b.data).astype(a.data.dtype)

    def backward(g: np.ndarray) -> None:
        a._accumulate(unbroadcast(g * mask_a, a.shape))
        b._accumulate(unbroadcast(g * (1.0 - mask_a), b.shape))

    return Tensor._make(np.minimum(a.data, b.data), (a, b), backward)


def leaky_relu(x: Tensor, slope: float = 0.2) -> Tensor:
    """Leaky ReLU (NGCF's activation): ``x`` if positive else ``slope * x``."""
    mask = (x.data > 0).astype(x.data.dtype)
    factor = mask + slope * (1.0 - mask)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * factor)

    return Tensor._make(x.data * factor, (x,), backward)


def spmm(sparse_matrix, x: Tensor) -> Tensor:
    """Sparse-dense product ``A @ x`` where ``A`` is a scipy sparse matrix.

    ``A`` is treated as a constant (no gradient); the gradient w.r.t. ``x``
    is ``A.T @ g``.  NGCF's embedding propagation uses this so the
    normalized bipartite adjacency never needs to be densified.
    """
    out_data = sparse_matrix @ x.data
    transposed = sparse_matrix.T

    def backward(g: np.ndarray) -> None:
        x._accumulate(transposed @ g)

    return Tensor._make(np.asarray(out_data), (x,), backward)


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: np.ndarray) -> Tensor:
    """Numerically stable BCE over raw logits.

    ``loss = max(z, 0) - z * y + log(1 + exp(-|z|))``, averaged over
    elements.  Used by NeuMF and AutoRec.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    z = logits.data
    loss_data = np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    prob = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
    scale = 1.0 / max(z.size, 1)

    def backward(g: np.ndarray) -> None:
        logits._accumulate(g * (prob - targets) * scale)

    return Tensor._make(np.array(loss_data.mean()), (logits,), backward)


def logsigmoid(x: Tensor) -> Tensor:
    """Numerically stable ``log(sigmoid(x))``; used by the BPR loss."""
    z = x.data
    out_data = np.where(z >= 0, -np.log1p(np.exp(-z)), z - np.log1p(np.exp(z)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * (1.0 - sig))

    return Tensor._make(out_data, (x,), backward)


def mse_loss(pred: Tensor, target: np.ndarray,
             weight: np.ndarray | None = None) -> Tensor:
    """Mean squared error with an optional per-element weight mask."""
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred - Tensor(target)
    sq = diff * diff
    if weight is not None:
        sq = sq * Tensor(np.asarray(weight, dtype=pred.data.dtype))
        denom = max(float(np.sum(weight)), 1.0)
        return sq.sum() * (1.0 / denom)
    return sq.mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(x.data * mask, (x,), backward)
