"""Autograd sanitizer: anomaly detection for the closure-graph engine.

Two complementary tools, both built for :class:`~repro.nn.tensor.Tensor`'s
closure-based graph (the analogue of ``torch.autograd.set_detect_anomaly``):

* :class:`detect_anomaly` — a context manager that instruments every op
  created inside it.  Forward outputs are checked for NaN/Inf as each
  graph node is built; every gradient accumulated during ``backward()``
  is checked for NaN/Inf and for silent shape broadcasts.  The *first*
  corrupted node raises :class:`AnomalyError` naming the offending op and
  the shapes of its parents, instead of letting the corruption propagate
  into PPO's reward normalization or a recommender's update step.
* :func:`validate_graph` — a post-``backward()`` structural validator:
  confirms the recorded graph admits a topological order (no cycles) and
  that no backward closure orphaned one of its differentiable parents
  (a closure that forgets to ``_accumulate`` leaves ``grad is None``).

Anomaly mode costs one ``np.isfinite`` sweep per op and is meant for
tests and debugging runs, not the benchmark hot path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class AnomalyError(RuntimeError):
    """A NaN/Inf value or shape corruption detected by anomaly mode."""


class GraphError(AnomalyError):
    """A structural defect (cycle, orphaned parent) in a recorded graph."""


def op_name(backward) -> str:
    """Human-readable op name recovered from a backward closure.

    Every op in the engine defines its gradient rule as a local function
    named ``backward``, so the closure's qualname encodes the op that
    created it (``exp.<locals>.backward`` -> ``exp``).
    """
    qual = getattr(backward, "__qualname__", "") or ""
    if ".<locals>." in qual:
        return qual.rsplit(".<locals>.", 1)[0]
    return qual or getattr(backward, "__name__", "<unknown op>")


def _shapes(parents: Tuple[Tensor, ...]) -> str:
    return ", ".join(str(p.shape) for p in parents) or "(none)"


class _AnomalyState:
    """Shared bookkeeping for (possibly nested) anomaly contexts."""

    def __init__(self) -> None:
        self.depth = 0
        self.current_op: Optional[str] = None
        self.current_parents: Tuple[Tensor, ...] = ()
        self.original_make = None
        self.original_accumulate = None


_STATE = _AnomalyState()


def _require_finite(arr: np.ndarray, what: str) -> None:
    if not np.all(np.isfinite(arr)):
        bad = arr[~np.isfinite(np.asarray(arr))]
        kind = "NaN" if np.any(np.isnan(bad)) else "Inf"
        raise AnomalyError(f"{kind} detected in {what}")


def _checked_make(data, parents, backward) -> Tensor:
    parents = tuple(parents)
    op = op_name(backward)
    _require_finite(np.asarray(data),
                    f"forward output of '{op}' "
                    f"(parent shapes: {_shapes(parents)})")

    def checked_backward(g: np.ndarray) -> None:
        _require_finite(
            np.asarray(g),
            f"upstream gradient entering backward of '{op}' "
            f"(parent shapes: {_shapes(parents)})")
        prev = (_STATE.current_op, _STATE.current_parents)
        _STATE.current_op, _STATE.current_parents = op, parents
        try:
            backward(g)
        finally:
            _STATE.current_op, _STATE.current_parents = prev

    checked_backward.__qualname__ = getattr(backward, "__qualname__",
                                            checked_backward.__qualname__)
    return _STATE.original_make(data, parents, checked_backward)


def _checked_accumulate(self: Tensor, grad: np.ndarray) -> None:
    if self.requires_grad:
        where = (f"backward of '{_STATE.current_op}' (parent shapes: "
                 f"{_shapes(_STATE.current_parents)})"
                 if _STATE.current_op is not None
                 else "the seed gradient passed to backward()")
        arr = np.asarray(grad)
        if arr.shape != self.data.shape:
            raise AnomalyError(
                f"shape mismatch in {where}: accumulating gradient of "
                f"shape {arr.shape} into a tensor of shape "
                f"{self.data.shape} — a silent broadcast would corrupt "
                "the update")
        _require_finite(arr, f"gradient produced by {where} for a parent "
                             f"of shape {self.data.shape}")
    _STATE.original_accumulate(self, grad)


class detect_anomaly:
    """Context manager enabling the autograd sanitizer.

    >>> from repro.nn import Tensor, detect_anomaly
    >>> with detect_anomaly():
    ...     loss = model(batch)
    ...     loss.backward()          # raises AnomalyError at the first
    ...                              # corrupted op instead of training on it

    Only ops *created inside* the context are instrumented; entering is
    reentrant (nesting is a no-op) but not thread-safe.
    """

    def __enter__(self) -> "detect_anomaly":
        if _STATE.depth == 0:
            _STATE.original_make = Tensor._make
            _STATE.original_accumulate = Tensor._accumulate
            Tensor._make = staticmethod(_checked_make)
            Tensor._accumulate = _checked_accumulate
        _STATE.depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _STATE.depth -= 1
        if _STATE.depth == 0:
            Tensor._make = staticmethod(_STATE.original_make)
            Tensor._accumulate = _STATE.original_accumulate
            _STATE.original_make = None
            _STATE.original_accumulate = None
            _STATE.current_op = None
            _STATE.current_parents = ()


def _iter_graph(root: Tensor) -> Iterator[Tensor]:
    """Yield every node reachable from ``root`` through ``_parents``."""
    seen = {id(root)}
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for parent in node._parents:
            if id(parent) not in seen:
                seen.add(id(parent))
                stack.append(parent)


def validate_graph(root: Tensor, check_grads: bool = True) -> Dict[str, int]:
    """Structurally validate the autograd graph reachable from ``root``.

    Checks, raising :class:`GraphError` on the first defect:

    * the graph admits a topological order (a cycle would make
      ``backward()``'s gradient accumulation order undefined);
    * with ``check_grads`` (call after ``root.backward()``): every
      differentiable parent of every recorded op actually received a
      gradient — an orphaned parent means a backward closure dropped one
      of its inputs — and no accumulated gradient disagrees with its
      tensor's shape.

    Returns summary statistics: node, edge, and trainable-leaf counts.
    """
    # Iterative DFS with gray/black coloring to detect back edges.
    GRAY, BLACK = 1, 2
    color: Dict[int, int] = {}
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    nodes: List[Tensor] = []
    edges = 0
    while stack:
        node, leaving = stack.pop()
        if leaving:
            color[id(node)] = BLACK
            continue
        state = color.get(id(node))
        if state == BLACK:
            continue
        if state == GRAY:
            continue
        color[id(node)] = GRAY
        nodes.append(node)
        stack.append((node, True))
        for parent in node._parents:
            edges += 1
            parent_state = color.get(id(parent))
            if parent_state == GRAY:
                raise GraphError(
                    f"cycle detected through op "
                    f"'{op_name(node._backward)}' (shape {node.shape}) — "
                    "the recorded graph has no topological order")
            if parent_state is None:
                stack.append((parent, False))

    leaves = sum(1 for n in nodes if n.requires_grad and not n._parents)
    if check_grads:
        for node in nodes:
            if node.grad is not None and node.grad.shape != node.data.shape:
                raise GraphError(
                    f"gradient shape {node.grad.shape} disagrees with "
                    f"tensor shape {node.data.shape} on node "
                    f"'{op_name(node._backward)}'")
            if node._backward is None:
                continue
            for i, parent in enumerate(node._parents):
                if parent.requires_grad and parent.grad is None:
                    raise GraphError(
                        f"orphaned parent: input {i} (shape "
                        f"{parent.shape}) of op "
                        f"'{op_name(node._backward)}' never received a "
                        "gradient — was backward() run, or did the "
                        "closure drop it?")
    return {"nodes": len(nodes), "edges": edges, "trainable_leaves": leaves}
