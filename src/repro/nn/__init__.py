"""Pure-numpy neural substrate: autograd tensors, layers, RNN cells, optimizers."""

from . import functional
from .anomaly import AnomalyError, GraphError, detect_anomaly, validate_graph
from .init import normal, xavier_uniform, zeros
from .layers import MLP, Dense, Embedding, Module
from .lstm import GRU, GRUCell, LSTM, LSTMCell
from .optim import SGD, Adam, Optimizer
from .spec import get_shape_spec, shape_spec
from .tensor import Tensor, as_tensor, concatenate, stack, unbroadcast

__all__ = [
    "Tensor", "as_tensor", "concatenate", "stack", "unbroadcast",
    "functional", "Module", "Dense", "Embedding", "MLP",
    "LSTM", "LSTMCell", "GRU", "GRUCell",
    "Optimizer", "SGD", "Adam",
    "xavier_uniform", "normal", "zeros",
    "AnomalyError", "GraphError", "detect_anomaly", "validate_graph",
    "shape_spec", "get_shape_spec",
]
