"""Composable neural-network layers built on the autograd :class:`Tensor`.

Provides the small set of modules the reproduction needs: parameter
registration (:class:`Module`), affine layers (:class:`Dense`), lookup
tables (:class:`Embedding`) and stacked ReLU networks (:class:`MLP` — the
paper's two-layer DNN head is an ``MLP`` with ReLU activations).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from . import functional as F
from . import init
from .spec import shape_spec
from .tensor import Tensor


class Module:
    """Base class with recursive parameter discovery.

    Subclasses assign :class:`Tensor` parameters (``requires_grad=True``)
    or other :class:`Module` instances as attributes; :meth:`parameters`
    walks both.
    """

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor in this module tree (deduplicated)."""
        seen: set[int] = set()
        for value in vars(self).values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                for param in value.parameters():
                    if id(param) not in seen:
                        seen.add(id(param))
                        yield param
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        for param in element.parameters():
                            if id(param) not in seen:
                                seen.add(id(param))
                                yield param
                    elif isinstance(element, Tensor) and element.requires_grad:
                        if id(element) not in seen:
                            seen.add(id(element))
                            yield element

    def zero_grad(self) -> None:
        """Clear gradients on every parameter in the tree."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(p.size for p in self.parameters())


class Dense(Module):
    """Affine layer ``y = x W + b`` with optional activation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator, activation: str = "linear",
                 bias: bool = True) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Tensor(init.xavier_uniform(rng, in_dim, out_dim),
                             requires_grad=True, name="dense.weight")
        self.bias = (Tensor(init.zeros((out_dim,)), requires_grad=True,
                            name="dense.bias") if bias else None)
        if activation not in ("linear", "relu", "sigmoid", "tanh"):
            raise ValueError(f"unknown activation: {activation!r}")
        self.activation = activation

    @shape_spec("(B, in_dim) -> (B, out_dim)")
    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        if self.activation == "relu":
            return F.relu(out)
        if self.activation == "sigmoid":
            return F.sigmoid(out)
        if self.activation == "tanh":
            return F.tanh(out)
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator, std: float = 0.05) -> None:
        self.weight = Tensor(init.normal(rng, (num_embeddings, dim), std=std),
                             requires_grad=True, name="embedding.weight")
        self.num_embeddings = num_embeddings
        self.dim = dim

    @shape_spec("(B,) -> (B, dim)")
    def __call__(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        return self.weight[ids]


class MLP(Module):
    """Stack of :class:`Dense` layers.

    ``dims = [in, h1, ..., out]``; every layer but the last uses
    ``hidden_activation``, the last uses ``out_activation``.
    """

    def __init__(self, dims: Sequence[int], rng: np.random.Generator,
                 hidden_activation: str = "relu",
                 out_activation: str = "linear") -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dim")
        self.in_dim = dims[0]
        self.out_dim = dims[-1]
        self.layers = [
            Dense(dims[i], dims[i + 1], rng,
                  activation=(hidden_activation if i < len(dims) - 2
                              else out_activation))
            for i in range(len(dims) - 1)
        ]

    @shape_spec("(B, in_dim) -> (B, out_dim)")
    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
