"""Weight initializers for the numpy neural substrate."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int,
                   fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def normal(rng: np.random.Generator, shape: tuple,
           std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialization, the paper's default for embeddings."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)
