"""Recurrent cells: LSTM (policy network encoder) and GRU (GRU4Rec core).

The paper's policy network embeds the variable-length attack trajectory
with an LSTM (Equation 5); GRU4Rec uses a GRU over each user's session.
Both cells operate on batches: inputs are ``(batch, dim)`` tensors and the
sequence loop lives in the caller (or :class:`LSTM`/:class:`GRU` helpers).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .layers import Module
from .spec import shape_spec
from .tensor import Tensor, concatenate


class LSTMCell(Module):
    """Standard LSTM cell with a single fused gate matrix.

    Gates are computed as ``[i, f, g, o] = [x, h] @ W + b`` with sigmoid on
    i/f/o and tanh on g.  The forget-gate bias is initialized to 1.0, the
    common trick for stable early training.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight = Tensor(
            init.xavier_uniform(rng, input_dim + hidden_dim, 4 * hidden_dim),
            requires_grad=True, name="lstm.weight")
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim:2 * hidden_dim] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True, name="lstm.bias")

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero ``(h, c)`` state for a batch."""
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        return h, c

    @shape_spec("(B, input_dim), ((B, hidden_dim), (B, hidden_dim)) -> "
                "((B, hidden_dim), (B, hidden_dim))")
    def __call__(self, x: Tensor, state: Tuple[Tensor, Tensor]
                 ) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        combined = concatenate([x, h_prev], axis=1)
        gates = combined @ self.weight + self.bias
        H = self.hidden_dim
        i = F.sigmoid(gates[:, 0:H])
        f = F.sigmoid(gates[:, H:2 * H])
        g = F.tanh(gates[:, 2 * H:3 * H])
        o = F.sigmoid(gates[:, 3 * H:4 * H])
        c = f * c_prev + i * g
        h = o * F.tanh(c)
        return h, c


class LSTM(Module):
    """Sequence wrapper running an :class:`LSTMCell` over time steps."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        self.cell = LSTMCell(input_dim, hidden_dim, rng)

    @shape_spec("[(B, cell.input_dim)], _ -> ([(B, cell.hidden_dim)], "
                "((B, cell.hidden_dim), (B, cell.hidden_dim)))")
    def __call__(self, inputs: Sequence[Tensor],
                 state: Optional[Tuple[Tensor, Tensor]] = None
                 ) -> Tuple[list, Tuple[Tensor, Tensor]]:
        """Run over ``inputs`` (a list of ``(batch, dim)`` tensors).

        Returns the list of hidden states per step and the final
        ``(h, c)`` state.
        """
        if not inputs:
            raise ValueError("LSTM requires at least one input step")
        if state is None:
            state = self.cell.initial_state(inputs[0].shape[0])
        outputs = []
        h, c = state
        for x in inputs:
            h, c = self.cell(x, (h, c))
            outputs.append(h)
        return outputs, (h, c)


class GRUCell(Module):
    """Standard GRU cell used by the GRU4Rec ranker."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_zr = Tensor(
            init.xavier_uniform(rng, input_dim + hidden_dim, 2 * hidden_dim),
            requires_grad=True, name="gru.weight_zr")
        self.bias_zr = Tensor(np.zeros(2 * hidden_dim), requires_grad=True,
                              name="gru.bias_zr")
        self.weight_h = Tensor(
            init.xavier_uniform(rng, input_dim + hidden_dim, hidden_dim),
            requires_grad=True, name="gru.weight_h")
        self.bias_h = Tensor(np.zeros(hidden_dim), requires_grad=True,
                             name="gru.bias_h")

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state for a batch."""
        return Tensor(np.zeros((batch, self.hidden_dim)))

    @shape_spec("(B, input_dim), (B, hidden_dim) -> (B, hidden_dim)")
    def __call__(self, x: Tensor, h_prev: Tensor) -> Tensor:
        H = self.hidden_dim
        combined = concatenate([x, h_prev], axis=1)
        zr = F.sigmoid(combined @ self.weight_zr + self.bias_zr)
        z = zr[:, 0:H]
        r = zr[:, H:2 * H]
        combined_r = concatenate([x, r * h_prev], axis=1)
        h_tilde = F.tanh(combined_r @ self.weight_h + self.bias_h)
        return (Tensor(np.ones_like(z.data)) - z) * h_prev + z * h_tilde


class GRU(Module):
    """Sequence wrapper running a :class:`GRUCell` over time steps."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        self.cell = GRUCell(input_dim, hidden_dim, rng)

    @shape_spec("[(B, cell.input_dim)], _ -> ([(B, cell.hidden_dim)], "
                "(B, cell.hidden_dim))")
    def __call__(self, inputs: Sequence[Tensor],
                 state: Optional[Tensor] = None) -> Tuple[list, Tensor]:
        """Run over ``inputs``; returns per-step hidden states and the last."""
        if not inputs:
            raise ValueError("GRU requires at least one input step")
        h = state if state is not None else (
            self.cell.initial_state(inputs[0].shape[0]))
        outputs = []
        for x in inputs:
            h = self.cell(x, h)
            outputs.append(h)
        return outputs, h
