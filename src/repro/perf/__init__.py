"""Performance subsystem: parallel query engine + attack-path profiling.

``repro.perf`` makes the black-box query loop fast without changing a
single observed reward:

* :class:`QueryPool` — fan per-step queries out over forked
  recommender-system replicas, with a documented bit-exact equivalence
  guarantee versus serial execution and transient-failure healing for
  crashed workers.
* :class:`QueryProfiler` — per-query wall-clock breakdown of the
  restore / merge / retrain / score phases inside
  :meth:`~repro.recsys.system.RecommenderSystem.attack`.  Workers ship
  their per-query phase deltas back with each
  :class:`QueryOutcome`, so the breakdown covers pooled queries too
  (see :func:`find_profiler` / :class:`PhaseDelta`).

See ``docs/performance.md`` for the measurement methodology,
``docs/observability.md`` for the tracing/metrics hooks, and
``benchmarks/bench_query_throughput.py`` for the throughput harness.
"""

from .pool import QueryOutcome, QueryPool, WorkerCrashError
from .profile import PhaseDelta, QueryProfiler, find_profiler

__all__ = [
    "QueryPool",
    "QueryOutcome",
    "WorkerCrashError",
    "QueryProfiler",
    "PhaseDelta",
    "find_profiler",
]
