"""Deterministic parallel query engine for black-box attack campaigns.

Algorithm 1's outer loop is bounded by environment queries: every one of
the ``M`` samples per training step pays a full reload → poison-retrain →
re-score round trip.  Those queries are *independent* — the recommender
system restores its complete clean state (parameters **and** RNG stream,
see :mod:`repro.recsys.snapshots`) before each injection — so a step's
queries can fan out across processes and return bit-identical rewards.

:class:`QueryPool` implements that fan-out:

* ``workers=1`` (the default) never spawns a process: queries run
  in-process, exactly as the plain serial loop.
* ``workers>1`` forks worker processes, each holding a copy-on-write
  replica of the :class:`~repro.recsys.system.RecommenderSystem`
  (inherited via ``fork``, so no pickling and no duplicate fit).
  :meth:`QueryPool.attack_many` dispatches the batch and returns
  outcomes **in submission order**.

Exact-equivalence guarantee
---------------------------
For a fault-free batch, ``attack_many(sets)`` returns the same rewards,
in the same order, as ``[system.attack(s) for s in sets]`` — bit
identical, not approximately.  This holds because ``attack`` is a pure
function of its trajectories (clean state + RNG are restored before
every injection) and replicas are bit-exact fork copies of the parent
system.  A campaign driven through the pool therefore produces the same
``StepStats`` history as the serial run on the same seed.

Failure model
-------------
A crashed worker is a *transient* event, not a lost step: the pool
reaps the dead process, forks a replacement, and re-issues the query
(counted in :attr:`QueryOutcome.retries`, like any other transient
retry).  A query that keeps killing workers falls back to in-process
execution so the underlying error surfaces exactly as it would
serially.  Typed :class:`~repro.runtime.errors.TransientEnvironmentError`
failures raised inside a worker honor the caller's
:class:`~repro.runtime.retry.RetryPolicy` — exhausted retries become a
quarantinable :class:`~repro.runtime.errors.RetriesExhaustedError`
outcome, mirroring ``repro.runtime``'s serial retry/quarantine path.
If worker processes cannot be (re)spawned at all, the pool degrades
permanently to serial mode rather than failing the campaign.

Three refinements keep pooled chaos campaigns bit-identical to serial:

* errors tagged ``replica_safe`` (injected by
  :class:`~repro.runtime.faults.FaultyEnvironment`) leave the worker
  alive — no recycle, no crash count — because the replica was never
  touched;
* retries of a failed query are *pinned* to the worker that failed it,
  so the replica's per-query occurrence counters advance exactly as
  the serial wrapper's would;
* when a retry policy is supplied, non-finite rewards are rejected as
  :class:`~repro.runtime.errors.CorruptRewardError` and retried — the
  same guard ``PoisonRec`` applies on its serial path.

``stall_timeout`` arms a heartbeat: a worker that holds one query
longer than the deadline is presumed hung, killed, and its query
re-issued.  ``chaos`` takes a
:class:`~repro.runtime.faults.WorkerFaultPlan` whose seeded kill/stall
directives ride along with dispatched queries — fleet-level fault
injection for soak tests, exercising exactly the healing paths above.

Observability
-------------
Every worker reply carries a *phase payload*: the per-phase profiler
deltas (when a :class:`~repro.perf.profile.QueryProfiler` is attached
to the replica's system) and the query's total wall-clock seconds,
measured inside the worker.  The parent merges the deltas into its own
profiler — so parent-side rollups finally cover pooled queries — and
attaches them to the :class:`QueryOutcome` (``phases`` /
``phase_calls`` / ``seconds`` / ``pooled``).  Hanging a
:class:`~repro.obs.trace.Tracer` on :attr:`QueryPool.tracer` wraps each
batch in a ``pool.batch`` span, and a
:class:`~repro.obs.metrics.MetricsRegistry` on :attr:`QueryPool.metrics`
counts queries, crashes, stalls and serial fallbacks; both are optional
parent-side attachments, never shipped to workers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..runtime.errors import (CorruptRewardError, RetriesExhaustedError,
                              TransientEnvironmentError)
from ..runtime.faults import WorkerFaultPlan
from ..runtime.retry import RetryPolicy, call_with_retry
from .profile import PhaseDelta, find_profiler

#: How long one scheduler wait blocks before re-checking worker liveness.
_WAIT_TIMEOUT = 5.0


class WorkerCrashError(TransientEnvironmentError):
    """A pool worker died mid-query; the query is safe to re-issue."""


@dataclass
class QueryOutcome:
    """Result of one black-box query (pooled or serial).

    ``reward`` is the observed RecNum, or ``None`` when the query was
    quarantined (``error`` then holds the terminal
    :class:`~repro.runtime.errors.RetriesExhaustedError`).  ``retries``
    counts transient failures absorbed on the way — including worker
    crashes healed by the pool.

    The observability fields describe the *final* attempt: ``seconds``
    is its wall-clock duration (measured inside the worker for pooled
    queries), ``phases``/``phase_calls`` its per-phase profiler deltas
    (``None`` when no profiler is attached or timing is off), and
    ``pooled`` says whether a forked worker executed it.
    """

    reward: Optional[float]
    retries: int = 0
    error: Optional[Exception] = None
    phases: Optional[Dict[str, float]] = None
    phase_calls: Optional[Dict[str, int]] = None
    seconds: Optional[float] = None
    pooled: bool = False


def _phase_payload(delta: PhaseDelta, began: float):
    """One reply's phase payload: ``(phase_seconds, phase_calls, total)``.

    ``began`` is the ``perf_counter`` reading taken just before the
    attack; the total is read *first* so the delta bookkeeping (dict
    copies) never inflates it.  The phase dicts are ``None`` when no
    profiler is attached.
    """
    total = time.perf_counter() - began
    seconds, calls = delta.delta()
    return seconds, calls, total


def _worker_main(system, conn) -> None:
    """Child-process loop: serve attack queries until the stop sentinel.

    Messages arrive as ``(index, trajectories, directive)`` and replies
    go back as ``(index, reward, error, payload)``, where ``payload``
    carries the query's worker-side timings (see :func:`_phase_payload`)
    so the parent can account pooled wall-clock per phase.  On a query
    failure the worker ships the error to the parent and exits — a
    worker never serves queries from a possibly corrupted replica; the
    parent forks a pristine replacement instead.  The exception is an
    error tagged ``replica_safe`` (injected chaos that never touched
    the replica): it is shipped as data and the worker keeps serving.

    ``directive`` carries seeded worker-chaos orders from a
    :class:`~repro.runtime.faults.WorkerFaultPlan`: ``("kill",)`` makes
    the worker die abruptly mid-query (exercising crash healing) and
    ``("stall", seconds)`` delays it past the parent's heartbeat
    deadline (exercising stall detection).
    """
    # Forked workers inherit the parent's signal handlers — including a
    # scheduler's SIGTERM/SIGINT drain handlers, which would make
    # workers immune to ``terminate()`` (stall recycling would hang and
    # leak processes).  Workers die on SIGTERM like any process and
    # leave Ctrl-C drains to the parent: in-flight queries finish.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, trajectories, directive = message
        if directive is not None:
            if directive[0] == "kill":
                os._exit(1)
            if directive[0] == "stall":
                time.sleep(directive[1])
        delta = PhaseDelta(find_profiler(system, trajectories))
        began = time.perf_counter()
        try:
            reward = float(system.attack(trajectories))
        except Exception as error:
            conn.send((index, None, error, _phase_payload(delta, began)))
            if getattr(error, "replica_safe", False):
                continue
            raise SystemExit(1)
        conn.send((index, reward, None, _phase_payload(delta, began)))
    conn.close()


class QueryPool:
    """Fan black-box queries out over forked recommender-system replicas.

    Parameters
    ----------
    system:
        The recommender system (or any object with a compatible
        ``attack(trajectories) -> number`` method) to replicate.  The
        parent's instance is also the serial-fallback executor.
    workers:
        Worker process count.  ``1`` runs everything in-process (no
        multiprocessing at all); higher values fork that many replicas.
    crash_retries:
        How many times one query may be re-issued after killing a worker
        before the pool executes it in-process to surface the real error.
    stall_timeout:
        Heartbeat deadline in seconds: a worker holding one query longer
        than this is presumed hung, killed, and its query re-issued
        (counted as a crash).  ``None`` (the default) disables the
        heartbeat — queries may take arbitrarily long.
    chaos:
        Optional :class:`~repro.runtime.faults.WorkerFaultPlan` injecting
        seeded worker kills and stalls per dispatched query, for soak
        tests of the healing paths.  Ignored in serial mode (there are
        no workers to kill).
    """

    def __init__(self, system, workers: int = 1,
                 crash_retries: int = 3,
                 stall_timeout: Optional[float] = None,
                 chaos: Optional[WorkerFaultPlan] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if crash_retries < 0:
            raise ValueError("crash_retries must be non-negative")
        if stall_timeout is not None and stall_timeout <= 0.0:
            raise ValueError("stall_timeout must be positive")
        self.system = system
        self.workers = workers
        self.crash_retries = crash_retries
        self.stall_timeout = stall_timeout
        self.chaos = chaos
        methods = multiprocessing.get_all_start_methods()
        #: Whether this pool can actually parallelize.  Fork is required:
        #: replicas are inherited copy-on-write, never pickled.
        self.parallel = workers > 1 and "fork" in methods
        self._ctx = (multiprocessing.get_context("fork")
                     if self.parallel else None)
        self._procs: List[Optional[object]] = [None] * workers
        self._conns: List[Optional[object]] = [None] * workers
        self._started = False
        #: Worker deaths observed (crashes plus error-recycles).
        self.crashes = 0
        #: Queries that ended up executing in-process after the pool
        #: could not serve them (crash loops, spawn failures).
        self.serial_fallbacks = 0
        #: Pool gave up on parallel execution for good (spawn failure).
        self.broken = False
        #: Worker-measured attack wall-clock absorbed from replies
        #: (includes failed attempts; see ``_absorb``).
        self.pooled_seconds = 0.0
        #: Worker-executed attack attempts absorbed from replies.
        self.pooled_queries = 0
        #: Optional parent-side :class:`~repro.obs.trace.Tracer` — set
        #: after construction, never shipped to workers.
        self.tracer = None
        #: Optional parent-side
        #: :class:`~repro.obs.metrics.MetricsRegistry` for pool
        #: counters; also never shipped to workers.
        self.metrics = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> bool:
        """Fork one worker into ``slot``; False if the spawn failed."""
        try:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(target=_worker_main,
                                     args=(self.system, child_conn),
                                     daemon=True)
            proc.start()
            child_conn.close()
        except OSError:
            self._procs[slot] = None
            self._conns[slot] = None
            return False
        self._procs[slot] = proc
        self._conns[slot] = parent_conn
        return True

    def _ensure_started(self) -> None:
        if self._started or not self.parallel or self.broken:
            return
        spawned = sum(self._spawn(slot) for slot in range(self.workers))
        if spawned == 0:
            self.broken = True
        self._started = True

    def _recycle(self, slot: int, kill: bool = False) -> bool:
        """Reap a dead/poisoned worker and fork a replacement.

        ``kill=True`` terminates the process up front instead of
        waiting for it to exit — the stall-detection path, where the
        worker is presumed hung and would block the join deadline.
        """
        conn = self._conns[slot]
        proc = self._procs[slot]
        if conn is not None:
            conn.close()
        if proc is not None:
            if kill and proc.is_alive():
                proc.terminate()
            proc.join(timeout=_WAIT_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_WAIT_TIMEOUT)
        return self._spawn(slot)

    def close(self) -> None:
        """Stop all workers; the pool can be restarted by the next batch."""
        for slot in range(self.workers):
            conn = self._conns[slot]
            proc = self._procs[slot]
            if conn is not None:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
                self._conns[slot] = None
            if proc is not None:
                proc.join(timeout=_WAIT_TIMEOUT)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=_WAIT_TIMEOUT)
                self._procs[slot] = None
        self._started = False

    def __enter__(self) -> "QueryPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def attack(self, trajectories: Sequence[Sequence[int]]) -> float:
        """One in-process query (convenience; bypasses the workers)."""
        return float(self.system.attack(trajectories))

    def _observing(self) -> bool:
        """Whether anyone is consuming per-query timing fields."""
        return self.tracer is not None or self.metrics is not None

    def _span(self, name: str, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def _serial_outcome(self, trajectories, retry: Optional[RetryPolicy],
                        rng, sleep, base_retries: int = 0) -> QueryOutcome:
        """Execute one query in-process under the caller's retry policy.

        When observability is attached the outcome carries the query's
        wall-clock seconds and per-phase profiler deltas, mirroring
        what pooled replies ship back from workers.
        """
        def attempt() -> float:
            reward = float(self.system.attack(trajectories))
            if retry is not None and not np.isfinite(reward):
                # Same guard PoisonRec applies on its serial path: a
                # garbage RecNum reading is a retryable fault, not data.
                raise CorruptRewardError(
                    f"environment returned non-finite RecNum {reward!r}")
            return reward

        def timed(outcome: QueryOutcome, delta, began) -> QueryOutcome:
            if delta is None:
                return outcome
            outcome.seconds = time.perf_counter() - began
            outcome.phases, outcome.phase_calls = delta.delta()
            return outcome

        delta = began = None
        if self._observing():
            delta = PhaseDelta(find_profiler(self.system, trajectories))
            began = time.perf_counter()
        if retry is None:
            return timed(QueryOutcome(reward=attempt(),
                                      retries=base_retries), delta, began)
        try:
            outcome = call_with_retry(attempt, retry, rng=rng, sleep=sleep)
        except RetriesExhaustedError as error:
            return timed(QueryOutcome(
                reward=None,
                retries=base_retries + max(error.attempts - 1, 0),
                error=error), delta, began)
        return timed(QueryOutcome(reward=outcome.value,
                                  retries=base_retries + outcome.retries),
                     delta, began)

    def attack_many(self, trajectory_sets: Sequence[Sequence[Sequence[int]]],
                    retry: Optional[RetryPolicy] = None,
                    rng: Optional[np.random.Generator] = None,
                    sleep: Optional[Callable[[float], None]] = None
                    ) -> List[QueryOutcome]:
        """Execute a batch of queries; outcomes come back in submission order.

        On the fault-free path the rewards are bit-identical to running
        the batch serially through ``system.attack`` (see the module
        docstring for why).  ``retry``/``rng``/``sleep`` plug the
        caller's :mod:`repro.runtime` retry policy into transient worker
        failures; without a policy, transient errors propagate exactly
        as they would serially.
        """
        if not trajectory_sets:
            return []
        self._ensure_started()
        if not self.parallel or self.broken:
            with self._span("pool.batch", batch=len(trajectory_sets),
                            tier="serial"):
                return [self._serial_outcome(trajectories, retry, rng,
                                             sleep)
                        for trajectories in trajectory_sets]
        with self._span("pool.batch", batch=len(trajectory_sets),
                        tier="pooled", workers=self.workers):
            return self._attack_many_parallel(trajectory_sets, retry, rng,
                                              sleep if sleep is not None
                                              else time.sleep)

    # ------------------------------------------------------------------
    def _attack_many_parallel(self, trajectory_sets, retry, rng,
                              sleep) -> List[QueryOutcome]:
        tasks = list(trajectory_sets)
        results: List[Optional[QueryOutcome]] = [None] * len(tasks)
        pending: List[int] = list(range(len(tasks)))
        failures = [0] * len(tasks)       # transient in-worker failures
        crashes = [0] * len(tasks)        # worker deaths while running it
        dispatches = [0] * len(tasks)     # sends (the chaos attempt axis)
        pinned: dict = {}                 # task index -> required slot
        busy: dict = {}                   # slot -> task index
        deadlines: dict = {}              # slot -> stall deadline (monotonic)

        def drop(slot: int) -> int:
            """Take ``slot`` out of flight; returns its task index."""
            deadlines.pop(slot, None)
            return busy.pop(slot)

        def dispatch() -> None:
            for index in list(pending):
                slot = pinned.get(index)
                if slot is not None and self._conns[slot] is None:
                    # The pinned worker died; its replica (and the
                    # occurrence counters we pinned for) is gone anyway.
                    pinned.pop(index)
                    slot = None
                if slot is not None and slot in busy:
                    continue      # wait for the pinned worker to idle
                if slot is None:
                    idle = [s for s in range(self.workers)
                            if s not in busy and self._conns[s] is not None]
                    if not idle:
                        continue  # a later task may be pinned to an idler
                    slot = idle[0]
                dispatches[index] += 1
                directive = (self.chaos.directive(tasks[index],
                                                  dispatches[index])
                             if self.chaos is not None else None)
                try:
                    self._conns[slot].send((index, tasks[index], directive))
                except (BrokenPipeError, OSError):
                    pinned.pop(index, None)
                    self._handle_crash(slot)
                    continue      # stays pending; retried next round
                pending.remove(index)
                busy[slot] = index
                if self.stall_timeout is not None:
                    deadlines[slot] = time.monotonic() + self.stall_timeout

        def requeue_after_crash(index: int) -> None:
            pinned.pop(index, None)
            crashes[index] += 1
            if crashes[index] > self.crash_retries:
                # A query that keeps killing workers runs in-process so
                # the real failure surfaces as it would serially.
                self._note_fallback()
                results[index] = self._serial_outcome(
                    tasks[index], retry, rng, sleep,
                    base_retries=failures[index] + crashes[index])
            else:
                pending.insert(0, index)

        def handle_transient(index: int, slot: Optional[int],
                             error: Exception) -> None:
            """One transient failure of ``index``; requeue or quarantine.

            ``slot`` names the still-alive worker whose replica consumed
            the failed attempt — the retry is pinned there so per-query
            occurrence counters advance exactly as they would serially.
            """
            failures[index] += 1
            if retry is None:
                self._abort(busy)
                raise error
            if failures[index] >= retry.max_attempts:
                pinned.pop(index, None)
                results[index] = QueryOutcome(
                    reward=None,
                    retries=(failures[index] - 1 + crashes[index]),
                    error=RetriesExhaustedError(
                        f"gave up after {failures[index]} "
                        f"attempt(s): {error}",
                        attempts=failures[index]))
                return
            delay = retry.backoff(failures[index], rng)
            if delay > 0.0:
                sleep(delay)
            if slot is not None:
                pinned[index] = slot
            pending.insert(0, index)

        while pending or busy:
            dispatch()
            if not busy:
                if pending and not any(
                        conn is not None for conn in self._conns):
                    # Every worker slot is dead and respawning failed.
                    self.broken = True
                    while pending:
                        index = pending.pop(0)
                        self._note_fallback()
                        results[index] = self._serial_outcome(
                            tasks[index], retry, rng, sleep,
                            base_retries=failures[index] + crashes[index])
                continue
            conn_to_slot = {self._conns[slot]: slot for slot in busy}
            timeout = _WAIT_TIMEOUT
            if deadlines:
                timeout = min(timeout, max(
                    min(deadlines.values()) - time.monotonic(), 0.0))
            ready = _connection_wait(list(conn_to_slot), timeout)
            if not ready:
                # Heartbeat: a worker holding one query past the stall
                # deadline is presumed hung — kill it and re-issue.
                now = time.monotonic()
                for slot in list(busy):
                    if slot in deadlines and now >= deadlines[slot]:
                        index = drop(slot)
                        self.crashes += 1
                        if self.metrics is not None:
                            self.metrics.counter("pool.stalls").inc()
                        self._recycle(slot, kill=True)
                        requeue_after_crash(index)
                # Paranoia sweep: a worker that died without closing its
                # pipe would otherwise hang the batch forever.
                for slot in list(busy):
                    proc = self._procs[slot]
                    if proc is None or not proc.is_alive():
                        index = drop(slot)
                        self._handle_crash(slot)
                        requeue_after_crash(index)
                continue
            for conn in ready:
                slot = conn_to_slot[conn]
                try:
                    index, reward, error, payload = conn.recv()
                except (EOFError, OSError):
                    index = drop(slot)
                    self._handle_crash(slot)
                    requeue_after_crash(index)
                    continue
                drop(slot)
                self._absorb(payload, tasks[index])
                if error is None:
                    # The replica executed a real query; mirror it into
                    # the parent's budget counter before validating.
                    self._count_query()
                    if retry is not None and not np.isfinite(reward):
                        handle_transient(index, slot, CorruptRewardError(
                            f"environment returned non-finite RecNum "
                            f"{reward!r}"))
                        continue
                    pinned.pop(index, None)
                    outcome = QueryOutcome(
                        reward=reward,
                        retries=failures[index] + crashes[index],
                        pooled=True)
                    if payload is not None:
                        outcome.phases, outcome.phase_calls, \
                            outcome.seconds = payload
                    results[index] = outcome
                    continue
                if getattr(error, "replica_safe", False) and isinstance(
                        error, TransientEnvironmentError):
                    # Injected chaos that never touched the replica: the
                    # worker is still serving; retry pinned to it.
                    handle_transient(index, slot, error)
                    continue
                # The worker ships the error then exits; recycle it.
                self._handle_crash(slot)
                pinned.pop(index, None)
                if isinstance(error, TransientEnvironmentError):
                    handle_transient(index, None, error)
                else:
                    self._abort(busy)
                    raise error
        return results

    def _absorb(self, payload, task) -> None:
        """Fold one worker reply's phase payload into parent accounting.

        Merges the phase deltas into the parent-side profiler (the same
        object the worker's fork-copy accumulated into — this is what
        makes pooled-tier rollups possible) and updates the pool's
        wall-clock counters and optional metrics.  Failed attempts ship
        payloads too, keeping parity with the serial path where the
        profiler accumulates even during attempts that raise.
        """
        if payload is None:
            return
        phases, calls, seconds = payload
        self.pooled_queries += 1
        self.pooled_seconds += seconds
        if phases:
            profiler = find_profiler(self.system, task)
            if profiler is not None:
                profiler.merge(phases, calls)
        if self.metrics is not None:
            self.metrics.counter("pool.queries", tier="pooled").inc()
            self.metrics.histogram("pool.query_seconds").observe(seconds)
            for name, phase_seconds in (phases or {}).items():
                self.metrics.histogram("pool.phase_seconds",
                                       phase=name).observe(phase_seconds)

    def _handle_crash(self, slot: int) -> None:
        """Reap + respawn one worker, recording the death."""
        self.crashes += 1
        if self.metrics is not None:
            self.metrics.counter("pool.crashes").inc()
        self._recycle(slot)

    def _note_fallback(self) -> None:
        """Count one query the pool had to execute in-process."""
        self.serial_fallbacks += 1
        if self.metrics is not None:
            self.metrics.counter("pool.serial_fallbacks").inc()

    def _count_query(self) -> None:
        """Mirror a worker-side query into the parent's budget counter.

        Walks the wrapper chain (``FaultyEnvironment._env``,
        ``BlackBoxEnvironment._system``) until a writable
        ``query_count`` is found; read-only facades delegate inward.
        """
        target = self.system
        for _ in range(8):
            if target is None:
                return
            if hasattr(target, "query_count"):
                try:
                    target.query_count += 1
                    return
                except AttributeError:
                    pass
            inner = getattr(target, "_system", None)
            if inner is None:
                inner = getattr(target, "_env", None)
            target = inner

    def _abort(self, busy: dict) -> None:
        """Tear the pool down before propagating a fatal error.

        In-flight results would otherwise desynchronize the next batch;
        a fresh set of workers is forked lazily if the pool is reused.
        """
        busy.clear()
        self.close()

    def __repr__(self) -> str:
        mode = "parallel" if self.parallel and not self.broken else "serial"
        return (f"QueryPool(workers={self.workers}, mode={mode}, "
                f"crashes={self.crashes})")
