"""Per-query phase profiler for the black-box attack hot path.

Attach a :class:`QueryProfiler` to a
:class:`~repro.recsys.system.RecommenderSystem` (``system.profiler =
QueryProfiler()``) and every ``attack`` call reports wall-clock time into
four phases:

``restore``
    Reloading the clean ranker state (snapshot restore or incremental
    poison revert).
``merge``
    Building the poison log and splicing it into the merged-log skeleton.
``retrain``
    The ranker's ``poison_update`` pass.
``score``
    Re-scoring the frozen evaluation users (the RecNum readout).

The profiler only accumulates floats, so leaving it attached costs two
``perf_counter`` reads per phase; the throughput benchmark uses it to
emit the per-query breakdown in ``BENCH_query_throughput.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class QueryProfiler:
    """Accumulates wall-clock seconds and call counts per attack phase."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; nested/repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: ``{phase: {seconds, calls, mean_seconds}}``."""
        return {
            name: {
                "seconds": total,
                "calls": self.counts[name],
                "mean_seconds": total / max(self.counts[name], 1),
            }
            for name, total in sorted(self.totals.items())
        }

    def reset(self) -> None:
        """Discard all accumulated timings."""
        self.totals.clear()
        self.counts.clear()

    def __repr__(self) -> str:
        phases = ", ".join(f"{name}={total:.3f}s"
                           for name, total in sorted(self.totals.items()))
        return f"QueryProfiler({phases})"
