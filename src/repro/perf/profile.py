"""Per-query phase profiler for the black-box attack hot path.

Attach a :class:`QueryProfiler` to a
:class:`~repro.recsys.system.RecommenderSystem` (``system.profiler =
QueryProfiler()``) and every ``attack`` call reports wall-clock time into
four phases:

``restore``
    Reloading the clean ranker state (snapshot restore or incremental
    poison revert).
``merge``
    Building the poison log and splicing it into the merged-log skeleton.
``retrain``
    The ranker's ``poison_update`` pass.
``score``
    Re-scoring the frozen evaluation users (the RecNum readout).

The profiler only accumulates floats, so leaving it attached costs two
``perf_counter`` reads per phase; the throughput benchmark uses it to
emit the per-query breakdown in ``BENCH_query_throughput.json``.

Profilers are fork-safe by construction (two plain dicts), so pooled
workers inherit the attached profiler with their system replica.  The
pool ships each query's phase *deltas* back to the parent — captured
with :class:`PhaseDelta`, merged via :meth:`QueryProfiler.merge` — so
parent-side rollups cover pooled queries too.  :func:`find_profiler`
locates the attached profiler behind any stack of environment wrappers
(and, via a ``resolve_profiler`` hook, behind a campaign router).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from ..effects import pure


class QueryProfiler:
    """Accumulates wall-clock seconds and call counts per attack phase."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; nested/repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: ``{phase: {seconds, calls, mean_seconds}}``."""
        return {
            name: {
                "seconds": total,
                "calls": self.counts[name],
                "mean_seconds": total / max(self.counts[name], 1),
            }
            for name, total in sorted(self.totals.items())
        }

    @pure
    def snapshot(self) -> Tuple[Dict[str, float], Dict[str, int]]:
        """Copies of ``(totals, counts)`` at this instant."""
        return dict(self.totals), dict(self.counts)

    def merge(self, seconds: Dict[str, float],
              calls: Dict[str, int]) -> None:
        """Fold externally measured phase deltas in (e.g. from a worker)."""
        for name, total in seconds.items():
            self.totals[name] = self.totals.get(name, 0.0) + total
        for name, count in calls.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def reset(self) -> None:
        """Discard all accumulated timings."""
        self.totals.clear()
        self.counts.clear()

    def __repr__(self) -> str:
        phases = ", ".join(f"{name}={total:.3f}s"
                           for name, total in sorted(self.totals.items()))
        return f"QueryProfiler({phases})"


class PhaseDelta:
    """Captures a profiler snapshot now, yields the deltas later.

    Workers (and the serial path, for parity) wrap each query in one of
    these: construct before ``attack``, call :meth:`delta` after, and
    the result is exactly the phase seconds/calls that query consumed —
    regardless of what the profiler had already accumulated.  A ``None``
    profiler yields ``(None, None)`` deltas.
    """

    def __init__(self, profiler: Optional[QueryProfiler]) -> None:
        self.profiler = profiler
        if profiler is not None:
            self._totals, self._counts = profiler.snapshot()
        else:
            self._totals, self._counts = {}, {}

    def delta(self) -> Tuple[Optional[Dict[str, float]],
                             Optional[Dict[str, int]]]:
        """Per-phase ``(seconds, calls)`` accumulated since construction."""
        if self.profiler is None:
            return None, None
        totals, counts = self.profiler.snapshot()
        seconds = {}
        calls = {}
        for name, count in counts.items():
            grew = count - self._counts.get(name, 0)
            if grew > 0:
                calls[name] = grew
                seconds[name] = totals[name] - self._totals.get(name, 0.0)
        return seconds, calls


def find_profiler(target, task=None,
                  max_hops: int = 8) -> Optional[QueryProfiler]:
    """Locate the profiler attached behind a stack of wrappers.

    Walks ``target`` inward through ``_system``/``_env`` links (the
    same chain the pool's query counter walks) until an object with a
    non-``None`` ``profiler`` attribute is found.  An object exposing a
    ``resolve_profiler(task)`` hook (a campaign router) short-circuits
    the walk when ``task`` is given: routed queries resolve to the
    profiler of the campaign the task is tagged for.
    """
    for _ in range(max_hops):
        if target is None:
            return None
        resolve = getattr(target, "resolve_profiler", None)
        if resolve is not None and task is not None:
            return resolve(task)
        profiler = getattr(target, "profiler", None)
        if profiler is not None:
            return profiler
        inner = getattr(target, "_system", None)
        if inner is None:
            inner = getattr(target, "_env", None)
        target = inner
    return None
