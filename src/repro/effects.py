"""Effect contracts: declare what state a callable may mutate.

The parallel query engine's bit-exact equivalence guarantee
(:mod:`repro.perf.pool`) rests on a purity contract: the score path
mutates nothing, ``poison_update``/``poison_revert`` are exact inverses,
and every piece of state touched between snapshot and restore is
captured by :class:`~repro.recsys.snapshots.RankerSnapshot`.  This
module provides the *declaration* half of that contract, mirroring
:mod:`repro.nn.spec`'s ``@shape_spec``:

* ``@pure`` — the callable mutates nothing observable: no writes to
  ``self`` attributes, no in-place mutation of its arguments, no RNG
  stream draws.
* ``@mutates("attr", ...)`` — the callable (including everything it
  transitively calls) writes at most the listed ``self`` attributes.
  RNG draws count as mutation of the generator attribute, so a method
  consuming ``self.rng`` must list ``"rng"``.  The single wildcard
  ``@mutates("*")`` leaves the write set unconstrained (used where the
  set is inherently subclass-defined, e.g. ``Ranker.restore``).
* ``@sanctioned_channel`` — marks an approved mutation entry point
  (``Tensor.assign_``, snapshot restore, ``splice``/``unsplice``,
  ``poison_revert``).  The static analyzer's REP009 rule flags
  mutations of ranker/log state that do not flow through one of these.

Like ``shape_spec``, the decorators only *attach* metadata (zero
runtime cost, no imports).  Verification is entirely static and lives
in :mod:`repro.devtools.effectcheck`, which analyzes the real source
cross-procedurally and checks the declarations against the inferred
effect summaries.
"""

from __future__ import annotations

from typing import Callable, Tuple, TypeVar

#: Attribute carrying an effect declaration: ``None`` for ``@pure``,
#: a tuple of attribute names for ``@mutates``.
EFFECT_ATTRIBUTE = "__effect_spec__"

#: Attribute marking a sanctioned mutation channel.
CHANNEL_ATTRIBUTE = "__effect_channel__"

#: Runtime registry of sanctioned mutation channels, by qualified name.
#: Populated as decorated modules import; the static analyzer reads the
#: same decorators from the AST, so the registry and the checker can
#: never disagree about what is sanctioned.
SANCTIONED_CHANNELS: set = set()

_F = TypeVar("_F", bound=Callable)


def pure(fn: _F) -> _F:
    """Declare that ``fn`` performs no observable mutation.

    No ``self``-attribute writes, no in-place argument mutation, no RNG
    draws — transitively, through everything ``fn`` calls.  Checked
    statically by ``python -m repro.devtools.effectcheck``.
    """
    setattr(fn, EFFECT_ATTRIBUTE, ())
    return fn


def mutates(*attrs: str) -> Callable[[_F], _F]:
    """Declare the exact ``self`` attributes ``fn`` may write.

    The declared set is an upper bound on the *transitive* write set
    (callees' effects are inherited by callers).  ``mutates("*")``
    declares an unconstrained write set.
    """
    if not attrs:
        raise ValueError("mutates() needs at least one attribute name "
                         "(use @pure for an empty write set)")

    def decorate(fn: _F) -> _F:
        setattr(fn, EFFECT_ATTRIBUTE, tuple(attrs))
        return fn

    return decorate


def sanctioned_channel(fn: _F) -> _F:
    """Register ``fn`` as an approved mutation entry point (REP009).

    Ranker/log state may only change through a sanctioned channel:
    ``Tensor.assign_``, snapshot ``restore``/``_set_state``,
    ``InteractionLog.splice``/``unsplice``, and ``poison_revert``.
    """
    setattr(fn, CHANNEL_ATTRIBUTE, True)
    SANCTIONED_CHANNELS.add(getattr(fn, "__qualname__", fn.__name__))
    return fn


def get_effect_spec(fn: Callable) -> Tuple[str, ...] | None:
    """The effect declaration on ``fn``: ``()`` for pure, attrs for mutates.

    Returns ``None`` when ``fn`` carries no declaration; follows
    ``__func__`` for bound methods, like ``get_shape_spec``.
    """
    spec = getattr(fn, EFFECT_ATTRIBUTE, None)
    if spec is None and hasattr(fn, "__func__"):
        spec = getattr(fn.__func__, EFFECT_ATTRIBUTE, None)
    return spec


def is_sanctioned_channel(fn: Callable) -> bool:
    """Whether ``fn`` was registered via :func:`sanctioned_channel`."""
    if getattr(fn, CHANNEL_ATTRIBUTE, False):
        return True
    return bool(getattr(getattr(fn, "__func__", None), CHANNEL_ATTRIBUTE,
                        False))
