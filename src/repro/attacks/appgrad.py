"""AppGrad: approximate-gradient attack (Christakopoulou & Banerjee 2019).

The attack maintains an ``N x |items|`` integer matrix ``M`` where
``M[i, j]`` is the number of clicks attacker ``i`` spends on item ``j``
(rows sum to T).  ``f(M) = -RecNum`` is minimized by iteratively probing
the black box: each iteration proposes click reallocations (move one click
from item ``a`` to item ``b``), queries the system for the perturbed
RecNum, and keeps the move if it helps — a discrete approximation of
gradient descent on ``f`` when only function evaluations are available.

Following the paper's adaptation (Section IV-A):

* the matrix is initialized from *discrete behaviors sampled with the
  biased prior* (about half the clicks on targets) rather than GAN-
  generated ratings,
* each attacker keeps exactly T behaviors,
* click *order* is not modeled — trajectories are randomly shuffled rows,
  which is why AppGrad underperforms on order-sensitive systems
  (CoVisitation, GRU4Rec).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..recsys.system import BlackBoxEnvironment
from .base import Attack, AttackBudget


class AppGrad(Attack):
    """Approximate-gradient click-matrix attack."""

    name = "appgrad"

    def __init__(self, env: BlackBoxEnvironment,
                 budget: AttackBudget | None = None, seed: int = 0,
                 iterations: int = 40, probes_per_iteration: int = 4) -> None:
        super().__init__(env, budget, seed)
        self.iterations = iterations
        self.probes_per_iteration = probes_per_iteration
        self.matrix = self._initial_matrix()
        self.best_recnum: int | None = None

    # ------------------------------------------------------------------
    def _initial_matrix(self) -> np.ndarray:
        """Biased-prior initialization: ~half of the clicks on targets."""
        n = self.budget.num_attackers
        t = self.budget.trajectory_length
        matrix = np.zeros((n, self.env.num_items), dtype=np.int64)
        targets = self.env.target_items
        popularity = self.env.item_popularity[:self.env.num_original_items]
        weights = popularity + 1.0
        weights = weights / weights.sum()
        for i in range(n):
            for _ in range(t):
                if self.rng.random() < 0.5:
                    item = int(self.rng.choice(targets))
                else:
                    item = int(self.rng.choice(self.env.num_original_items,
                                               p=weights))
                matrix[i, item] += 1
        return matrix

    def _trajectories_from(self, matrix: np.ndarray) -> List[List[int]]:
        """Expand click counts to randomly ordered trajectories."""
        trajectories = []
        for row in matrix:
            clicks: List[int] = []
            for item in np.flatnonzero(row):
                clicks.extend([int(item)] * int(row[item]))
            self.rng.shuffle(clicks)
            trajectories.append(clicks)
        return trajectories

    def _propose(self, matrix: np.ndarray) -> np.ndarray:
        """Move one click of a random attacker to a different item.

        Moves are biased toward informative reallocations: the destination
        is a target item half the time, a popularity-weighted original
        otherwise.
        """
        proposal = matrix.copy()
        attacker = int(self.rng.integers(len(matrix)))
        sources = np.flatnonzero(proposal[attacker])
        source = int(self.rng.choice(sources))
        if self.rng.random() < 0.5:
            dest = int(self.rng.choice(self.env.target_items))
        else:
            dest = int(self.rng.integers(self.env.num_original_items))
        if dest == source:
            return proposal
        proposal[attacker, source] -= 1
        proposal[attacker, dest] += 1
        return proposal

    # ------------------------------------------------------------------
    def optimize(self) -> np.ndarray:
        """Run the query-based descent; returns the optimized matrix."""
        current = self.matrix
        current_value = self.env.attack(self._trajectories_from(current))
        for _ in range(self.iterations):
            best_proposal = None
            best_value = current_value
            for _ in range(self.probes_per_iteration):
                proposal = self._propose(current)
                value = self.env.attack(self._trajectories_from(proposal))
                if value > best_value:
                    best_value = value
                    best_proposal = proposal
            if best_proposal is not None:
                current = best_proposal
                current_value = best_value
        self.matrix = current
        self.best_recnum = int(current_value)
        return current

    def generate(self) -> List[List[int]]:
        self.optimize()
        return self._trajectories_from(self.matrix)
