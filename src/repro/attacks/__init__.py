"""Attack methods: the paper's six baselines plus shared infrastructure.

PoisonRec itself lives in :mod:`repro.core`; this package holds the
comparison methods of Table III.
"""

from typing import Dict, Type

from .appgrad import AppGrad
from .base import Attack, AttackBudget, AttackOutcome
from .conslop import ConsLOP
from .heuristics import (MiddleAttack, PopularAttack, PowerItemAttack,
                         RandomAttack)

#: Table III baseline order (PoisonRec is run separately via repro.core).
BASELINE_CLASSES: Dict[str, Type[Attack]] = {
    cls.name: cls
    for cls in (RandomAttack, PopularAttack, MiddleAttack, PowerItemAttack,
                ConsLOP, AppGrad)
}

HEURISTIC_NAMES = ("random", "popular", "middle", "poweritem")

__all__ = [
    "Attack", "AttackBudget", "AttackOutcome",
    "RandomAttack", "PopularAttack", "MiddleAttack", "PowerItemAttack",
    "ConsLOP", "AppGrad",
    "BASELINE_CLASSES", "HEURISTIC_NAMES",
]
