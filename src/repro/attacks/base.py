"""Shared interface for all attack methods compared in the paper.

Every attack receives the black-box environment and a budget (N attacker
accounts, T clicks per account) and produces the N trajectories to inject.
``run`` executes the attack against the environment and reports the
resulting RecNum — the paper's Table III entry for that (attack, system,
dataset) cell.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, List

import numpy as np

from ..recsys.system import BlackBoxEnvironment


@dataclass(frozen=True)
class AttackBudget:
    """N fake accounts, each clicking T items (paper defaults: 20/20)."""

    num_attackers: int = 20
    trajectory_length: int = 20

    def __post_init__(self) -> None:
        if self.num_attackers <= 0 or self.trajectory_length <= 0:
            raise ValueError("budget dimensions must be positive")

    @property
    def total_clicks(self) -> int:
        return self.num_attackers * self.trajectory_length


@dataclass
class AttackOutcome:
    """Result of executing one attack."""

    method: str
    recnum: int
    trajectories: List[List[int]]


class Attack(abc.ABC):
    """Base class for attack strategies."""

    name: ClassVar[str] = "base"

    def __init__(self, env: BlackBoxEnvironment,
                 budget: AttackBudget | None = None, seed: int = 0) -> None:
        self.env = env
        self.budget = budget or AttackBudget()
        if self.budget.num_attackers > env.num_attackers:
            raise ValueError(
                f"budget needs {self.budget.num_attackers} accounts but the "
                f"environment provides {env.num_attackers}")
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def generate(self) -> List[List[int]]:
        """Produce the N attack trajectories (item id sequences)."""

    def run(self) -> AttackOutcome:
        """Generate, inject, and measure."""
        trajectories = self.generate()
        recnum = self.env.attack(trajectories)
        return AttackOutcome(method=self.name, recnum=recnum,
                             trajectories=trajectories)
