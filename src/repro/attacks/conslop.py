"""ConsLOP: constrained linear-optimization attack on CoVisitation.

Adapts Yang et al. (NDSS 2017): the attacker promotes a *single* target
item by injecting fake co-visitations ``(target, j)`` and chooses, via a
linear program, (1) which original items ``j`` to pair with and (2) how
many fake co-visitations each pair receives.

The LP maximizes the expected number of users whose recommendation lists
gain the target: pairing with item ``j`` reaches the users who have ``j``
in their history, with payoff discounted by ``j``'s existing co-visit
degree (the injected edges compete with organic ones).  The budget is
``N*T/2`` co-visitations (each consumes two clicks).

This baseline is *privileged*: like the paper's setup, it receives the
system's interaction log (who clicked what) — knowledge PoisonRec does not
use — which is why it excels on CoVisitation itself and transfers poorly
elsewhere.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.optimize import linprog

from ..data.interactions import InteractionLog
from ..recsys.system import BlackBoxEnvironment
from .base import Attack, AttackBudget


class ConsLOP(Attack):
    """Single-target co-visitation injection via linear programming."""

    name = "conslop"

    def __init__(self, env: BlackBoxEnvironment,
                 budget: AttackBudget | None = None, seed: int = 0,
                 system_log: Optional[InteractionLog] = None,
                 target_item: Optional[int] = None) -> None:
        super().__init__(env, budget, seed)
        self.system_log = system_log
        self.target_item = (int(target_item) if target_item is not None
                            else int(self.rng.choice(env.target_items)))

    # ------------------------------------------------------------------
    def _item_statistics(self) -> tuple:
        """Per-original-item (user reach, co-visit degree).

        With the privileged log, reach is the exact number of distinct
        users having the item in their history and degree the number of
        consecutive-click edges touching it.  Without it, both fall back
        to crawled popularity.
        """
        num_original = self.env.num_original_items
        if self.system_log is None:
            popularity = self.env.item_popularity[:num_original]
            return popularity.copy(), np.maximum(popularity, 1.0)
        reach = np.zeros(num_original)
        degree = np.zeros(num_original)
        for _, sequence in self.system_log.iter_sequences():
            seen = set()
            previous = None
            for item in sequence:
                if item < num_original and item not in seen:
                    reach[item] += 1.0
                    seen.add(item)
                if previous is not None and previous != item:
                    if previous < num_original:
                        degree[previous] += 1.0
                    if item < num_original:
                        degree[item] += 1.0
                previous = item
        return reach, np.maximum(degree, 1.0)

    def solve(self) -> np.ndarray:
        """Optimal fake co-visitation counts per original item.

        LP (after linearizing the rank-gain payoff):

            maximize    sum_j (reach_j / degree_j) * x_j
            subject to  sum_j x_j <= N*T/2,   0 <= x_j <= degree_j

        The per-item cap ``degree_j`` models diminishing returns — once the
        injected edges rival the organic ones, the co-visit rate toward the
        target saturates.
        """
        reach, degree = self._item_statistics()
        total_budget = self.budget.total_clicks // 2
        weights = reach / degree
        result = linprog(
            c=-weights,
            A_ub=np.ones((1, len(weights))),
            b_ub=[total_budget],
            bounds=[(0.0, float(cap)) for cap in degree],
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"ConsLOP LP failed: {result.message}")
        counts = np.floor(result.x).astype(np.int64)
        # Spend any rounding slack on the best items.
        slack = total_budget - int(counts.sum())
        if slack > 0:
            order = np.argsort(-weights)
            for j in order:
                if slack == 0:
                    break
                extra = min(slack, max(int(degree[j]) - int(counts[j]), 0))
                counts[j] += extra
                slack -= extra
        return counts

    def generate(self) -> List[List[int]]:
        counts = self.solve()
        # Each co-visitation is one click on the target followed by one
        # click on the chosen original item.
        covisits: List[int] = []
        for item, count in enumerate(counts):
            covisits.extend([item] * int(count))
        self.rng.shuffle(covisits)

        trajectories: List[List[int]] = []
        cursor = 0
        per_attacker = self.budget.trajectory_length // 2
        for _ in range(self.budget.num_attackers):
            trajectory: List[int] = []
            for _ in range(per_attacker):
                if cursor < len(covisits):
                    partner = covisits[cursor]
                    cursor += 1
                else:
                    partner = int(self.rng.integers(
                        self.env.num_original_items))
                trajectory.extend([self.target_item, partner])
            # Odd trajectory lengths get one extra target click.
            while len(trajectory) < self.budget.trajectory_length:
                trajectory.append(self.target_item)
            trajectories.append(trajectory)
        return trajectories
