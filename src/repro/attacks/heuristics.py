"""The paper's four heuristic attack baselines (Section IV-A).

* **Random Attack** — alternate a random original item and a random target.
* **Popular Attack** — alternate a top-k% popular item and a target.
* **Middle Attack** — at each step pick uniformly among {targets, popular
  set, unpopular set}; may click several targets in a row.
* **PowerItem Attack** — alternate "power items" (selected by in-degree
  centrality on the co-visitation graph, Seminario & Wilson 2014) and
  targets.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from ..data.popularity import top_percent_items
from ..recsys.system import BlackBoxEnvironment
from .base import Attack, AttackBudget


class RandomAttack(Attack):
    """Alternate random original items and random target items."""

    name = "random"

    def generate(self) -> List[List[int]]:
        trajectories = []
        targets = self.env.target_items
        for _ in range(self.budget.num_attackers):
            trajectory = []
            for step in range(self.budget.trajectory_length):
                if step % 2 == 0:
                    trajectory.append(int(self.rng.choice(targets)))
                else:
                    trajectory.append(
                        int(self.rng.integers(self.env.num_original_items)))
            trajectories.append(trajectory)
        return trajectories


class PopularAttack(Attack):
    """Alternate top-k% popular items and targets (paper: k=10)."""

    name = "popular"

    def __init__(self, env: BlackBoxEnvironment,
                 budget: AttackBudget | None = None, seed: int = 0,
                 top_percent: float = 10.0) -> None:
        super().__init__(env, budget, seed)
        original_popularity = env.item_popularity[:env.num_original_items]
        self.popular_items = top_percent_items(original_popularity,
                                               top_percent)

    def generate(self) -> List[List[int]]:
        trajectories = []
        targets = self.env.target_items
        for _ in range(self.budget.num_attackers):
            trajectory = []
            for step in range(self.budget.trajectory_length):
                if step % 2 == 0:
                    trajectory.append(int(self.rng.choice(targets)))
                else:
                    trajectory.append(int(self.rng.choice(self.popular_items)))
            trajectories.append(trajectory)
        return trajectories


class MiddleAttack(Attack):
    """Uniformly pick a set — targets, popular, or unpopular — each step."""

    name = "middle"

    def __init__(self, env: BlackBoxEnvironment,
                 budget: AttackBudget | None = None, seed: int = 0,
                 top_percent: float = 10.0) -> None:
        super().__init__(env, budget, seed)
        original_popularity = env.item_popularity[:env.num_original_items]
        self.popular_items = top_percent_items(original_popularity,
                                               top_percent)
        self.unpopular_items = np.setdiff1d(
            np.arange(env.num_original_items), self.popular_items)
        if len(self.unpopular_items) == 0:
            self.unpopular_items = np.arange(env.num_original_items)

    def generate(self) -> List[List[int]]:
        trajectories = []
        sets = (self.env.target_items, self.popular_items,
                self.unpopular_items)
        for _ in range(self.budget.num_attackers):
            trajectory = []
            for _ in range(self.budget.trajectory_length):
                chosen = sets[int(self.rng.integers(3))]
                trajectory.append(int(self.rng.choice(chosen)))
            trajectories.append(trajectory)
        return trajectories


class PowerItemAttack(Attack):
    """Alternate power items (in-degree centrality) and targets.

    Power items are selected on the co-visitation graph the attacker can
    estimate from crawled data; here we rebuild it from item popularity
    co-occurrence by exposing the environment's public co-click structure
    via popularity-weighted sampling when no graph is observable.  The
    in-degree centrality selection follows Seminario & Wilson (2014).
    """

    name = "poweritem"

    def __init__(self, env: BlackBoxEnvironment,
                 budget: AttackBudget | None = None, seed: int = 0,
                 num_power_items: int = 10) -> None:
        super().__init__(env, budget, seed)
        self.power_items = self._select_power_items(num_power_items)

    def _covisitation_graph(self) -> nx.DiGraph:
        """Directed co-visitation graph from the environment's public data.

        The attacker approximates co-visits by pairing popular items: the
        probability two items co-occur in a session is proportional to the
        product of their popularities (the crawlable signal).  Edges point
        from the less to the more popular item, so in-degree concentrates
        on influential items.
        """
        popularity = self.env.item_popularity[:self.env.num_original_items]
        graph = nx.DiGraph()
        graph.add_nodes_from(range(len(popularity)))
        order = np.argsort(-popularity)
        # Connect each item to the `k` items just above it in popularity —
        # a deterministic proxy for observed co-visits.
        k = 5
        for rank, item in enumerate(order):
            for offset in range(1, k + 1):
                if rank - offset >= 0:
                    graph.add_edge(int(item), int(order[rank - offset]),
                                   weight=float(popularity[item] + 1))
        return graph

    def _select_power_items(self, count: int) -> np.ndarray:
        graph = self._covisitation_graph()
        centrality = nx.in_degree_centrality(graph)
        popularity = self.env.item_popularity[:self.env.num_original_items]
        ranked = sorted(centrality,
                        key=lambda node: (-centrality[node],
                                          -popularity[node], node))
        return np.asarray(ranked[:count], dtype=np.int64)

    def generate(self) -> List[List[int]]:
        trajectories = []
        targets = self.env.target_items
        for _ in range(self.budget.num_attackers):
            trajectory = []
            for step in range(self.budget.trajectory_length):
                if step % 2 == 0:
                    trajectory.append(int(self.rng.choice(targets)))
                else:
                    trajectory.append(int(self.rng.choice(self.power_items)))
            trajectories.append(trajectory)
        return trajectories
