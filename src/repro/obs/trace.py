"""Deterministic span tracer for the attack/serve hot path.

A :class:`Span` is one timed operation — a name, a half-open
``[start, end)`` interval on the monotonic clock, a parent link and a
flat attribute dict.  A :class:`Tracer` hands them out with *sequential*
integer ids (no RNG, no PIDs, no UUIDs), so tracing is deterministic and
provably cannot perturb the reproduction's random streams: the only
nondeterministic input is ``time.perf_counter``, and timestamps flow
into the observability log only, never into checkpoints or rewards.

Two ways to record a span:

* :meth:`Tracer.span` — a context manager timing the enclosed block,
  with automatic parenting (the innermost open span on this tracer's
  stack becomes the parent).
* :meth:`Tracer.add` — register an *externally measured* interval, e.g.
  phase timings shipped back from a forked
  :class:`~repro.perf.pool.QueryPool` worker, parented wherever the
  caller says.

Closed spans are retained in :attr:`Tracer.spans` (for in-process
rollups) and streamed to an optional ``sink`` callable (the
:class:`~repro.obs.run.RunTelemetry` JSONL writer).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..effects import pure


@dataclass
class Span:
    """One timed operation in the trace tree."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    #: Logical process label ("main", "worker-3", ...) — never a PID.
    proc: str = "main"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    @pure
    def seconds(self) -> float:
        """Span duration in seconds (``0.0`` while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @pure
    def to_record(self) -> dict:
        """Plain-dict form for the JSONL run log."""
        record = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "proc": self.proc,
        }
        if not self.attrs:
            return record
        return dict(record, attrs=dict(self.attrs))

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        """Inverse of :meth:`to_record` (tolerates missing optionals)."""
        end = record.get("end")
        return cls(
            name=str(record["name"]),
            span_id=int(record["id"]),
            parent_id=(None if record.get("parent") is None
                       else int(record["parent"])),
            start=float(record["start"]),
            end=None if end is None else float(end),
            proc=str(record.get("proc", "main")),
            attrs=dict(record.get("attrs") or {}),
        )


class Tracer:
    """Deterministic span factory: sequential ids, monotonic clock only.

    Parameters
    ----------
    clock:
        Timestamp source; defaults to ``time.perf_counter``.  Tests
        inject fake clocks for exact assertions.
    sink:
        Optional callable receiving each span as it *closes* (children
        therefore arrive before their parents; consumers must not
        assume ordering).
    retain:
        Keep closed spans in :attr:`spans` for in-process rollups.
        Long-running fleets with a sink may disable retention to bound
        memory.
    proc:
        Logical process label stamped on every span this tracer opens.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 sink: Optional[Callable[[Span], None]] = None,
                 retain: bool = True, proc: str = "main") -> None:
        self.clock = clock
        self.sink = sink
        self.retain = retain
        self.proc = proc
        self.spans: List[Span] = []
        self._next_id = 0
        self._stack: List[Span] = []

    @property
    @pure
    def current(self) -> Optional[Span]:
        """The innermost open span, if any (the implicit parent)."""
        return self._stack[-1] if self._stack else None

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _finish(self, span: Span) -> None:
        if self.retain:
            self.spans.append(span)
        if self.sink is not None:
            self.sink(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open one span around the enclosed block.

        The span parents under the innermost open span of this tracer;
        it is closed (and shipped to the sink) even when the block
        raises.
        """
        span = Span(name=name, span_id=self._new_id(),
                    parent_id=(self._stack[-1].span_id
                               if self._stack else None),
                    start=self.clock(), proc=self.proc,
                    attrs=dict(attrs))
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.clock()
            self._finish(span)

    def add(self, name: str, start: float, end: float,
            parent_id: Optional[int] = None,
            proc: Optional[str] = None, **attrs: Any) -> Span:
        """Record one externally measured, already-closed span.

        Used for intervals timed elsewhere — worker-side attack phases
        shipped back with a :class:`~repro.perf.pool.QueryOutcome`, or
        rollups reconstructed from durations.  ``parent_id=None``
        parents under the innermost open span (if any).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(name=name, span_id=self._new_id(),
                    parent_id=parent_id, start=start, end=end,
                    proc=self.proc if proc is None else proc,
                    attrs=dict(attrs))
        self._finish(span)
        return span

    def __repr__(self) -> str:
        return (f"Tracer(spans={len(self.spans)}, "
                f"open={len(self._stack)})")
