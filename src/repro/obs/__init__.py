"""repro.obs — end-to-end tracing, metrics and crash-safe run telemetry.

The observability substrate for the attack/serve stack:

* :class:`Tracer`/:class:`Span` — deterministic span tracing
  (sequential ids, monotonic clock only; provably no bit-exactness
  impact) over the attack hot path, PPO updates, scheduler slices and
  pool dispatch, including phase spans shipped back from forked
  :class:`~repro.perf.pool.QueryPool` workers.
* :class:`MetricsRegistry` — labeled counters/gauges/histograms
  (queries, retries, quarantines, restarts, tier changes, per-phase
  latency).
* :class:`RunTelemetry` — ties both to a crash-safe JSONL run log with
  the journal's torn-tail discipline; :func:`load_run` replays the log
  of a live or dead run, :func:`write_chrome_trace` exports it for
  ``chrome://tracing``, and ``repro trace`` / ``repro metrics`` render
  it in the terminal.

See ``docs/observability.md`` for the full tour and overhead numbers.
"""

from .export import chrome_trace, write_chrome_trace
from .jsonl import JsonlSink, jsonable, read_jsonl
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .run import (OBS_FORMAT, OBS_VERSION, RunReplay, RunTelemetry,
                  load_run, phase_rollup)
from .trace import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "JsonlSink",
    "jsonable",
    "read_jsonl",
    "RunTelemetry",
    "RunReplay",
    "load_run",
    "phase_rollup",
    "OBS_FORMAT",
    "OBS_VERSION",
    "chrome_trace",
    "write_chrome_trace",
]
