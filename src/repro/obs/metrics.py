"""Labeled metrics registry: counters, gauges and histograms.

A :class:`MetricsRegistry` hands out metric instruments keyed by
``(name, labels)`` — the same name with different labels is a different
time series, exactly as in Prometheus.  Everything is deterministic:
instruments are plain Python accumulators, :meth:`MetricsRegistry.snapshot`
emits them in sorted order, and histogram bucket boundaries are a fixed
exponential ladder — no clocks, no RNG, no environment reads.

The registry is the *accounting* layer of ``repro.obs``: the pool
counts queries/crashes/stalls here, the agent counts retries and
quarantines, the scheduler counts restarts and tier changes, and
:class:`~repro.obs.run.RunTelemetry` flushes snapshots into the JSONL
run log for ``repro metrics`` to render later.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..effects import pure

#: Fixed exponential bucket ladder (seconds) shared by all histograms:
#: 1ms .. ~100s, factor 4 — coarse, but stable across runs and machines.
DEFAULT_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096,
                   16.384, 65.536)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (queries, retries, crashes)."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    @pure
    def to_record(self) -> dict:
        """Plain-dict form for metrics snapshots."""
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value (workers alive, best reward, tier)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value (overwrites the previous one)."""
        self.value = float(value)

    @pure
    def to_record(self) -> dict:
        """Plain-dict form for metrics snapshots."""
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A distribution over the fixed exponential bucket ladder."""

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str],
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(buckets)
        #: ``bucket_counts[i]`` counts observations <= ``buckets[i]``;
        #: the final slot is the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (e.g. a per-query latency)."""
        value = float(value)
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    @pure
    def mean(self) -> float:
        """Mean of all observations (``0.0`` when empty)."""
        return self.total / self.count if self.count else 0.0

    @pure
    def to_record(self) -> dict:
        """Plain-dict form for metrics snapshots."""
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "total": self.total, "buckets": list(self.buckets),
                "bucket_counts": list(self.bucket_counts)}


class MetricsRegistry:
    """Hands out metric instruments keyed by ``(name, labels)``.

    Asking for the same name+labels twice returns the same instrument;
    asking for the same name with a *different kind* is an error (one
    name, one kind — again the Prometheus rule).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        self._kinds: Dict[str, str] = {}

    def _get(self, cls, name: str, labels: Dict[str, str]):
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {known}, "
                f"not a {cls.kind}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram registered under ``name`` + ``labels``."""
        return self._get(Histogram, name, labels)

    @pure
    def snapshot(self) -> List[dict]:
        """Every instrument as a plain dict, in sorted (stable) order."""
        return [self._metrics[key].to_record()
                for key in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"
