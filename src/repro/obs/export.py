"""Chrome-trace exporter: open a run's spans in ``chrome://tracing``.

Converts :class:`~repro.obs.trace.Span` lists into the Trace Event
Format's JSON array form (``{"traceEvents": [...]}``): every closed
span becomes one complete event (``"ph": "X"``) with microsecond
timestamps, every obs event becomes a global instant marker
(``"ph": "i"``), and logical process labels ("main", "worker-0") are
mapped to stable numeric thread ids with ``thread_name`` metadata so
the timeline groups by process.  Load the file in ``chrome://tracing``
or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Sequence

from ..runtime.checkpoint import PathLike
from .trace import Span


def chrome_trace(spans: Sequence[Span],
                 events: Iterable[dict] = ()) -> dict:
    """Build the Trace Event Format payload for ``spans`` + ``events``."""
    procs = sorted({span.proc for span in spans})
    tids: Dict[str, int] = {proc: i + 1 for i, proc in enumerate(procs)}
    trace_events: List[dict] = []
    for proc, tid in tids.items():
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": proc},
        })
    for span in spans:
        if span.end is None:
            continue
        event = {
            "name": span.name,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.seconds * 1e6,
            "pid": 1,
            "tid": tids[span.proc],
        }
        if span.attrs:
            event["args"] = {str(k): v for k, v in span.attrs.items()}
        trace_events.append(event)
    for record in events:
        trace_events.append({
            "name": record.get("message", "event"),
            "ph": "i",
            "ts": 0.0,
            "pid": 1,
            "tid": 0,
            "s": "g",
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: PathLike, spans: Sequence[Span],
                       events: Iterable[dict] = ()) -> pathlib.Path:
    """Write the Chrome-trace JSON for ``spans`` to ``path``."""
    path = pathlib.Path(path)
    payload = chrome_trace(spans, events)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path
