"""Rendering helpers behind ``repro trace`` and ``repro metrics``.

Pure text formatting over a :class:`~repro.obs.run.RunReplay`: the
flamegraph-style phase rollup (indented tree, seconds, calls, share of
the root), the fleet dashboard (counters/gauges tables, histogram
summaries) and the event tail.  Kept separate from ``repro.cli`` so
tests can assert on strings without spawning the argument parser.
"""

from __future__ import annotations

from typing import Dict, List

from ..experiments.tables import format_table
from .run import RunReplay, phase_rollup


def render_trace(replay: RunReplay, width: int = 40) -> str:
    """Flamegraph-style phase rollup of a run's spans, as text.

    One line per distinct span *path*, indented by depth, with total
    seconds, call count and percentage of the trace's root total.
    """
    rollup = phase_rollup(replay.spans)
    if not rollup:
        return "(no spans recorded)"
    roots = {path: entry for path, entry in rollup.items()
             if "/" not in path}
    total = sum(entry["seconds"] for entry in roots.values())
    lines = [f"{'span':<{width}} {'seconds':>9} {'calls':>7} {'%':>6}"]
    for path in sorted(rollup):
        entry = rollup[path]
        depth = path.count("/")
        label = ("  " * depth) + path.rsplit("/", 1)[-1]
        share = (100.0 * entry["seconds"] / total) if total > 0 else 0.0
        lines.append(f"{label:<{width}} {entry['seconds']:>9.3f} "
                     f"{int(entry['calls']):>7d} {share:>5.1f}%")
    lines.append(f"{len(replay.spans)} span(s), "
                 f"{len(replay.events)} event(s), "
                 f"root total {total:.3f}s")
    return "\n".join(lines)


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items()))


def render_metrics(replay: RunReplay) -> str:
    """Fleet dashboard: counters, gauges and histograms, as text."""
    if not replay.metrics:
        return "(no metrics snapshot in log)"
    sections: List[str] = []
    counters = [m for m in replay.metrics if m.get("kind") == "counter"]
    gauges = [m for m in replay.metrics if m.get("kind") == "gauge"]
    histograms = [m for m in replay.metrics
                  if m.get("kind") == "histogram"]
    if counters:
        rows = [[m["name"], _label_text(m.get("labels", {})),
                 f"{m['value']:g}"] for m in counters]
        sections.append(format_table(["counter", "labels", "total"],
                                     rows))
    if gauges:
        rows = [[m["name"], _label_text(m.get("labels", {})),
                 "-" if m["value"] is None else f"{m['value']:g}"]
                for m in gauges]
        sections.append(format_table(["gauge", "labels", "value"], rows))
    if histograms:
        rows = []
        for m in histograms:
            count = int(m.get("count", 0))
            mean = (m.get("total", 0.0) / count) if count else 0.0
            rows.append([m["name"], _label_text(m.get("labels", {})),
                         count, f"{m.get('total', 0.0):.3f}",
                         f"{mean * 1e3:.2f}"])
        sections.append(format_table(
            ["histogram", "labels", "count", "total_s", "mean_ms"],
            rows))
    return "\n\n".join(sections)


def render_events(replay: RunReplay, limit: int = 20) -> str:
    """The last ``limit`` narrator events of a run, one per line."""
    if not replay.events:
        return "(no events recorded)"
    tail = replay.events[-limit:]
    lines = [f"== {event['message']}" for event in tail]
    if len(replay.events) > limit:
        lines.insert(0, f"... ({len(replay.events) - limit} earlier "
                        "event(s) omitted)")
    return "\n".join(lines)
