"""Per-run telemetry: one tracer + one metrics registry + one JSONL log.

:class:`RunTelemetry` is the object the CLI (``--obs-log``), the
scheduler, the agent and the pool all share for one run.  It owns

* a :class:`~repro.obs.trace.Tracer` whose closed spans stream into the
  log as ``{"obs": "span", ...}`` records,
* a :class:`~repro.obs.metrics.MetricsRegistry` whose snapshots are
  flushed as ``{"obs": "metrics", ...}`` records (last snapshot wins on
  replay), and
* free-form ``{"obs": "event", ...}`` narrator lines.

The log is crash-safe in the journal's torn-tail sense (see
:mod:`repro.obs.jsonl`): ``repro trace`` and ``repro metrics`` render
the log of a *live or dead* run — a ``kill -9`` loses at most the final
partially-written line.  :func:`load_run` replays a log back into
spans/events/metrics; :func:`phase_rollup` folds spans into
flamegraph-style per-path totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..effects import pure
from ..runtime.checkpoint import PathLike
from ..runtime.errors import CorruptCheckpointError
from .jsonl import JsonlSink, read_jsonl
from .metrics import MetricsRegistry
from .trace import Span, Tracer

OBS_FORMAT = "poisonrec-obs-log"
OBS_VERSION = 1


class RunTelemetry:
    """Tracing + metrics + crash-safe JSONL logging for one run.

    Parameters
    ----------
    path:
        Run-log destination; ``None`` keeps everything in memory only
        (spans/metrics still accumulate for in-process rollups).
    fsync:
        Sync every record; the default flushes per record and syncs at
        :meth:`flush_metrics`/:meth:`close` (see :mod:`repro.obs.jsonl`).
    """

    def __init__(self, path: Optional[PathLike] = None,
                 fsync: bool = False) -> None:
        self._sink = JsonlSink(path, fsync=fsync) if path is not None \
            else None
        self.tracer = Tracer(sink=self._ship_span
                             if self._sink is not None else None)
        self.metrics = MetricsRegistry()
        self.events: List[dict] = []
        if self._sink is not None:
            self._sink.append({"obs": "meta", "format": OBS_FORMAT,
                               "version": OBS_VERSION})

    @property
    def path(self):
        """The run-log path (``None`` for a memory-only instance)."""
        return self._sink.path if self._sink is not None else None

    def _ship_span(self, span: Span) -> None:
        record = span.to_record()
        record["obs"] = "span"
        self._sink.append(record)

    def span(self, name: str, **attrs):
        """Open one traced span (see :meth:`.Tracer.span`)."""
        return self.tracer.span(name, **attrs)

    def event(self, message: str, **attrs) -> None:
        """Record one narrator event (restart, tier change, drain...)."""
        record = {"message": str(message)}
        if attrs:
            record["attrs"] = dict(attrs)
        self.events.append(record)
        if self._sink is not None:
            shipped = dict(record)
            shipped["obs"] = "event"
            self._sink.append(shipped)

    def flush_metrics(self) -> None:
        """Write one metrics snapshot record and sync the log."""
        if self._sink is None:
            return
        self._sink.append({"obs": "metrics",
                           "metrics": self.metrics.snapshot()})
        self._sink.sync()

    def sync(self) -> None:
        """Force the log onto disk (no-op for memory-only telemetry)."""
        if self._sink is not None:
            self._sink.sync()

    def close(self) -> None:
        """Flush a final metrics snapshot and close the log."""
        if self._sink is not None:
            self.flush_metrics()
            self._sink.close()

    def __enter__(self) -> "RunTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass
class RunReplay:
    """Everything :func:`load_run` recovers from a run log."""

    spans: List[Span] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    #: The *last* flushed metrics snapshot (records as emitted by
    #: :meth:`.MetricsRegistry.snapshot`).
    metrics: List[dict] = field(default_factory=list)
    version: int = OBS_VERSION

    @property
    @pure
    def counters(self) -> Dict[str, float]:
        """Counter totals summed across labels, keyed by metric name."""
        totals: Dict[str, float] = {}
        for record in self.metrics:
            if record.get("kind") == "counter":
                name = record["name"]
                totals[name] = totals.get(name, 0.0) + record["value"]
        return totals


def load_run(path: PathLike) -> RunReplay:
    """Replay one obs run log (live or dead) into a :class:`RunReplay`.

    Applies the torn-tail rule of :func:`~repro.obs.jsonl.read_jsonl`,
    so the log of a killed run parses; the half-written final record
    (if any) is dropped.
    """
    records = read_jsonl(path, what="obs run log", expect_key="obs")
    if not records or records[0].get("obs") != "meta":
        raise CorruptCheckpointError(
            f"{path} is not an obs run log (missing format header)")
    header = records[0]
    if (header.get("format") != OBS_FORMAT
            or header.get("version") != OBS_VERSION):
        raise CorruptCheckpointError(
            f"{path} has unsupported obs log format "
            f"{header.get('format')!r} v{header.get('version')!r}")
    replay = RunReplay(version=int(header["version"]))
    for record in records[1:]:
        kind = record["obs"]
        if kind == "span":
            replay.spans.append(Span.from_record(record))
        elif kind == "event":
            replay.events.append({"message": record.get("message", ""),
                                  "attrs": record.get("attrs", {})})
        elif kind == "metrics":
            replay.metrics = list(record.get("metrics", []))
        # Unknown record kinds are ignored for forward compatibility.
    return replay


def phase_rollup(spans: List[Span],
                 max_depth: int = 32) -> Dict[str, Dict[str, float]]:
    """Fold spans into per-path totals for flamegraph-style rendering.

    The key is the ``/``-joined name path from the root span down
    (``"train_step/query_batch/query/retrain"``); the value carries
    accumulated ``seconds`` and ``calls``.  Open spans are skipped.
    """
    by_id = {span.span_id: span for span in spans}
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        if span.end is None:
            continue
        parts = [span.name]
        cursor = span
        for _ in range(max_depth):
            if cursor.parent_id is None:
                break
            cursor = by_id.get(cursor.parent_id)
            if cursor is None:
                break
            parts.append(cursor.name)
        path = "/".join(reversed(parts))
        entry = totals.setdefault(path, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += span.seconds
        entry["calls"] += 1
    return totals
