"""Crash-safe JSONL sinks and readers shared by the journal and obs log.

One discipline, two durability modes:

* records are appended one JSON object per line, ``sort_keys`` and
  ``allow_nan=False`` (non-finite floats are sanitized to ``None`` by
  :func:`jsonable` first);
* ``fsync=True`` (the scheduler journal) syncs every line — a
  ``kill -9`` can at worst tear the final line;
* ``fsync=False`` (the high-rate obs run log) flushes every line to
  the OS and syncs only at explicit :meth:`JsonlSink.sync` points —
  flushed data survives the *process* dying (only a host power loss or
  a kill landing mid-``write`` can tear the tail).

:func:`read_jsonl` applies the journal's torn-tail rule to any such
file: a garbled or truncated *final* line is dropped (that record never
committed), while corruption anywhere earlier raises
:class:`~repro.runtime.errors.CorruptCheckpointError` — a crash
mid-append cannot produce it, so it means real damage.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Optional

from ..runtime.checkpoint import PathLike
from ..runtime.errors import CorruptCheckpointError


def jsonable(value):
    """Recursively coerce ``value`` into strict-JSON-safe primitives.

    Numpy scalars become Python ints/floats, non-finite floats become
    ``None`` (strict JSON has no NaN/Inf), mappings and sequences are
    converted element-wise, and anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") \
            else None
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


class JsonlSink:
    """Append-only JSONL writer with selectable durability.

    Parameters
    ----------
    path:
        File to append to (parent directories are created).
    fsync:
        Sync every record (journal-grade durability) instead of only
        flushing; see the module docstring for the trade-off.
    """

    def __init__(self, path: PathLike, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._handle = None

    def _ensure_open(self) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Append one record (flushed; also fsynced in journal mode)."""
        self._ensure_open()
        line = json.dumps(jsonable(record), sort_keys=True,
                          allow_nan=False)
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Sync and release the handle (appends may resume later)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_jsonl(path: PathLike, what: str = "JSONL log",
               expect_key: Optional[str] = None) -> List[dict]:
    """Parse a JSONL file, dropping at most one torn final line.

    ``what`` names the file kind in error messages; ``expect_key``
    optionally requires every record to carry that key (e.g. the
    journal's ``"event"`` discriminator).
    """
    path = pathlib.Path(path)
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: List[dict] = []
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if i == len(lines) - 1:
                break  # torn tail: the writer died mid-append
            raise CorruptCheckpointError(
                f"{what} {path} line {i + 1} is garbled ({error}); "
                f"only the final line can legally be torn"
            ) from error
        if not isinstance(record, dict) or (
                expect_key is not None and expect_key not in record):
            raise CorruptCheckpointError(
                f"{what} {path} line {i + 1} is not a valid record")
        records.append(record)
    return records
