"""Flat-array (CSR) view of interaction logs: the million-user substrate.

:class:`~repro.data.interactions.InteractionLog` stores a dict of
per-user Python lists — ideal for the splice/unsplice poison hot path,
hopeless for vectorized training at 10⁵–10⁷ users.  This module adds the
complementary representation: :class:`SparseInteractions`, an immutable
CSR snapshot holding three contiguous arrays

* ``users``    — sorted distinct user ids, shape ``(U,)``
* ``user_ptr`` — CSR row pointer, shape ``(U + 1,)``
* ``item_ids`` — clicks in click order, shape ``(nnz,)``

so ``item_ids[user_ptr[i]:user_ptr[i + 1]]`` is user ``users[i]``'s
sequence.  Every bulk read the rankers need — ``pairs()``,
``item_counts()``, last-n windows, consecutive click pairs, implicit
matrices — becomes a single vectorized pass over these arrays.

Cache-invalidation contract
---------------------------
Views are obtained through :func:`sparse_view`, which memoizes one view
per log in a module-level :class:`weakref.WeakKeyDictionary` keyed by the
log's identity.  ``InteractionLog`` bumps a monotone ``_version`` counter
in every mutator (``add``, ``splice``, ``unsplice``); a cached view is
reused only while its captured version matches, so a view can never
observe a stale log.  Two corollaries:

* repeated reads between mutations are O(1) — the arrays are built once;
* the zero-copy splice discipline ("neither log may be mutated while a
  splice is active") extends to views: mutating a *donor* log while its
  rows are spliced into another log bumps only the donor's counter, so
  callers must detach (``unsplice``) first, exactly as the splice API
  already requires.

Views are snapshots: they stay valid (and frozen in time) after the
source log mutates; only the cache entry is replaced.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Iterator, List, Tuple

import numpy as np

from ..effects import pure
from ..nn.spec import shape_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .interactions import InteractionLog


class SparseInteractions:
    """Immutable CSR snapshot of an interaction log.

    Construct via :func:`sparse_view` (cached), :meth:`from_log` (fresh)
    or :meth:`from_arrays` (validated, for generators that produce the
    array substrate directly).  The arrays must not be mutated; every
    accessor returns freshly allocated outputs.
    """

    def __init__(self, num_items: int, users: np.ndarray,
                 user_ptr: np.ndarray, item_ids: np.ndarray,
                 version: int = 0) -> None:
        self.num_items = int(num_items)
        self.users = users
        self.user_ptr = user_ptr
        self.item_ids = item_ids
        self.version = version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_log(cls, log: "InteractionLog",
                 version: int | None = None) -> "SparseInteractions":
        """Build a CSR snapshot of ``log`` (users in ascending order)."""
        sequences = log._sequences
        count = len(sequences)
        users = np.fromiter(sorted(sequences), dtype=np.int64, count=count)
        lengths = np.fromiter((len(sequences[int(u)]) for u in users),
                              dtype=np.int64, count=count)
        user_ptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths, out=user_ptr[1:])
        total = int(user_ptr[-1])
        item_ids = np.fromiter(
            (item for u in users for item in sequences[int(u)]),
            dtype=np.int64, count=total)
        if version is None:
            version = log._version
        return cls(log.num_items, users, user_ptr, item_ids, version)

    @classmethod
    def from_arrays(cls, num_items: int, users: np.ndarray,
                    user_ptr: np.ndarray,
                    item_ids: np.ndarray) -> "SparseInteractions":
        """Validated constructor for directly generated array substrates."""
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        users = np.ascontiguousarray(users, dtype=np.int64)
        user_ptr = np.ascontiguousarray(user_ptr, dtype=np.int64)
        item_ids = np.ascontiguousarray(item_ids, dtype=np.int64)
        if users.ndim != 1 or user_ptr.ndim != 1 or item_ids.ndim != 1:
            raise ValueError("users, user_ptr and item_ids must be 1-D")
        if len(user_ptr) != len(users) + 1:
            raise ValueError(
                f"user_ptr has {len(user_ptr)} entries; expected "
                f"len(users) + 1 = {len(users) + 1}")
        if len(user_ptr) and (user_ptr[0] != 0
                              or user_ptr[-1] != len(item_ids)):
            raise ValueError("user_ptr must start at 0 and end at "
                             "len(item_ids)")
        if np.any(np.diff(user_ptr) < 0):
            raise ValueError("user_ptr must be non-decreasing")
        if len(users) and (users[0] < 0 or np.any(np.diff(users) <= 0)):
            raise ValueError("users must be non-negative and strictly "
                             "increasing")
        if item_ids.size and (int(item_ids.min()) < 0
                              or int(item_ids.max()) >= num_items):
            raise ValueError(
                f"item ids outside universe [0, {num_items})")
        return cls(num_items, users, user_ptr, item_ids)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Number of distinct users in the snapshot."""
        return len(self.users)

    @property
    def num_interactions(self) -> int:
        """Total click count across all users."""
        return int(self.item_ids.size)

    @property
    def lengths(self) -> np.ndarray:
        """Per-user sequence lengths, aligned with :attr:`users`."""
        return np.diff(self.user_ptr)

    # ------------------------------------------------------------------
    # Vectorized bulk reads
    # ------------------------------------------------------------------
    @pure
    def click_users(self) -> np.ndarray:
        """The owning user id of every click, aligned with ``item_ids``."""
        return np.repeat(self.users, self.lengths)

    @pure
    def pairs(self) -> np.ndarray:
        """All (user, item) pairs as an ``(nnz, 2)`` int64 array."""
        return np.column_stack((self.click_users(), self.item_ids))

    @pure
    def item_counts(self) -> np.ndarray:
        """Per-item click counts over the whole snapshot (int64)."""
        return np.bincount(self.item_ids, minlength=self.num_items)

    @pure
    def consecutive_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Within-user consecutive click pairs as ``(prev, next)`` arrays."""
        if self.item_ids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        first = np.zeros(self.item_ids.size, dtype=bool)
        starts = self.user_ptr[:-1]
        first[starts[starts < self.item_ids.size]] = True
        nxt = np.flatnonzero(~first)
        return self.item_ids[nxt - 1], self.item_ids[nxt]

    @pure
    @shape_spec("_, _ -> ((U, W), (U, W))")
    def last_n(self, n: int,
               pad: int = -1) -> Tuple[np.ndarray, np.ndarray]:
        """Per-user trailing windows: ``(windows, mask)``, both ``(U, n)``.

        ``windows[i]`` holds the last ``n`` clicks of ``users[i]``
        right-aligned (shorter sequences are left-padded with ``pad``);
        ``mask`` marks real entries.
        """
        if n <= 0:
            raise ValueError("window size must be positive")
        starts = self.user_ptr[:-1, None]
        idx = self.user_ptr[1:, None] + np.arange(-n, 0)
        mask = idx >= starts
        if self.item_ids.size:
            safe = np.clip(idx, 0, self.item_ids.size - 1)
            windows = np.where(mask, self.item_ids[safe], pad)
        else:
            windows = np.full((self.num_users, n), pad, dtype=np.int64)
        return windows, mask

    @pure
    def sorted_pair_keys(self) -> np.ndarray:
        """Sorted ``user * num_items + item`` keys for membership tests.

        One ``np.searchsorted`` against this array answers "has user u
        clicked item i?" for whole query batches at once.
        """
        return np.sort(self.click_users() * np.int64(self.num_items)
                       + self.item_ids)

    @pure
    @shape_spec("_ -> (U, N)")
    def to_implicit_dense(self, num_users: int | None = None) -> np.ndarray:
        """Dense 0/1 user-item matrix (small scales only).

        Row index is the raw user id; users at or beyond ``num_users``
        are dropped, matching ``InteractionLog.to_implicit_matrix``.
        """
        n_users = num_users if num_users is not None else (
            int(self.users[-1]) + 1 if len(self.users) else 0)
        matrix = np.zeros((n_users, self.num_items))
        click_users = self.click_users()
        keep = click_users < n_users
        matrix[click_users[keep], self.item_ids[keep]] = 1.0
        return matrix

    @pure
    def to_implicit_csr(self, num_users: int | None = None):
        """The CSR replacement for the dense implicit matrix.

        Returns a ``scipy.sparse.csr_matrix`` of shape
        ``(num_users, num_items)`` with 1.0 at every (user, item) click
        position (duplicates collapsed), bit-equal to
        ``to_implicit_dense(...)`` under ``.toarray()`` at any scale that
        still fits densely.
        """
        from scipy import sparse as sp

        n_users = num_users if num_users is not None else (
            int(self.users[-1]) + 1 if len(self.users) else 0)
        click_users = self.click_users()
        keep = click_users < n_users
        keys = np.unique(click_users[keep] * np.int64(self.num_items)
                         + self.item_ids[keep])
        rows = keys // self.num_items
        cols = keys % self.num_items
        indptr = np.zeros(n_users + 1, dtype=np.int64)
        if n_users:
            np.cumsum(np.bincount(rows, minlength=n_users), out=indptr[1:])
        return sp.csr_matrix((np.ones(len(cols)), cols, indptr),
                             shape=(n_users, self.num_items))

    # ------------------------------------------------------------------
    # Row-object interop (duck-typed like InteractionLog)
    # ------------------------------------------------------------------
    def _row_slice(self, user: int) -> slice:
        """CSR slice of ``user``'s clicks (empty slice if unknown)."""
        i = int(np.searchsorted(self.users, user))
        if i >= len(self.users) or int(self.users[i]) != int(user):
            return slice(0, 0)
        return slice(int(self.user_ptr[i]), int(self.user_ptr[i + 1]))

    @pure
    def sequence(self, user: int) -> List[int]:
        """The click sequence of ``user`` (empty list if unknown)."""
        return self.item_ids[self._row_slice(user)].tolist()

    def __contains__(self, user: int) -> bool:
        i = int(np.searchsorted(self.users, user))
        return i < len(self.users) and int(self.users[i]) == int(user)

    def iter_sequences(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(user, sequence)`` pairs in ascending user order."""
        for i, user in enumerate(self.users):
            yield int(user), self.item_ids[
                self.user_ptr[i]:self.user_ptr[i + 1]].tolist()

    def __repr__(self) -> str:
        return (f"SparseInteractions(users={self.num_users}, "
                f"items={self.num_items}, "
                f"interactions={self.num_interactions}, "
                f"version={self.version})")


#: One cached view per live log; entries die with the log.  Keyed by log
#: identity, validated against the log's mutation counter on every read.
_VIEW_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


@pure
def sparse_view(log: "InteractionLog") -> SparseInteractions:
    """The cached CSR view of ``log``, rebuilt iff the log has mutated.

    Observationally pure: the memo lives outside the log, is keyed by
    identity, and is validated against ``log._version`` (bumped by
    ``add`` / ``splice`` / ``unsplice``), so the returned arrays always
    reflect the log's current contents.
    """
    version = log._version
    view = _VIEW_CACHE.get(log)
    if view is None or view.version != version:
        view = SparseInteractions.from_log(log, version=version)
        _VIEW_CACHE[log] = view
    return view


@pure
def as_sparse(log) -> SparseInteractions:
    """Coerce an :class:`InteractionLog` (via the cache) or pass a
    :class:`SparseInteractions` through unchanged."""
    if isinstance(log, SparseInteractions):
        return log
    return sparse_view(log)
