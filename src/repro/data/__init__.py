"""Data substrate: interaction logs, synthetic datasets, splits, popularity."""

from .interactions import Dataset, InteractionLog
from .popularity import (item_popularity, popularity_rank, top_percent_items,
                         zipf_weights)
from .sparse import SparseInteractions, as_sparse, sparse_view
from .splits import leave_one_out_split
from .synthetic import (DATASET_NAMES, PAPER_SPECS, SCALE_FACTORS, DatasetSpec,
                        generate_log, generate_sparse_log, load_dataset,
                        scaled_spec)

__all__ = [
    "Dataset", "InteractionLog",
    "SparseInteractions", "as_sparse", "sparse_view",
    "item_popularity", "popularity_rank", "top_percent_items", "zipf_weights",
    "leave_one_out_split",
    "DatasetSpec", "PAPER_SPECS", "SCALE_FACTORS", "DATASET_NAMES",
    "generate_log", "generate_sparse_log", "load_dataset", "scaled_spec",
]
