"""Leave-one-out splitting, the paper's evaluation protocol.

For each user's behaviors ``{b_1, ..., b_k}``, ``b_k`` goes to the test
set, ``b_{k-1}`` to validation, everything else to train (Section IV-A).
Users with fewer than 3 behaviors are dropped (the paper's filter).
"""

from __future__ import annotations

from .interactions import Dataset, InteractionLog


def leave_one_out_split(name: str, log: InteractionLog,
                        min_behaviors: int = 3) -> Dataset:
    """Split ``log`` into train/validation/test following the paper.

    Users whose sequences are shorter than ``min_behaviors`` are removed
    entirely, matching the paper's preprocessing.
    """
    train = InteractionLog(log.num_items)
    validation: dict[int, int] = {}
    test: dict[int, int] = {}
    for user, sequence in log.iter_sequences():
        if len(sequence) < min_behaviors:
            continue
        train.add_sequence(user, sequence[:-2])
        validation[user] = sequence[-2]
        test[user] = sequence[-1]
    return Dataset(name=name, train=train, validation=validation, test=test)
