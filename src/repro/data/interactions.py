"""Core data structures for implicit-feedback interaction logs.

The recommender systems in this reproduction consume an
:class:`InteractionLog`: an ordered sequence of item clicks per user.
Ordering matters — CoVisitation and GRU4Rec exploit consecutive behaviors,
exactly as in the paper's sequential datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..effects import mutates, pure, sanctioned_channel
from .sparse import sparse_view


class InteractionLog:
    """Ordered per-user click sequences over a fixed item universe.

    Parameters
    ----------
    num_items:
        Size of the item universe.  Items are integer ids in
        ``[0, num_items)``; this includes any appended target items.

    Bulk reads (``pairs``, ``item_counts``, ``to_implicit_matrix``) are
    served from a cached CSR view (see :mod:`repro.data.sparse`); every
    mutator bumps ``_version`` so the cache can never go stale.
    """

    def __init__(self, num_items: int) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        self.num_items = num_items
        self._sequences: Dict[int, List[int]] = {}
        #: Monotone mutation counter; the sparse-view cache key.
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @mutates("_sequences", "_version")
    def add(self, user: int, item: int) -> None:
        """Append a single click to ``user``'s sequence."""
        if not 0 <= item < self.num_items:
            raise ValueError(
                f"item {item} outside universe [0, {self.num_items})")
        self._sequences.setdefault(user, []).append(item)
        self._version += 1

    @mutates("_sequences", "_version")
    def add_sequence(self, user: int, items: Sequence[int]) -> None:
        """Append an entire click sequence for ``user``."""
        for item in items:
            self.add(user, item)

    def copy(self) -> "InteractionLog":
        """Deep copy of the log (independent sequences)."""
        clone = InteractionLog(self.num_items)
        clone._sequences = {u: list(seq) for u, seq in self._sequences.items()}
        return clone

    @mutates("_sequences", "_version")
    @sanctioned_channel
    def splice(self, other: "InteractionLog") -> None:
        """Graft ``other``'s sequences into this log without copying.

        The zero-copy complement of :meth:`merged_with` for the poison
        hot path: sequence *references* are shared, so splicing costs one
        dict insert per user instead of re-copying the whole log.  The
        users must be disjoint from this log's (poison rows belong to
        fresh attacker accounts), and neither log may be mutated while
        the splice is active; call :meth:`unsplice` to detach.
        """
        if other.num_items != self.num_items:
            raise ValueError("cannot splice logs over different "
                             "item universes")
        overlap = self._sequences.keys() & other._sequences.keys()
        if overlap:
            raise ValueError(
                f"splice requires disjoint users; {len(overlap)} user(s) "
                "appear in both logs")
        for user, sequence in other._sequences.items():
            self._sequences[user] = sequence
        self._version += 1

    @mutates("_sequences", "_version")
    @sanctioned_channel
    def unsplice(self, other: "InteractionLog") -> None:
        """Detach sequences previously grafted by :meth:`splice`."""
        for user in other._sequences:
            self._sequences.pop(user, None)
        self._version += 1

    def merged_with(self, other: "InteractionLog") -> "InteractionLog":
        """Return a new log combining both logs' sequences.

        Shared user ids have the other log's clicks appended after this
        log's clicks (injection order), matching how poison data lands in a
        live system's history log.
        """
        if other.num_items != self.num_items:
            raise ValueError("cannot merge logs over different item universes")
        merged = self.copy()
        for user, seq in other._sequences.items():
            merged.add_sequence(user, seq)
        return merged

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def users(self) -> List[int]:
        return sorted(self._sequences)

    @property
    def num_users(self) -> int:
        return len(self._sequences)

    @property
    def num_interactions(self) -> int:
        return sum(len(seq) for seq in self._sequences.values())

    def sequence(self, user: int) -> List[int]:
        """The click sequence of ``user`` (empty list if unknown)."""
        return list(self._sequences.get(user, ()))

    def __contains__(self, user: int) -> bool:
        return user in self._sequences

    def iter_sequences(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(user, sequence)`` pairs in ascending user order."""
        for user in self.users:
            yield user, self._sequences[user]

    @pure
    def pairs(self) -> np.ndarray:
        """All (user, item) pairs as an ``(n, 2)`` int array (user-sorted).

        Served from the cached CSR view: one ``np.repeat`` + column
        stack instead of a Python list-of-tuples build.
        """
        return sparse_view(self).pairs()

    @pure
    def item_counts(self) -> np.ndarray:
        """Per-item click counts (the popularity signal attackers can crawl)."""
        return sparse_view(self).item_counts()

    @pure
    def to_implicit_matrix(self, num_users: int | None = None) -> np.ndarray:
        """Dense 0/1 user-item matrix (small scales only; used by AutoRec).

        Prefer ``sparse_view(log).to_implicit_csr(...)`` at scale — this
        dense form exists for tests and tiny fixtures.
        """
        return sparse_view(self).to_implicit_dense(num_users)

    def __repr__(self) -> str:
        return (f"InteractionLog(users={self.num_users}, "
                f"items={self.num_items}, "
                f"interactions={self.num_interactions})")


@dataclass
class Dataset:
    """A named dataset with leave-one-out splits.

    ``train`` holds each user's sequence minus the final two clicks,
    ``validation`` / ``test`` hold the held-out second-to-last / last click
    per user (the paper's protocol, Section IV-A).
    """

    name: str
    train: InteractionLog
    validation: Dict[int, int] = field(default_factory=dict)
    test: Dict[int, int] = field(default_factory=dict)

    @property
    def num_items(self) -> int:
        return self.train.num_items

    @property
    def num_users(self) -> int:
        return self.train.num_users

    def statistics(self) -> Dict[str, int]:
        """Table II-style statistics over the full (pre-split) data."""
        total = (self.train.num_interactions + len(self.validation)
                 + len(self.test))
        return {
            "users": self.num_users,
            "items": self.num_items,
            "samples": total,
        }
