"""Synthetic stand-ins for the paper's four public datasets.

The paper evaluates on Steam, MovieLens-1m, Amazon Phone and Amazon
Clothing (Table II).  This environment has no network access, so we
generate statistically matched synthetic datasets instead.  The generator
reproduces the properties the attack dynamics actually depend on:

* **power-law item popularity** (Zipf exponent per dataset) — drives
  ItemPop, the Popular Attack and the BCBT-Popular tree,
* **latent user/item clusters** — gives matrix-factorization and neural
  rankers real collaborative signal to learn (and to poison),
* **sequential locality** — consecutive clicks tend to stay within an item
  neighborhood, giving CoVisitation and GRU4Rec their co-occurrence signal,
* **scale ratios** — #users/#items/#samples proportions follow Table II;
  an explicit density cap keeps MovieLens "dense" (high average item
  frequency, which is why all attacks get RecNum=0 on ItemPop there).

Each dataset is produced at a configurable ``scale`` so tests and CI-level
benchmarks finish in seconds while ``paper`` scale matches Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from .interactions import Dataset, InteractionLog
from .popularity import zipf_weights
from .splits import leave_one_out_split


@dataclass(frozen=True)
class DatasetSpec:
    """Generator parameters for one synthetic dataset."""

    name: str
    num_users: int
    num_items: int
    num_samples: int
    zipf_exponent: float = 1.0
    num_clusters: int = 12
    cluster_affinity: float = 0.7
    sequence_locality: float = 0.5
    min_sequence_length: int = 3

    def mean_sequence_length(self) -> float:
        """Average clicks per user implied by the spec."""
        return self.num_samples / max(self.num_users, 1)


#: Table II statistics of the original datasets.  The synthetic generators
#: target these user/item/sample counts (scaled by ``scale``).
PAPER_SPECS: Dict[str, DatasetSpec] = {
    "steam": DatasetSpec(
        name="steam", num_users=6506, num_items=5134, num_samples=180721,
        zipf_exponent=1.05, num_clusters=16, cluster_affinity=0.65,
        sequence_locality=0.55),
    "movielens": DatasetSpec(
        name="movielens", num_users=5999, num_items=3706, num_samples=943317,
        zipf_exponent=0.85, num_clusters=18, cluster_affinity=0.6,
        sequence_locality=0.4),
    "phone": DatasetSpec(
        name="phone", num_users=27879, num_items=10429, num_samples=166560,
        zipf_exponent=1.1, num_clusters=20, cluster_affinity=0.7,
        sequence_locality=0.5),
    "clothing": DatasetSpec(
        name="clothing", num_users=39387, num_items=23033, num_samples=239290,
        zipf_exponent=1.15, num_clusters=24, cluster_affinity=0.7,
        sequence_locality=0.5),
}

#: Scale presets.  "ci" keeps every dataset small enough that the full RL
#: loop (which retrains a ranker per sampled trajectory batch) runs in
#: seconds; "paper" reproduces Table II sizes.
SCALE_FACTORS: Dict[str, float] = {
    "ci": 0.02,
    "small": 0.08,
    "paper": 1.0,
}

DATASET_NAMES = tuple(PAPER_SPECS)


def scaled_spec(spec: DatasetSpec, scale: float) -> DatasetSpec:
    """Shrink a spec by ``scale`` while keeping it generate-able.

    Interaction counts shrink slightly *super*-linearly (``scale**1.25``):
    with a 50x smaller catalog, keeping per-item click counts unchanged
    would make the top-10 promotion cutoff (the click count a target must
    beat among 92 random candidates) far harder than at paper scale, where
    most sampled candidates come from the Zipf tail.  The extra damping
    keeps the *relative* difficulty of item promotion comparable.  The mean
    sequence length is additionally capped at half the item count so the
    dense MovieLens stand-in stays dense but not degenerate.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    users = max(30, int(round(spec.num_users * scale)))
    items = max(40, int(round(spec.num_items * scale)))
    samples = max(users * spec.min_sequence_length,
                  int(round(spec.num_samples * scale ** 1.25)))
    max_mean_len = max(spec.min_sequence_length + 1, items // 2)
    if samples / users > max_mean_len:
        samples = users * max_mean_len
    clusters = max(4, min(spec.num_clusters, items // 8))
    return replace(spec, num_users=users, num_items=items,
                   num_samples=samples, num_clusters=clusters)


def _resolve_scale(scale: str | float) -> float:
    if isinstance(scale, str):
        try:
            return SCALE_FACTORS[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale preset {scale!r}; "
                f"expected one of {sorted(SCALE_FACTORS)}") from None
    return float(scale)


def generate_log(spec: DatasetSpec, seed: int = 0) -> InteractionLog:
    """Generate a full interaction log for ``spec``.

    Users draw a sequence length (lognormal around the spec's mean, floored
    at ``min_sequence_length``), then click items from a mixture of a
    global Zipf distribution, their own cluster's distribution, and — with
    probability ``sequence_locality`` — the previous item's cluster.
    """
    rng = np.random.default_rng(seed)
    num_items = spec.num_items

    # Popularity: Zipf weights assigned to items in a random order so item
    # id carries no popularity information.
    ranks = rng.permutation(num_items)
    global_weights = np.empty(num_items)
    global_weights[ranks] = zipf_weights(num_items, spec.zipf_exponent)

    # Clusters: items partitioned (roughly popularity-mixed) into clusters.
    item_cluster = rng.integers(0, spec.num_clusters, size=num_items)
    cluster_weights = []
    for cluster in range(spec.num_clusters):
        members = np.flatnonzero(item_cluster == cluster)
        if members.size == 0:
            # Guarantee every cluster is samplable.
            members = np.array([int(rng.integers(num_items))])
        weights = global_weights[members]
        cluster_weights.append((members, weights / weights.sum()))

    mean_len = spec.mean_sequence_length()
    sigma = 0.6
    mu = np.log(max(mean_len, spec.min_sequence_length)) - sigma ** 2 / 2

    log = InteractionLog(num_items)
    for user in range(spec.num_users):
        length = max(spec.min_sequence_length,
                     int(round(rng.lognormal(mu, sigma))))
        length = min(length, max(spec.min_sequence_length, num_items - 1))
        user_cluster = int(rng.integers(spec.num_clusters))
        sequence: list[int] = []
        previous = -1
        for _ in range(length):
            roll = rng.random()
            if previous >= 0 and roll < spec.sequence_locality:
                members, weights = cluster_weights[item_cluster[previous]]
            elif roll < spec.sequence_locality + spec.cluster_affinity * (
                    1.0 - spec.sequence_locality):
                members, weights = cluster_weights[user_cluster]
            else:
                members, weights = np.arange(num_items), global_weights
            item = int(rng.choice(members, p=weights))
            if item == previous and num_items > 1:
                item = int(rng.choice(members, p=weights))
            sequence.append(item)
            previous = item
        log.add_sequence(user, sequence)
    return log


def load_dataset(name: str, scale: str | float = "ci",
                 seed: int = 0) -> Dataset:
    """Generate a named synthetic dataset with leave-one-out splits.

    Parameters
    ----------
    name:
        One of ``steam``, ``movielens``, ``phone``, ``clothing``.
    scale:
        A preset (``"ci"``, ``"small"``, ``"paper"``) or an explicit float
        factor applied to the Table II sizes.
    seed:
        Generator seed; the same (name, scale, seed) triple always yields
        the same dataset.
    """
    if name not in PAPER_SPECS:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    factor = _resolve_scale(scale)
    spec = scaled_spec(PAPER_SPECS[name], factor)
    log = generate_log(spec, seed=seed)
    return leave_one_out_split(spec.name, log)
