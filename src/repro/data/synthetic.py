"""Synthetic stand-ins for the paper's four public datasets.

The paper evaluates on Steam, MovieLens-1m, Amazon Phone and Amazon
Clothing (Table II).  This environment has no network access, so we
generate statistically matched synthetic datasets instead.  The generator
reproduces the properties the attack dynamics actually depend on:

* **power-law item popularity** (Zipf exponent per dataset) — drives
  ItemPop, the Popular Attack and the BCBT-Popular tree,
* **latent user/item clusters** — gives matrix-factorization and neural
  rankers real collaborative signal to learn (and to poison),
* **sequential locality** — consecutive clicks tend to stay within an item
  neighborhood, giving CoVisitation and GRU4Rec their co-occurrence signal,
* **scale ratios** — #users/#items/#samples proportions follow Table II;
  an explicit density cap keeps MovieLens "dense" (high average item
  frequency, which is why all attacks get RecNum=0 on ItemPop there).

Each dataset is produced at a configurable ``scale`` so tests and CI-level
benchmarks finish in seconds while ``paper`` scale matches Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from .interactions import Dataset, InteractionLog
from .popularity import zipf_weights
from .sparse import SparseInteractions
from .splits import leave_one_out_split


@dataclass(frozen=True)
class DatasetSpec:
    """Generator parameters for one synthetic dataset."""

    name: str
    num_users: int
    num_items: int
    num_samples: int
    zipf_exponent: float = 1.0
    num_clusters: int = 12
    cluster_affinity: float = 0.7
    sequence_locality: float = 0.5
    min_sequence_length: int = 3

    def mean_sequence_length(self) -> float:
        """Average clicks per user implied by the spec."""
        return self.num_samples / max(self.num_users, 1)


#: Table II statistics of the original datasets.  The synthetic generators
#: target these user/item/sample counts (scaled by ``scale``).
PAPER_SPECS: Dict[str, DatasetSpec] = {
    "steam": DatasetSpec(
        name="steam", num_users=6506, num_items=5134, num_samples=180721,
        zipf_exponent=1.05, num_clusters=16, cluster_affinity=0.65,
        sequence_locality=0.55),
    "movielens": DatasetSpec(
        name="movielens", num_users=5999, num_items=3706, num_samples=943317,
        zipf_exponent=0.85, num_clusters=18, cluster_affinity=0.6,
        sequence_locality=0.4),
    "phone": DatasetSpec(
        name="phone", num_users=27879, num_items=10429, num_samples=166560,
        zipf_exponent=1.1, num_clusters=20, cluster_affinity=0.7,
        sequence_locality=0.5),
    "clothing": DatasetSpec(
        name="clothing", num_users=39387, num_items=23033, num_samples=239290,
        zipf_exponent=1.15, num_clusters=24, cluster_affinity=0.7,
        sequence_locality=0.5),
}

#: Scale presets.  "ci" keeps every dataset small enough that the full RL
#: loop (which retrains a ranker per sampled trajectory batch) runs in
#: seconds; "paper" reproduces Table II sizes.
SCALE_FACTORS: Dict[str, float] = {
    "ci": 0.02,
    "small": 0.08,
    "paper": 1.0,
}

DATASET_NAMES = tuple(PAPER_SPECS)


def scaled_spec(spec: DatasetSpec, scale: float) -> DatasetSpec:
    """Shrink a spec by ``scale`` while keeping it generate-able.

    Interaction counts shrink slightly *super*-linearly (``scale**1.25``):
    with a 50x smaller catalog, keeping per-item click counts unchanged
    would make the top-10 promotion cutoff (the click count a target must
    beat among 92 random candidates) far harder than at paper scale, where
    most sampled candidates come from the Zipf tail.  The extra damping
    keeps the *relative* difficulty of item promotion comparable.  The mean
    sequence length is additionally capped at half the item count so the
    dense MovieLens stand-in stays dense but not degenerate.

    Scales above 1.0 (the :func:`generate_sparse_log` scale-up path)
    grow samples linearly instead: the super-linear damping exists to
    keep *shrunken* catalogs attackable, and ``scale ** 1.25`` would
    blow the click budget up at 10⁵–10⁷ users.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    users = max(30, int(round(spec.num_users * scale)))
    items = max(40, int(round(spec.num_items * scale)))
    exponent = 1.25 if scale < 1.0 else 1.0
    samples = max(users * spec.min_sequence_length,
                  int(round(spec.num_samples * scale ** exponent)))
    max_mean_len = max(spec.min_sequence_length + 1, items // 2)
    if samples / users > max_mean_len:
        samples = users * max_mean_len
    clusters = max(4, min(spec.num_clusters, items // 8))
    return replace(spec, num_users=users, num_items=items,
                   num_samples=samples, num_clusters=clusters)


def _resolve_scale(scale: str | float) -> float:
    if isinstance(scale, str):
        try:
            return SCALE_FACTORS[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale preset {scale!r}; "
                f"expected one of {sorted(SCALE_FACTORS)}") from None
    return float(scale)


def generate_log(spec: DatasetSpec, seed: int = 0) -> InteractionLog:
    """Generate a full interaction log for ``spec``.

    Users draw a sequence length (lognormal around the spec's mean, floored
    at ``min_sequence_length``), then click items from a mixture of a
    global Zipf distribution, their own cluster's distribution, and — with
    probability ``sequence_locality`` — the previous item's cluster.
    """
    rng = np.random.default_rng(seed)
    num_items = spec.num_items

    # Popularity: Zipf weights assigned to items in a random order so item
    # id carries no popularity information.
    ranks = rng.permutation(num_items)
    global_weights = np.empty(num_items)
    global_weights[ranks] = zipf_weights(num_items, spec.zipf_exponent)

    # Clusters: items partitioned (roughly popularity-mixed) into clusters.
    item_cluster = rng.integers(0, spec.num_clusters, size=num_items)
    cluster_weights = []
    for cluster in range(spec.num_clusters):
        members = np.flatnonzero(item_cluster == cluster)
        if members.size == 0:
            # Guarantee every cluster is samplable.
            members = np.array([int(rng.integers(num_items))])
        weights = global_weights[members]
        cluster_weights.append((members, weights / weights.sum()))

    mean_len = spec.mean_sequence_length()
    sigma = 0.6
    mu = np.log(max(mean_len, spec.min_sequence_length)) - sigma ** 2 / 2

    log = InteractionLog(num_items)
    for user in range(spec.num_users):
        length = max(spec.min_sequence_length,
                     int(round(rng.lognormal(mu, sigma))))
        length = min(length, max(spec.min_sequence_length, num_items - 1))
        user_cluster = int(rng.integers(spec.num_clusters))
        sequence: list[int] = []
        previous = -1
        for _ in range(length):
            roll = rng.random()
            if previous >= 0 and roll < spec.sequence_locality:
                members, weights = cluster_weights[item_cluster[previous]]
            elif roll < spec.sequence_locality + spec.cluster_affinity * (
                    1.0 - spec.sequence_locality):
                members, weights = cluster_weights[user_cluster]
            else:
                members, weights = np.arange(num_items), global_weights
            item = int(rng.choice(members, p=weights))
            if item == previous and num_items > 1:
                item = int(rng.choice(members, p=weights))
            sequence.append(item)
            previous = item
        log.add_sequence(user, sequence)
    return log


def _cluster_tables(rng: np.random.Generator, global_weights: np.ndarray,
                    item_cluster: np.ndarray, num_clusters: int) -> tuple:
    """Flat per-cluster sampling tables for one-searchsorted draws.

    Returns ``(seg_items, flat_cdf)`` where cluster ``c`` occupies one
    contiguous segment of ``seg_items`` and ``flat_cdf[j] = c +
    cdf_within_segment(j)`` is globally monotone, so drawing an item
    from cluster ``c`` with uniform ``u`` is
    ``seg_items[searchsorted(flat_cdf, c + u, side="right")]``.
    """
    num_items = len(global_weights)
    parts = []
    for cluster in range(num_clusters):
        members = np.flatnonzero(item_cluster == cluster)
        if members.size == 0:
            # Guarantee every cluster is samplable (as in generate_log).
            members = rng.integers(num_items, size=1)
        parts.append(members)
    seg_len = np.fromiter((len(p) for p in parts), dtype=np.int64,
                          count=num_clusters)
    seg_ptr = np.zeros(num_clusters + 1, dtype=np.int64)
    np.cumsum(seg_len, out=seg_ptr[1:])
    seg_items = np.concatenate(parts)
    weights = global_weights[seg_items]
    seg_sums = np.add.reduceat(weights, seg_ptr[:-1])
    norm = weights / np.repeat(seg_sums, seg_len)
    cumulative = np.cumsum(norm)
    base = np.zeros(num_clusters)
    base[1:] = cumulative[seg_ptr[1:-1] - 1]
    flat_cdf = cumulative - np.repeat(base, seg_len)
    flat_cdf[seg_ptr[1:] - 1] = 1.0  # exact segment tops
    flat_cdf += np.repeat(np.arange(num_clusters, dtype=np.float64), seg_len)
    return seg_items, flat_cdf


def generate_sparse_log(spec: DatasetSpec | str, seed: int = 0,
                        num_users: int | None = None) -> SparseInteractions:
    """Generate a statistically matched log directly into the array substrate.

    The vectorized counterpart of :func:`generate_log` for the 10⁵–10⁷
    user regime: no per-user Python lists are ever materialized — lengths,
    branch choices and item draws are whole-log array operations, and the
    result is a :class:`~repro.data.sparse.SparseInteractions` CSR
    snapshot (users ``0..U-1``).  It reproduces the same statistical
    structure as the serial generator — Zipf popularity over permuted
    ids, latent item/user clusters, sequential locality via
    previous-item cluster chains, the lognormal length distribution and
    the single immediate-repeat redraw — but draws from the RNG in
    batched order, so the two generators are *distribution*-matched, not
    bit-matched, at a given seed.  (Locality chains carry the chain
    anchor's cluster, which equals the previous item's cluster except
    for the rare fallback member of an otherwise empty cluster and for
    post-redraw anchors.)

    Parameters
    ----------
    spec:
        A :class:`DatasetSpec` or a named paper spec (``"steam"``, ...).
    seed:
        Generator seed; same ``(spec, seed, num_users)`` → same arrays.
    num_users:
        Optional scale knob: rescales the spec (via :func:`scaled_spec`)
        so the log has approximately this many users, with samples and
        catalog growing proportionally.
    """
    if isinstance(spec, str):
        if spec not in PAPER_SPECS:
            raise ValueError(
                f"unknown dataset {spec!r}; expected one of {DATASET_NAMES}")
        spec = PAPER_SPECS[spec]
    if num_users is not None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        spec = scaled_spec(spec, num_users / max(spec.num_users, 1))
    rng = np.random.default_rng(seed)
    num_items, num_clusters = spec.num_items, spec.num_clusters
    users = spec.num_users

    ranks = rng.permutation(num_items)
    global_weights = np.empty(num_items)
    global_weights[ranks] = zipf_weights(num_items, spec.zipf_exponent)
    global_cdf = np.cumsum(global_weights)
    global_cdf[-1] = 1.0

    item_cluster = rng.integers(0, num_clusters, size=num_items)
    seg_items, flat_cdf = _cluster_tables(rng, global_weights, item_cluster,
                                          num_clusters)

    mean_len = spec.mean_sequence_length()
    sigma = 0.6
    mu = np.log(max(mean_len, spec.min_sequence_length)) - sigma ** 2 / 2
    lengths = np.round(rng.lognormal(mu, sigma, size=users)).astype(np.int64)
    np.maximum(lengths, spec.min_sequence_length, out=lengths)
    np.minimum(lengths, max(spec.min_sequence_length, num_items - 1),
               out=lengths)
    user_ptr = np.zeros(users + 1, dtype=np.int64)
    np.cumsum(lengths, out=user_ptr[1:])
    total = int(user_ptr[-1])

    # Per-click branch choice, mirroring the serial mixture exactly:
    # locality needs a previous click, first clicks fall through to the
    # user-cluster branch when their roll lands below the locality cut.
    position = np.arange(total)
    is_first = position == np.repeat(user_ptr[:-1], lengths)
    roll = rng.random(total)
    locality_cut = spec.sequence_locality
    affinity_cut = locality_cut + spec.cluster_affinity * (1.0 - locality_cut)
    locality = (roll < locality_cut) & ~is_first
    from_cluster = ~locality & (roll < affinity_cut)
    from_global = ~locality & ~from_cluster

    items = np.empty(total, dtype=np.int64)
    g = np.flatnonzero(from_global)
    items[g] = np.searchsorted(global_cdf, rng.random(g.size), side="right")

    # Anchor cluster per click: user cluster for affinity draws, the
    # drawn item's cluster for global draws; locality clicks forward-fill
    # the nearest earlier anchor (every user segment starts on one).
    click_cluster = np.where(
        from_cluster, np.repeat(rng.integers(0, num_clusters, size=users),
                                lengths), 0)
    click_cluster[g] = item_cluster[items[g]]
    anchor_at = np.where(locality, -1, position)
    click_cluster = click_cluster[np.maximum.accumulate(anchor_at)]

    clustered = np.flatnonzero(~from_global)
    draw = click_cluster[clustered] + rng.random(clustered.size)
    items[clustered] = seg_items[np.searchsorted(flat_cdf, draw,
                                                 side="right")]

    if num_items > 1:
        # Single immediate-repeat redraw, as in the serial generator.
        previous = np.empty(total, dtype=np.int64)
        previous[0] = -1
        previous[1:] = items[:-1]
        previous[is_first] = -1
        repeat = np.flatnonzero(items == previous)
        if repeat.size:
            rep_global = repeat[from_global[repeat]]
            items[rep_global] = np.searchsorted(
                global_cdf, rng.random(rep_global.size), side="right")
            rep_cluster = repeat[~from_global[repeat]]
            draw = click_cluster[rep_cluster] + rng.random(rep_cluster.size)
            items[rep_cluster] = seg_items[np.searchsorted(flat_cdf, draw,
                                                           side="right")]

    return SparseInteractions.from_arrays(
        num_items, np.arange(users, dtype=np.int64), user_ptr, items)


def load_dataset(name: str, scale: str | float = "ci",
                 seed: int = 0) -> Dataset:
    """Generate a named synthetic dataset with leave-one-out splits.

    Parameters
    ----------
    name:
        One of ``steam``, ``movielens``, ``phone``, ``clothing``.
    scale:
        A preset (``"ci"``, ``"small"``, ``"paper"``) or an explicit float
        factor applied to the Table II sizes.
    seed:
        Generator seed; the same (name, scale, seed) triple always yields
        the same dataset.
    """
    if name not in PAPER_SPECS:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    factor = _resolve_scale(scale)
    spec = scaled_spec(PAPER_SPECS[name], factor)
    log = generate_log(spec, seed=seed)
    return leave_one_out_split(spec.name, log)
