"""Item-popularity utilities.

Popularity is the one piece of background knowledge the paper grants
attackers ("attackers can only crawl basic item information like ... item
popularity").  Both the heuristic baselines and the BCBT construction
consume the arrays produced here.
"""

from __future__ import annotations

import numpy as np

from .interactions import InteractionLog


def item_popularity(log: InteractionLog) -> np.ndarray:
    """Click counts per item over the entire log."""
    return log.item_counts()


def popularity_rank(popularity: np.ndarray) -> np.ndarray:
    """Item ids sorted by descending popularity (ties broken by id)."""
    popularity = np.asarray(popularity)
    # argsort on (-pop, id): stable sort on id then stable sort on -pop.
    order = np.argsort(popularity, kind="stable")[::-1]
    # Reverse of a stable ascending sort breaks ties by descending id;
    # re-sort ties ascending for determinism.
    result = []
    i = 0
    while i < len(order):
        j = i
        value = popularity[order[i]]
        while j < len(order) and popularity[order[j]] == value:
            j += 1
        result.extend(sorted(order[i:j].tolist()))
        i = j
    return np.asarray(result, dtype=np.int64)


def top_percent_items(popularity: np.ndarray, percent: float) -> np.ndarray:
    """Ids of the most popular ``percent``% of items (at least one item).

    The paper's Popular Attack uses the top k% (k=10) as the popular set
    ``I_p``.
    """
    if not 0.0 < percent <= 100.0:
        raise ValueError("percent must be in (0, 100]")
    ranked = popularity_rank(popularity)
    count = max(1, int(round(len(ranked) * percent / 100.0)))
    return ranked[:count]


def zipf_weights(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf distribution over ``num_items`` ranks."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()
