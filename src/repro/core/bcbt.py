"""Biased Complete Binary Tree (BCBT) — the paper's action-space optimization.

The BCBT reformulates item sampling (Section III-E):

* **Priori knowledge** — the root first chooses between the target-item
  subtree and the original-item subtree, giving targets ~0.5 sampling
  probability at initialization instead of ``|I_t| / (|I| + |I_t|)``.
* **Hierarchical structure** — each subtree is a complete binary tree whose
  leaves are real items; sampling walks root-to-leaf in ``O(log |I|)``
  two-way decisions instead of one ``O(|I|)`` softmax.
* **Assumption 1** — leaves are assigned items *sorted by popularity* so
  that items with close popularity share more ancestors (BCBT-Popular);
  BCBT-Random shuffles the assignment to test the assumption.

Node ids double as feature-table rows: leaf node ids are the item ids
themselves (``[0, num_items)``); internal node ids are
``num_items + j``.  The policy's feature table therefore holds item
embeddings first and internal-node embeddings after them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class TreeArrays:
    """Flat representation of the BCBT.

    ``left_child`` / ``right_child`` are indexed by *internal index* ``j``
    (the node id is ``num_items + j``) and hold child node ids.
    """

    num_items: int
    root: int
    left_child: np.ndarray
    right_child: np.ndarray

    @property
    def num_internal(self) -> int:
        return len(self.left_child)

    def is_leaf(self, node_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which node ids are leaves (real items)."""
        return np.asarray(node_ids) < self.num_items

    def children(self, node_ids: np.ndarray) -> tuple:
        """``(left, right)`` child node ids of internal ``node_ids``."""
        internal = np.asarray(node_ids) - self.num_items
        return self.left_child[internal], self.right_child[internal]

    def max_depth(self) -> int:
        """Length of the longest root-to-leaf path (number of decisions)."""
        depth = 0
        frontier = [self.root]
        while frontier:
            if all(node < self.num_items for node in frontier):
                break
            depth += 1
            next_frontier: List[int] = []
            for node in frontier:
                if node >= self.num_items:
                    j = node - self.num_items
                    next_frontier.append(int(self.left_child[j]))
                    next_frontier.append(int(self.right_child[j]))
            frontier = next_frontier
        return depth

    def leaves_in_order(self) -> List[int]:
        """Leaf item ids in left-to-right (in-order DFS) order."""
        order: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node < self.num_items:
                order.append(int(node))
            else:
                j = node - self.num_items
                stack.append(int(self.right_child[j]))
                stack.append(int(self.left_child[j]))
        return order


class _TreeBuilder:
    """Accumulates internal nodes while composing subtrees."""

    def __init__(self, num_items: int) -> None:
        self.num_items = num_items
        self.left: List[int] = []
        self.right: List[int] = []

    def internal(self, left: int, right: int) -> int:
        node_id = self.num_items + len(self.left)
        self.left.append(left)
        self.right.append(right)
        return node_id

    def complete_tree(self, items: Sequence[int]) -> int:
        """Build a complete binary tree over ``items``; returns its root id.

        The shape is the heap shape over ``2n - 1`` local nodes (all layers
        full except the last, which is left-aligned) — every internal node
        has exactly two children and the ``n`` childless nodes are the
        leaves.  Items are assigned to leaves in the tree's left-to-right
        (in-order) spatial order, so consecutive items share the most
        ancestors — the property Assumption 1 relies on.
        """
        n = len(items)
        if n == 0:
            raise ValueError("cannot build a tree over zero items")
        if n == 1:
            return int(items[0])
        size = 2 * n - 1  # heap-shaped: local internal 0..n-2, leaves n-1..

        # In-order traversal collects leaf local-indices left-to-right.
        leaf_order: List[int] = []
        stack: List[int] = []
        current: int | None = 0
        while stack or current is not None:
            while current is not None:
                stack.append(current)
                left = 2 * current + 1
                current = left if left < size else None
            current = stack.pop()
            if 2 * current + 1 >= size:
                leaf_order.append(current)
            right = 2 * current + 2
            current = right if right < size else None

        item_of_leaf = {local: int(items[pos])
                        for pos, local in enumerate(leaf_order)}
        # Materialize internal nodes bottom-up so children exist first.
        node_id: dict[int, int] = dict(item_of_leaf)
        for local in range(n - 2, -1, -1):
            node_id[local] = self.internal(node_id[2 * local + 1],
                                           node_id[2 * local + 2])
        return node_id[0]


def _sorted_by_popularity(items: np.ndarray,
                          popularity: np.ndarray) -> np.ndarray:
    """Items sorted by descending popularity (ties by id, deterministic)."""
    items = np.asarray(items, dtype=np.int64)
    order = np.lexsort((items, -popularity[items]))
    return items[order]


def build_bcbt(num_original_items: int, target_items: np.ndarray,
               popularity: np.ndarray, assignment: str = "popular",
               rng: np.random.Generator | None = None) -> TreeArrays:
    """Construct the merged BCBT (Section III-E1).

    Parameters
    ----------
    num_original_items:
        ``|I|`` — originals occupy item ids ``[0, num_original_items)``.
    target_items:
        The target item ids ``I_t`` (typically appended after originals).
    popularity:
        Crawled click counts over the whole item universe; drives the
        leaf assignment under Assumption 1.
    assignment:
        ``"popular"`` (sorted leaves, the paper's BCBT-Popular) or
        ``"random"`` (shuffled leaves, the ablation BCBT-Random).
    """
    target_items = np.asarray(target_items, dtype=np.int64)
    originals = np.setdiff1d(np.arange(num_original_items + len(target_items),
                                       dtype=np.int64), target_items)
    num_items = num_original_items + len(target_items)

    if assignment == "popular":
        original_leaves = _sorted_by_popularity(originals, popularity)
        target_leaves = _sorted_by_popularity(target_items, popularity)
    elif assignment == "random":
        if rng is None:
            rng = np.random.default_rng(0)
        original_leaves = rng.permutation(originals)
        target_leaves = rng.permutation(target_items)
    else:
        raise ValueError(
            f"unknown assignment {assignment!r}; use 'popular' or 'random'")

    builder = _TreeBuilder(num_items)
    target_root = builder.complete_tree(list(target_leaves))
    original_root = builder.complete_tree(list(original_leaves))
    # Priori knowledge: the new root puts I_t and I side by side, biasing
    # target sampling probability to ~0.5 at initialization.
    root = builder.internal(target_root, original_root)
    return TreeArrays(num_items=num_items, root=root,
                      left_child=np.asarray(builder.left, dtype=np.int64),
                      right_child=np.asarray(builder.right, dtype=np.int64))
