"""The PoisonRec attack agent — Algorithm 1 of the paper.

Ties together the black-box environment, the policy network, an action
space and the PPO trainer.  Each training step samples ``M`` examples
(each example = N complete trajectories injected into the system for one
RecNum observation), then runs ``K`` PPO epochs over mini-batches of
``B`` examples with normalized rewards.

Long campaigns are resilient: :meth:`PoisonRec.train` accepts a
:class:`~repro.runtime.resilience.ResilienceConfig` that wraps every
environment query in retry/backoff, quarantines samples whose retries
are exhausted (the PPO batch proceeds with the survivors), persists
crash-safe checkpoints every K steps, and rolls back to the last good
checkpoint with a lowered learning rate when the divergence watchdog
fires.  ``train(resume_from=...)`` continues an interrupted campaign
bit-identically — same seed, same trajectory as an uninterrupted run.

Each step samples all ``M`` rollouts up front and then observes their
rewards as one batch, so the queries can be fanned out over a
:class:`~repro.perf.pool.QueryPool` of forked system replicas without
changing a single observed number (see :mod:`repro.perf`).

Attaching a :class:`~repro.obs.run.RunTelemetry` to :attr:`PoisonRec.obs`
traces the hot path (``train_step`` → ``sample`` / ``query_batch`` /
``ppo_update``, with per-query phase spans reconstructed from the
timings each :class:`~repro.perf.pool.QueryOutcome` carries — pooled or
serial) and counts queries/retries/quarantines in the metrics registry.
Tracing reads the monotonic clock only, so an instrumented campaign's
``TrainResult.history`` is bit-identical to the untraced run.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..effects import sanctioned_channel
from ..nn.anomaly import AnomalyError, detect_anomaly
from ..perf.pool import QueryOutcome, QueryPool
from ..perf.profile import PhaseDelta, find_profiler
from ..recsys.system import BlackBoxEnvironment
from ..runtime.checkpoint import PathLike, load_campaign, save_campaign
from ..runtime.errors import (CampaignDivergenceError, CorruptRewardError,
                              RetriesExhaustedError)
from ..runtime.resilience import CampaignState, ResilienceConfig
from ..runtime.retry import call_with_retry
from ..runtime.watchdog import RunningMoments
from .action_space import ActionSpace, make_action_space
from .config import PoisonRecConfig
from .policy import PolicyNetwork, Rollout
from .ppo import Experience, PPOTrainer


@dataclass
class StepStats:
    """Per-training-step telemetry."""

    step: int
    mean_reward: float
    max_reward: float
    losses: List[float]
    #: Transient environment failures retried away during this step.
    retries: int = 0
    #: Samples dropped after exhausting their retry attempts.
    quarantined: int = 0
    #: Cumulative divergence rollbacks in the campaign so far.
    rollbacks: int = 0


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: List[StepStats] = field(default_factory=list)
    best_reward: float = float("-inf")
    best_trajectories: Optional[List[List[int]]] = None

    @property
    def mean_rewards(self) -> List[float]:
        return [s.mean_reward for s in self.history]

    @property
    def max_rewards(self) -> List[float]:
        return [s.max_reward for s in self.history]


class PoisonRec:
    """Adaptive data-poisoning attack agent (the paper's framework).

    Parameters
    ----------
    env:
        The black-box recommender environment to attack (or any wrapper
        with the same surface, e.g.
        :class:`~repro.runtime.faults.FaultyEnvironment`).
    config:
        Algorithm and network hyper-parameters.
    action_space:
        ``"plain"``, ``"bplain"``, ``"bcbt-popular"`` (default, the
        paper's full method) or ``"bcbt-random"``; alternatively an
        already-built :class:`ActionSpace`.
    query_pool:
        Optional :class:`~repro.perf.pool.QueryPool` to fan each step's
        ``M`` reward queries out over worker processes.  Thanks to the
        pool's exact-equivalence guarantee the campaign's history is
        bit-identical to the serial run on the same seed; the pool is
        a pure wall-clock optimization.
    obs:
        Optional :class:`~repro.obs.run.RunTelemetry` tracing the
        training hot path and counting queries/retries/quarantines.
        Purely observational: enabling it leaves the campaign history
        bit-identical.
    """

    def __init__(self, env: BlackBoxEnvironment,
                 config: Optional[PoisonRecConfig] = None,
                 action_space: str | ActionSpace = "bcbt-popular",
                 query_pool: Optional[QueryPool] = None,
                 obs=None) -> None:
        self.env = env
        self.query_pool = query_pool
        self.config = config or PoisonRecConfig()
        #: Labels stamped on this agent's spans and metrics (the
        #: scheduler sets ``{"campaign": name}`` so fleet traces are
        #: attributable per campaign).
        self.obs_attrs: Dict[str, str] = {}
        self._obs = obs
        if isinstance(action_space, str):
            action_space = make_action_space(
                action_space, env.num_original_items, env.target_items,
                env.item_popularity, seed=self.config.seed)
        self.action_space = action_space
        self.policy = PolicyNetwork(action_space,
                                    self.config.num_attackers,
                                    dim=self.config.embedding_dim,
                                    seed=self.config.seed)
        self.trainer = PPOTrainer(self.policy,
                                  learning_rate=self.config.learning_rate,
                                  clip_epsilon=self.config.clip_epsilon,
                                  grad_clip=self.config.grad_clip,
                                  seed=self.config.seed + 1)
        self.rng = np.random.default_rng(self.config.seed + 2)
        self.result = TrainResult()
        self.reward_moments = RunningMoments()
        self._step = 0
        self.trainer.tracer = obs.tracer if obs is not None else None

    # ------------------------------------------------------------------
    @property
    def step(self) -> int:
        """Completed training steps (continues across checkpoint resumes)."""
        return self._step

    @property
    def obs(self):
        """The attached :class:`~repro.obs.run.RunTelemetry` (or None)."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        self.trainer.tracer = value.tracer if value is not None else None

    def _span(self, name: str, **attrs):
        """A traced span carrying :attr:`obs_attrs`, or a no-op context."""
        if self._obs is None:
            return nullcontext()
        return self._obs.span(name, **self.obs_attrs, **attrs)

    def sample_attack(self) -> Rollout:
        """Sample one set of N trajectories from the current policy."""
        return self.policy.sample_rollout(self.config.trajectory_length,
                                          self.rng)

    def greedy_attack(self) -> Rollout:
        """The policy's deterministic mode (argmax at every decision).

        Useful for deploying a trained strategy: unlike
        :meth:`sample_attack` it returns the same trajectories every call.
        """
        return self.policy.sample_rollout(self.config.trajectory_length,
                                          rng=None)

    # ------------------------------------------------------------------
    # Campaign state (checkpoint/resume)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to resume this campaign bit-identically.

        Policy parameters, Adam state, both RNG streams (trajectory
        sampling and PPO mini-batching), the step counter, the full
        ``StepStats`` history with best-attack bookkeeping, and the
        running reward moments.  Serialized/deserialized by
        :func:`repro.runtime.checkpoint.save_campaign` /
        :func:`~repro.runtime.checkpoint.load_campaign`.
        """
        return {
            "params": [p.data.copy() for p in self.policy.parameters()],
            "optimizer": self.trainer.optimizer.state_dict(),
            "agent_rng": self.rng.bit_generator.state,
            "trainer_rng": self.trainer.rng.bit_generator.state,
            "step": self._step,
            "best_reward": self.result.best_reward,
            "best_trajectories": self.result.best_trajectories,
            "history": [dataclasses.asdict(s) for s in self.result.history],
            "reward_moments": self.reward_moments.state_dict(),
        }

    @sanctioned_channel
    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` in place."""
        params = list(self.policy.parameters())
        saved = state["params"]
        if len(saved) != len(params):
            raise ValueError(
                f"snapshot holds {len(saved)} parameter arrays, the policy "
                f"has {len(params)}")
        for param, array in zip(params, saved):
            param.assign_(array)
        self.trainer.optimizer.load_state_dict(state["optimizer"])
        self.rng.bit_generator.state = state["agent_rng"]
        self.trainer.rng.bit_generator.state = state["trainer_rng"]
        self._step = int(state["step"])
        self.result.best_reward = float(state["best_reward"])
        best = state["best_trajectories"]
        self.result.best_trajectories = (
            None if best is None
            else [[int(item) for item in trajectory] for trajectory in best])
        self.result.history = [StepStats(**entry)
                               for entry in state["history"]]
        self.reward_moments.load_state_dict(state["reward_moments"])

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _query(self, trajectories: List[List[int]],
               state: Optional[CampaignState]) -> Tuple[float, int]:
        """One black-box reward query; returns ``(reward, retries)``.

        With resilience enabled the query runs under the retry policy
        and non-finite RecNum readings are rejected as
        :class:`CorruptRewardError` (and therefore retried).
        """
        if state is None:
            return float(self.env.attack(trajectories)), 0

        def attempt() -> float:
            reward = float(self.env.attack(trajectories))
            if not np.isfinite(reward):
                raise CorruptRewardError(
                    f"environment returned non-finite RecNum {reward!r}")
            return reward

        outcome = call_with_retry(attempt, state.config.retry, rng=state.rng,
                                  sleep=state.config.sleep)
        return outcome.value, outcome.retries

    def _query_batch(self, rollouts: List[Rollout],
                     state: Optional[CampaignState]) -> List[QueryOutcome]:
        """Observe one reward per rollout, serially or through the pool.

        Queries are pure functions of their trajectories (the system
        restores its full clean state — parameters and RNG — before each
        one), so batching them after sampling is bit-identical to the
        historical sample-query interleaving: sampling consumes only the
        agent RNG and querying consumes none.
        """
        if self.query_pool is not None:
            return self.query_pool.attack_many(
                [rollout.trajectories() for rollout in rollouts],
                retry=state.config.retry if state is not None else None,
                rng=state.rng if state is not None else None,
                sleep=state.config.sleep if state is not None else None)
        observing = self._obs is not None
        profiler = find_profiler(self.env) if observing else None
        outcomes: List[QueryOutcome] = []
        for rollout in rollouts:
            delta = PhaseDelta(profiler) if observing else None
            began = time.perf_counter() if observing else 0.0
            try:
                reward, attempts = self._query(rollout.trajectories(), state)
            except RetriesExhaustedError as error:
                outcome = QueryOutcome(
                    reward=None, retries=max(error.attempts - 1, 0),
                    error=error)
            else:
                outcome = QueryOutcome(reward=reward, retries=attempts)
            if observing:
                outcome.seconds = time.perf_counter() - began
                outcome.phases, outcome.phase_calls = delta.delta()
            outcomes.append(outcome)
        return outcomes

    def _record_queries(self, outcomes: List[QueryOutcome],
                        parent) -> None:
        """Synthesize per-query spans from the timings outcomes carry.

        Pooled queries execute concurrently in forked workers, so their
        true start times never reach the parent; the spans are laid out
        *sequentially* from the batch span's start (durations exact,
        placement approximate — flagged ``synthetic``).  Each query span
        nests the restore/merge/retrain/score phase spans the worker (or
        the serial path) measured.  Metrics count every outcome either
        way.
        """
        if self._obs is None:
            return
        metrics = self._obs.metrics
        for outcome in outcomes:
            metrics.counter("agent.queries", **self.obs_attrs).inc()
            if outcome.retries:
                metrics.counter("agent.retries",
                                **self.obs_attrs).inc(outcome.retries)
            if outcome.reward is None:
                metrics.counter("agent.quarantined",
                                **self.obs_attrs).inc()
        if parent is None:
            return
        tracer = self._obs.tracer
        cursor = parent.start
        for i, outcome in enumerate(outcomes):
            if outcome.seconds is None:
                continue
            query = tracer.add(
                "query", cursor, cursor + outcome.seconds,
                parent_id=parent.span_id, index=i, synthetic=True,
                pooled=outcome.pooled, **self.obs_attrs)
            offset = cursor
            for phase, seconds in (outcome.phases or {}).items():
                tracer.add(phase, offset, offset + seconds,
                           parent_id=query.span_id, synthetic=True)
                metrics.histogram("agent.phase_seconds",
                                  phase=phase).observe(seconds)
                offset += seconds
            cursor += outcome.seconds

    def train_step(self) -> StepStats:
        """One iteration of Algorithm 1's outer loop."""
        return self._train_step(None)

    def _train_step(self, state: Optional[CampaignState]) -> StepStats:
        cfg = self.config
        experiences: List[Experience] = []
        retries = 0
        quarantined = 0
        with self._span("train_step", step=self._step):
            with self._span("sample", samples=cfg.samples_per_step):
                rollouts = [self.sample_attack()
                            for _ in range(cfg.samples_per_step)]
            with self._span("query_batch",
                            samples=len(rollouts)) as batch_span:
                outcomes = self._query_batch(rollouts, state)
            self._record_queries(outcomes, batch_span)
            for rollout, outcome in zip(rollouts, outcomes):
                retries += outcome.retries
                if outcome.reward is None:
                    # Degrade gracefully: drop this sample, keep the
                    # batch.
                    quarantined += 1
                    if state is not None:
                        state.budget.spend(reason=str(outcome.error))
                    continue
                reward = outcome.reward
                experiences.append(Experience(rollout=rollout,
                                              reward=reward))
                self.reward_moments.update(reward)
                if reward > self.result.best_reward:
                    self.result.best_reward = reward
                    self.result.best_trajectories = rollout.trajectories()
            with self._span("ppo_update", examples=len(experiences)):
                losses = (self.trainer.update(experiences,
                                              epochs=cfg.ppo_epochs,
                                              batch_size=cfg.batch_size)
                          if experiences else [])
        rewards = [e.reward for e in experiences]
        stats = StepStats(
            step=self._step,
            mean_reward=float(np.mean(rewards)) if rewards else float("nan"),
            max_reward=float(np.max(rewards)) if rewards else float("nan"),
            losses=losses, retries=retries, quarantined=quarantined,
            rollbacks=state.rollbacks if state is not None else 0)
        if state is not None:
            state.total_retries += retries
            state.total_quarantined += quarantined
        self.result.history.append(stats)
        self._step += 1
        return stats

    def train(self, steps: int,
              callback: Optional[Callable[[StepStats], None]] = None,
              *, resilience: Optional[ResilienceConfig] = None,
              resume_from: Optional[PathLike] = None) -> TrainResult:
        """Run ``steps`` training iterations; returns the accumulated result.

        Parameters
        ----------
        steps:
            Iterations to run *in this call* (on top of any restored
            progress when resuming).
        callback:
            Invoked with each completed step's :class:`StepStats`.
        resilience:
            Enables the fault-tolerant campaign loop: retry/backoff with
            sample quarantine, periodic crash-safe checkpoints, and
            divergence rollback.  Without it the loop behaves exactly as
            the plain reproduction (and produces identical numbers).
        resume_from:
            Path of a :func:`~repro.runtime.checkpoint.save_campaign`
            archive to restore before training.  A resumed campaign
            continues the interrupted one bit-identically.
        """
        if resume_from is not None:
            load_campaign(self, resume_from)
        state = CampaignState(resilience) if resilience is not None else None
        target = self._step + steps
        while self._step < target:
            try:
                if state is not None and state.config.anomaly_mode:
                    with detect_anomaly():
                        stats = self._train_step(state)
                else:
                    stats = self._train_step(state)
            except AnomalyError as error:
                if state is None:
                    raise
                self._handle_divergence(state, f"autograd anomaly: {error}")
                continue
            reason = (state.watchdog.observe(stats)
                      if state is not None and state.watchdog is not None
                      else None)
            if reason is not None:
                self._handle_divergence(state, reason)
                continue
            if state is not None and state.checkpoint_due(self._step):
                save_campaign(self, state.checkpoint_path)
                state.mark_checkpointed()
            if callback is not None:
                callback(stats)
        if state is not None and state.checkpoint_path is not None:
            save_campaign(self, state.checkpoint_path)
            state.mark_checkpointed()
        return self.result

    def _handle_divergence(self, state: CampaignState, reason: str) -> None:
        """Roll back to the last good checkpoint with a lowered lr.

        Without a checkpoint on disk the rollback degrades to a pure
        learning-rate backoff; either way the watchdog is reset and the
        rollback allowance is spent.  Exceeding ``max_rollbacks`` raises
        :class:`CampaignDivergenceError`.
        """
        state.rollbacks += 1
        state.decays_since_checkpoint += 1
        if state.rollbacks > state.config.max_rollbacks:
            raise CampaignDivergenceError(
                f"{reason} — campaign rolled back "
                f"{state.rollbacks - 1} time(s) and the allowance of "
                f"{state.config.max_rollbacks} is spent")
        optimizer = self.trainer.optimizer
        if state.can_rollback():
            load_campaign(self, state.checkpoint_path)
            # The checkpoint restored its own (pre-divergence) lr; apply
            # every decay accumulated since that checkpoint was written.
            decay = state.config.lr_backoff ** state.decays_since_checkpoint
            optimizer.lr = max(state.config.min_lr, optimizer.lr * decay)
        else:
            optimizer.lr = max(state.config.min_lr,
                               optimizer.lr * state.config.lr_backoff)
        if state.watchdog is not None:
            state.watchdog.reset()

    # ------------------------------------------------------------------
    def evaluate(self, num_samples: int = 4) -> float:
        """Mean RecNum of attacks sampled from the current policy."""
        rewards = [self._query(self.sample_attack().trajectories(), None)[0]
                   for _ in range(num_samples)]
        return float(np.mean(rewards))

    def target_click_ratio(self, num_samples: int = 8) -> float:
        """Fraction of sampled clicks that land on target items (Figure 5)."""
        total = 0
        on_target = 0
        threshold = self.env.num_original_items
        for _ in range(num_samples):
            items = self.sample_attack().items
            total += items.size
            on_target += int((items >= threshold).sum())
        return on_target / max(total, 1)
