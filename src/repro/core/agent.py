"""The PoisonRec attack agent — Algorithm 1 of the paper.

Ties together the black-box environment, the policy network, an action
space and the PPO trainer.  Each training step samples ``M`` examples
(each example = N complete trajectories injected into the system for one
RecNum observation), then runs ``K`` PPO epochs over mini-batches of
``B`` examples with normalized rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..recsys.system import BlackBoxEnvironment
from .action_space import ActionSpace, make_action_space
from .config import PoisonRecConfig
from .policy import PolicyNetwork, Rollout
from .ppo import Experience, PPOTrainer


@dataclass
class StepStats:
    """Per-training-step telemetry."""

    step: int
    mean_reward: float
    max_reward: float
    losses: List[float]


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: List[StepStats] = field(default_factory=list)
    best_reward: float = float("-inf")
    best_trajectories: Optional[List[List[int]]] = None

    @property
    def mean_rewards(self) -> List[float]:
        return [s.mean_reward for s in self.history]

    @property
    def max_rewards(self) -> List[float]:
        return [s.max_reward for s in self.history]


class PoisonRec:
    """Adaptive data-poisoning attack agent (the paper's framework).

    Parameters
    ----------
    env:
        The black-box recommender environment to attack.
    config:
        Algorithm and network hyper-parameters.
    action_space:
        ``"plain"``, ``"bplain"``, ``"bcbt-popular"`` (default, the
        paper's full method) or ``"bcbt-random"``; alternatively an
        already-built :class:`ActionSpace`.
    """

    def __init__(self, env: BlackBoxEnvironment,
                 config: Optional[PoisonRecConfig] = None,
                 action_space: str | ActionSpace = "bcbt-popular") -> None:
        self.env = env
        self.config = config or PoisonRecConfig()
        if isinstance(action_space, str):
            action_space = make_action_space(
                action_space, env.num_original_items, env.target_items,
                env.item_popularity, seed=self.config.seed)
        self.action_space = action_space
        self.policy = PolicyNetwork(action_space,
                                    self.config.num_attackers,
                                    dim=self.config.embedding_dim,
                                    seed=self.config.seed)
        self.trainer = PPOTrainer(self.policy,
                                  learning_rate=self.config.learning_rate,
                                  clip_epsilon=self.config.clip_epsilon,
                                  grad_clip=self.config.grad_clip,
                                  seed=self.config.seed + 1)
        self.rng = np.random.default_rng(self.config.seed + 2)
        self.result = TrainResult()
        self._step = 0

    # ------------------------------------------------------------------
    def sample_attack(self) -> Rollout:
        """Sample one set of N trajectories from the current policy."""
        return self.policy.sample_rollout(self.config.trajectory_length,
                                          self.rng)

    def greedy_attack(self) -> Rollout:
        """The policy's deterministic mode (argmax at every decision).

        Useful for deploying a trained strategy: unlike
        :meth:`sample_attack` it returns the same trajectories every call.
        """
        return self.policy.sample_rollout(self.config.trajectory_length,
                                          rng=None)

    def train_step(self) -> StepStats:
        """One iteration of Algorithm 1's outer loop."""
        cfg = self.config
        experiences: List[Experience] = []
        for _ in range(cfg.samples_per_step):
            rollout = self.sample_attack()
            reward = float(self.env.attack(rollout.trajectories()))
            experiences.append(Experience(rollout=rollout, reward=reward))
            if reward > self.result.best_reward:
                self.result.best_reward = reward
                self.result.best_trajectories = rollout.trajectories()
        losses = self.trainer.update(experiences, epochs=cfg.ppo_epochs,
                                     batch_size=cfg.batch_size)
        rewards = [e.reward for e in experiences]
        stats = StepStats(step=self._step,
                          mean_reward=float(np.mean(rewards)),
                          max_reward=float(np.max(rewards)), losses=losses)
        self.result.history.append(stats)
        self._step += 1
        return stats

    def train(self, steps: int,
              callback: Optional[Callable[[StepStats], None]] = None
              ) -> TrainResult:
        """Run ``steps`` training iterations; returns the accumulated result."""
        for _ in range(steps):
            stats = self.train_step()
            if callback is not None:
                callback(stats)
        return self.result

    # ------------------------------------------------------------------
    def evaluate(self, num_samples: int = 4) -> float:
        """Mean RecNum of attacks sampled from the current policy."""
        rewards = [float(self.env.attack(self.sample_attack().trajectories()))
                   for _ in range(num_samples)]
        return float(np.mean(rewards))

    def target_click_ratio(self, num_samples: int = 8) -> float:
        """Fraction of sampled clicks that land on target items (Figure 5)."""
        total = 0
        on_target = 0
        threshold = self.env.num_original_items
        for _ in range(num_samples):
            items = self.sample_attack().items
            total += items.size
            on_target += int((items >= threshold).sum())
        return on_target / max(total, 1)
