"""Configuration for the PoisonRec attack framework.

Defaults follow the paper's Implementation Details (Section IV-A):
layer size 64, Adam with lr 2e-3, M=B=32, K=3, N=20 attackers, T=20
clicks per trajectory, PPO clip epsilon 0.1, discount gamma=1.0.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PoisonRecConfig:
    """Hyper-parameters of Algorithm 1 and the policy network."""

    #: N — number of attacker accounts (each contributes one trajectory).
    num_attackers: int = 20
    #: T — clicks per attack trajectory.
    trajectory_length: int = 20
    #: |e| — embedding size; also every LSTM/DNN layer width (paper: 64).
    embedding_dim: int = 64
    #: M — sampled training examples (env interactions) per training step.
    samples_per_step: int = 32
    #: B — PPO mini-batch size (B <= M).
    batch_size: int = 32
    #: K — PPO epochs per training step.
    ppo_epochs: int = 3
    #: Adam learning rate (paper: 2e-3).
    learning_rate: float = 2e-3
    #: PPO clipped-surrogate epsilon (paper: 0.1).
    clip_epsilon: float = 0.1
    #: Global gradient-norm clip for the policy update.
    grad_clip: float = 5.0
    #: RNG seed for policy init and trajectory sampling.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_attackers <= 0:
            raise ValueError("num_attackers must be positive")
        if self.trajectory_length <= 0:
            raise ValueError("trajectory_length must be positive")
        if self.batch_size > self.samples_per_step:
            raise ValueError("batch_size B must not exceed samples_per_step M")
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ValueError("clip_epsilon must be in (0, 1)")

    @classmethod
    def ci(cls, **overrides) -> "PoisonRecConfig":
        """A scaled-down preset for tests and CI-speed benchmarks."""
        defaults = dict(num_attackers=8, trajectory_length=8,
                        embedding_dim=16, samples_per_step=8, batch_size=8,
                        ppo_epochs=2)
        defaults.update(overrides)
        return cls(**defaults)
