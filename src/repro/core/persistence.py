"""Saving and loading trained PoisonRec policies.

Stores all policy parameters plus the identifying metadata (action-space
kind, dimensions) in a single ``.npz`` archive, so a learned attack
strategy can be reused or inspected without retraining.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from .agent import PoisonRec
from .policy import PolicyNetwork

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def save_policy(agent: PoisonRec, path: PathLike) -> None:
    """Serialize the agent's policy parameters to ``path`` (.npz)."""
    policy = agent.policy
    arrays = {f"param_{i}": p.data for i, p in enumerate(policy.parameters())}
    metadata = {
        "version": _FORMAT_VERSION,
        "action_space": getattr(agent.action_space, "name", "plain"),
        "num_items": agent.action_space.num_items,
        "num_original_items": agent.action_space.num_original_items,
        "num_attackers": policy.num_attackers,
        "dim": policy.dim,
        "best_reward": agent.result.best_reward,
    }
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_policy(agent: PoisonRec, path: PathLike) -> dict:
    """Load parameters saved by :func:`save_policy` into ``agent``.

    The agent must have been constructed with a matching configuration
    (same action space kind, item universe, attacker count and embedding
    dim); mismatches raise ``ValueError``.  Returns the stored metadata.
    """
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode())
        _check_compatible(agent.policy, agent, metadata)
        params = list(agent.policy.parameters())
        for i, param in enumerate(params):
            stored = archive[f"param_{i}"]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: saved {stored.shape}, "
                    f"agent has {param.data.shape}")
            param.assign_(stored)
    return metadata


def _check_compatible(policy: PolicyNetwork, agent: PoisonRec,
                      metadata: dict) -> None:
    checks = {
        "action_space": getattr(agent.action_space, "name", "plain"),
        "num_items": agent.action_space.num_items,
        "num_attackers": policy.num_attackers,
        "dim": policy.dim,
    }
    for key, expected in checks.items():
        if metadata.get(key) != expected:
            raise ValueError(
                f"saved policy has {key}={metadata.get(key)!r}, agent "
                f"expects {expected!r}")
