"""Saving and loading trained PoisonRec policies.

Stores all policy parameters plus the identifying metadata (action-space
kind, dimensions) in a single ``.npz`` archive, so a learned attack
strategy can be reused or inspected without retraining.

Writes are atomic (temp sibling + ``os.replace`` via
:func:`repro.runtime.checkpoint.atomic_savez`), so a crash mid-save can
never corrupt an existing archive, and metadata is strict JSON: an
untrained agent's ``best_reward`` of ``-inf`` is stored as ``null`` and
restored to ``float("-inf")`` on load.  Truncated or garbled archives
raise :class:`~repro.runtime.errors.CorruptCheckpointError` instead of a
raw ``zipfile`` traceback.
"""

from __future__ import annotations

import json
import math
import zipfile

import numpy as np

from ..runtime.checkpoint import PathLike, as_npz_path, atomic_savez
from ..runtime.errors import CorruptCheckpointError
from .agent import PoisonRec
from .policy import PolicyNetwork

_FORMAT_VERSION = 1


def save_policy(agent: PoisonRec, path: PathLike) -> None:
    """Atomically serialize the agent's policy parameters to ``path`` (.npz)."""
    policy = agent.policy
    arrays = {f"param_{i}": p.data for i, p in enumerate(policy.parameters())}
    best_reward = float(agent.result.best_reward)
    metadata = {
        "version": _FORMAT_VERSION,
        "action_space": getattr(agent.action_space, "name", "plain"),
        "num_items": agent.action_space.num_items,
        "num_original_items": agent.action_space.num_original_items,
        "num_attackers": policy.num_attackers,
        "dim": policy.dim,
        # -inf (untrained) is not representable in standard JSON: store
        # null, decode back to float("-inf") in load_policy.
        "best_reward": best_reward if math.isfinite(best_reward) else None,
    }
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata, allow_nan=False).encode(), dtype=np.uint8)
    atomic_savez(path, arrays)


def load_policy(agent: PoisonRec, path: PathLike) -> dict:
    """Load parameters saved by :func:`save_policy` into ``agent``.

    The agent must have been constructed with a matching configuration
    (same action space kind, item universe, attacker count and embedding
    dim); mismatches raise ``ValueError``.  A truncated or garbled
    archive raises :class:`CorruptCheckpointError`; a missing file
    raises ``FileNotFoundError`` unchanged.  Returns the stored
    metadata (with ``best_reward`` decoded).
    """
    path = as_npz_path(path)
    params = list(agent.policy.parameters())
    try:
        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode())
            stored = {name: np.array(archive[name])
                      for name in archive.files if name != "metadata"}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError,
            OSError) as error:
        raise CorruptCheckpointError(
            f"policy archive {path} is unreadable or truncated ({error}); "
            "it was probably written by an interrupted save") from error
    _check_compatible(agent.policy, agent, metadata)
    for i, param in enumerate(params):
        name = f"param_{i}"
        if name not in stored:
            raise CorruptCheckpointError(
                f"policy archive {path} is missing array {name!r}; the "
                "archive was written incompletely")
        if stored[name].shape != param.data.shape:
            raise ValueError(
                f"parameter {i} shape mismatch: saved {stored[name].shape}, "
                f"agent has {param.data.shape}")
    for i, param in enumerate(params):
        param.assign_(stored[f"param_{i}"])
    if metadata.get("best_reward") is None:
        metadata["best_reward"] = float("-inf")
    return metadata


def _check_compatible(policy: PolicyNetwork, agent: PoisonRec,
                      metadata: dict) -> None:
    checks = {
        "action_space": getattr(agent.action_space, "name", "plain"),
        "num_items": agent.action_space.num_items,
        "num_attackers": policy.num_attackers,
        "dim": policy.dim,
    }
    for key, expected in checks.items():
        if metadata.get(key) != expected:
            raise ValueError(
                f"saved policy has {key}={metadata.get(key)!r}, agent "
                f"expects {expected!r}")
