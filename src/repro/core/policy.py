"""The PoisonRec policy network: LSTM trajectory encoder + DNN head.

Implements Equations 5-6: the state ``s_t = {u, a_0, ..., a_{t-1}}`` is
embedded by an LSTM into ``h_t``; a two-layer ReLU DNN maps ``h_t`` to
``D(h_t)``, whose dot products with item (or tree-node) features define
the sampling distribution of the attached action space.

Rollouts use a pure-numpy forward pass (no gradients are needed while
sampling); the PPO update recomputes decision log-probabilities through
the autograd engine via :meth:`PolicyNetwork.rollout_log_probs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn import Embedding, LSTMCell, MLP, Module, Tensor, shape_spec, stack
from .action_space import ActionSpace


@dataclass
class Rollout:
    """Sampled trajectories for one training example (all N attackers).

    Arrays are shaped ``(N, T)`` for items and ``(N, T, D)`` for the
    per-decision records (D = the action space's ``max_decisions``).
    """

    items: np.ndarray
    decisions: Dict[str, np.ndarray]
    log_probs: np.ndarray
    mask: np.ndarray
    _trajectories: Optional[List[List[int]]] = field(
        default=None, repr=False, compare=False)

    @property
    def num_attackers(self) -> int:
        return self.items.shape[0]

    @property
    def trajectory_length(self) -> int:
        return self.items.shape[1]

    def trajectories(self) -> List[List[int]]:
        """Item sequences ready for :meth:`BlackBoxEnvironment.attack`.

        The conversion is cached: rollouts are immutable once sampled,
        and the query path (retries, resampled batches) may ask for the
        same sequences several times.
        """
        if self._trajectories is None:
            self._trajectories = [list(map(int, row)) for row in self.items]
        return self._trajectories


class PolicyNetwork(Module):
    """Shared policy for the N homogeneous attackers."""

    def __init__(self, action_space: ActionSpace, num_attackers: int,
                 dim: int = 64, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.action_space = action_space
        self.num_attackers = num_attackers
        self.dim = dim
        # One table holds item embeddings (rows [0, num_items)) followed by
        # the action space's extra rows (internal tree / set nodes).
        self.features = Embedding(
            action_space.num_items + action_space.num_extra_rows, dim, rng)
        self.user_embedding = Embedding(num_attackers, dim, rng)
        self.lstm = LSTMCell(dim, dim, rng)
        # "a 2-layer DNN with Relu as the activation function" whose output
        # dimension equals |e| (Section III-C).
        self.dnn = MLP([dim, dim, dim], rng)

    # ------------------------------------------------------------------
    # numpy fast path (rollout)
    # ------------------------------------------------------------------
    def _np_lstm_step(self, x: np.ndarray, h: np.ndarray,
                      c: np.ndarray) -> tuple:
        weight = self.lstm.weight.data
        bias = self.lstm.bias.data
        gates = np.concatenate([x, h], axis=1) @ weight + bias
        H = self.dim
        i = 1.0 / (1.0 + np.exp(-gates[:, 0:H]))
        f = 1.0 / (1.0 + np.exp(-gates[:, H:2 * H]))
        g = np.tanh(gates[:, 2 * H:3 * H])
        o = 1.0 / (1.0 + np.exp(-gates[:, 3 * H:4 * H]))
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        return h_new, c_new

    def _np_dnn(self, h: np.ndarray) -> np.ndarray:
        out = h
        for layer in self.dnn.layers:
            out = out @ layer.weight.data + layer.bias.data
            if layer.activation == "relu":
                out = np.maximum(out, 0.0)
        return out

    def sample_rollout(self, trajectory_length: int,
                       rng: Optional[np.random.Generator]) -> Rollout:
        """Sample N trajectories of T items each (one training example).

        ``rng=None`` decodes greedily (each step takes the argmax action),
        yielding the policy's deterministic mode.
        """
        N = self.num_attackers
        space = self.action_space
        features = self.features.weight.data

        items = np.zeros((N, trajectory_length), dtype=np.int64)
        decisions: Dict[str, list] = {}
        log_probs = np.zeros((N, trajectory_length, space.max_decisions))
        mask = np.zeros((N, trajectory_length, space.max_decisions))

        x = self.user_embedding.weight.data[np.arange(N)]
        h = np.zeros((N, self.dim))
        c = np.zeros((N, self.dim))
        for t in range(trajectory_length):
            h, c = self._np_lstm_step(x, h, c)
            d_out = self._np_dnn(h)
            step = space.sample_step(d_out, features, rng)
            items[:, t] = step.items
            log_probs[:, t] = step.log_probs
            mask[:, t] = step.mask
            for key, value in step.decisions.items():
                decisions.setdefault(key, []).append(value)
            x = features[step.items]
        # Stack per-step records along a new time axis: arrays become
        # (N, T) for flat decisions and (N, T, D) for tree paths, matching
        # what each space's step_log_probs expects per step slice.
        stacked = {key: np.stack(values, axis=1)
                   for key, values in decisions.items()}
        return Rollout(items=items, decisions=stacked, log_probs=log_probs,
                       mask=mask)

    # ------------------------------------------------------------------
    # autograd recompute (PPO update)
    # ------------------------------------------------------------------
    @shape_spec("(B, T), _ -> (B, T, action_space.max_decisions)")
    def rollout_log_probs(self, items: np.ndarray,
                          decisions: Dict[str, np.ndarray]) -> Tensor:
        """Log-probs of recorded decisions under the *current* parameters.

        ``items`` is ``(batch, T)`` where batch stacks attackers across
        training examples; attacker identity cycles with ``batch %
        num_attackers`` (examples are stored attacker-major).  Returns a
        ``(batch, T, D)`` tensor.
        """
        batch, T = items.shape
        user_ids = np.arange(batch) % self.num_attackers
        x = self.user_embedding(user_ids)
        h = Tensor(np.zeros((batch, self.dim)))
        c = Tensor(np.zeros((batch, self.dim)))
        per_step = []
        for t in range(T):
            h, c = self.lstm(x, (h, c))
            d_out = self.dnn(h)
            step_decisions = {key: value[:, t]
                              for key, value in decisions.items()}
            lp = self.action_space.step_log_probs(d_out, self.features.weight,
                                                  step_decisions)
            per_step.append(lp)
            x = self.features(items[:, t])
        return stack(per_step, axis=1)
