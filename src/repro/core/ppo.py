"""Proximal Policy Optimization for PoisonRec (Section III-D).

Implements the clipped-surrogate update of Equations 7/9 with the
per-batch Gaussian reward normalization of Equation 8.  Because the whole
reward arrives only after the complete trajectory set is injected
(gamma = 1, terminal reward = RecNum), every decision in an example shares
the same (normalized) advantage.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..nn import Adam, Tensor
from ..nn import functional as F
from .policy import PolicyNetwork, Rollout


@dataclass
class Experience:
    """One training example: a rollout of N trajectories and its RecNum."""

    rollout: Rollout
    reward: float


def normalize_rewards(rewards: Sequence[float]) -> np.ndarray:
    """Equation 8: Gaussian-normalize a batch of RecNum rewards.

    A degenerate batch (zero variance — e.g. every attack scored 0) yields
    all-zero advantages, which correctly produces no policy gradient.
    """
    rewards = np.asarray(rewards, dtype=float)
    std = rewards.std()
    if std < 1e-8:
        return np.zeros_like(rewards)
    return (rewards - rewards.mean()) / std


class PPOTrainer:
    """Clipped-surrogate PPO over stored rollouts."""

    def __init__(self, policy: PolicyNetwork, learning_rate: float = 2e-3,
                 clip_epsilon: float = 0.1, grad_clip: float = 5.0,
                 seed: int = 0, normalize: bool = True) -> None:
        self.policy = policy
        self.optimizer = Adam(list(policy.parameters()), lr=learning_rate)
        self.clip_epsilon = clip_epsilon
        self.grad_clip = grad_clip
        #: Apply Equation 8 (Gaussian reward normalization).  Disable only
        #: for ablation studies — raw RecNum advantages destabilize PPO.
        self.normalize = normalize
        self.rng = np.random.default_rng(seed)
        #: Optional :class:`~repro.obs.trace.Tracer` wrapping each PPO
        #: epoch in a ``ppo_epoch`` span (wired by the agent's ``obs``).
        self.tracer = None

    def _span(self, name: str, **attrs):
        """A traced span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    def _flatten(self, experiences: Sequence[Experience]) -> tuple:
        """Stack examples attacker-major into one batch.

        Returns items ``(B*N, T)``, decision dict, old log-probs and mask
        ``(B*N, T, D)``, and per-row advantages ``(B*N,)``.
        """
        rewards = [e.reward for e in experiences]
        if self.normalize:
            advantages = normalize_rewards(rewards)
        else:
            # Ablation mode: mean-centered raw rewards (RecNum magnitude
            # flows straight into the advantage).
            advantages = np.asarray(rewards, dtype=float)
            advantages = advantages - advantages.mean()
        items = np.concatenate([e.rollout.items for e in experiences], axis=0)
        old_lp = np.concatenate([e.rollout.log_probs for e in experiences],
                                axis=0)
        mask = np.concatenate([e.rollout.mask for e in experiences], axis=0)
        decisions: Dict[str, np.ndarray] = {}
        for key in experiences[0].rollout.decisions:
            decisions[key] = np.concatenate(
                [e.rollout.decisions[key] for e in experiences], axis=0)
        row_adv = np.repeat(advantages,
                            [e.rollout.num_attackers for e in experiences])
        return items, decisions, old_lp, mask, row_adv

    def update(self, experiences: Sequence[Experience], epochs: int = 3,
               batch_size: int | None = None) -> List[float]:
        """Run K PPO epochs over the stored examples; returns epoch losses."""
        if not experiences:
            return []
        losses = []
        subsample = (batch_size is not None
                     and batch_size < len(experiences))
        # Full-batch epochs all see the same examples, so the stacked
        # arrays are loop-invariant: flatten once, reuse every epoch.
        flat = None if subsample else self._flatten(list(experiences))
        for epoch in range(epochs):
            with self._span("ppo_epoch", epoch=epoch):
                if subsample:
                    chosen = self.rng.choice(len(experiences),
                                             size=batch_size,
                                             replace=False)
                    batch = [experiences[i] for i in chosen]
                    losses.append(self._update_once(batch))
                else:
                    losses.append(self._step(flat))
        return losses

    def _update_once(self, batch: Sequence[Experience]) -> float:
        return self._step(self._flatten(batch))

    def _step(self, flat: tuple) -> float:
        """One clipped-surrogate gradient step over pre-flattened arrays."""
        items, decisions, old_lp, mask, row_adv = flat
        if not np.any(row_adv):
            return 0.0  # zero-variance batch: no gradient signal
        new_lp = self.policy.rollout_log_probs(items, decisions)
        ratio = F.exp(new_lp - Tensor(old_lp))
        advantage = Tensor(row_adv[:, None, None])
        clipped = F.clip(ratio, 1.0 - self.clip_epsilon,
                         1.0 + self.clip_epsilon)
        objective = F.minimum(ratio * advantage, clipped * advantage)
        mask_t = Tensor(mask)
        denom = max(float(mask.sum()), 1.0)
        loss = -(objective * mask_t).sum() * (1.0 / denom)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        return float(loss.item())
