"""Action spaces for PoisonRec: Plain, BPlain, and BCBT variants.

The paper compares four designs of the per-step item-sampling distribution
(Section IV-B):

* **Plain** — one softmax over all items (Equation 6).
* **BPlain** — first choose the item *set* (targets ``I_t`` vs. originals
  ``I``), then softmax within the chosen set (priori knowledge only).
* **BCBT-Popular** — full Biased Complete Binary Tree with
  popularity-sorted leaves (priori knowledge + hierarchical structure).
* **BCBT-Random** — BCBT with randomly assigned leaves (tests
  Assumption 1).

Every space exposes two operations:

* :meth:`ActionSpace.sample_step` — a *numpy fast path* used during
  trajectory rollout (no gradients needed), returning the sampled item and
  a decision record;
* :meth:`ActionSpace.step_log_probs` — an autograd recompute of the
  decision log-probabilities under the current parameters, used by the
  PPO update (Equations 7/9).

Decision records are padded to a fixed per-step decision count
(:attr:`ActionSpace.max_decisions`) with a mask, so tree paths of unequal
depth batch cleanly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..nn import Tensor, shape_spec, stack
from ..nn import functional as F
from .bcbt import TreeArrays, build_bcbt

_LOG_EPS = 1e-12


@dataclass
class StepSample:
    """One sampling step for a batch of attackers.

    ``items`` is the sampled leaf item per attacker; ``decisions`` holds
    whatever the space needs to recompute log-probs (padded arrays of
    shape ``(batch, max_decisions)``); ``log_probs``/``mask`` align with
    ``decisions``.
    """

    items: np.ndarray
    decisions: Dict[str, np.ndarray]
    log_probs: np.ndarray
    mask: np.ndarray


def _gumbel_argmax(rng, logits: np.ndarray) -> np.ndarray:
    """Sample from per-row softmax distributions via the Gumbel-max trick.

    ``rng=None`` switches to greedy (plain argmax) decoding — used to
    extract the deterministic mode of a trained policy.
    """
    if rng is None:
        return np.argmax(logits, axis=-1)
    noise = rng.gumbel(size=logits.shape)
    return np.argmax(logits + noise, axis=-1)


def _log_softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class ActionSpace(abc.ABC):
    """Shared interface over the item-sampling designs."""

    def __init__(self, num_original_items: int,
                 target_items: np.ndarray) -> None:
        self.num_original_items = num_original_items
        # Stored sorted: position arithmetic (item id - num_original_items)
        # throughout the spaces relies on ascending target order.
        self.target_items = np.sort(np.asarray(target_items, dtype=np.int64))
        self.num_items = num_original_items + len(self.target_items)
        expected = np.arange(num_original_items, self.num_items)
        if not np.array_equal(self.target_items, expected):
            raise ValueError(
                "target items must be the contiguous block appended after "
                "the original items")

    #: Extra trainable feature rows the space needs beyond item embeddings
    #: (internal tree nodes / set nodes).
    num_extra_rows: int = 0

    #: Maximum decisions per sampled item (1 for Plain, tree depth for BCBT).
    max_decisions: int = 1

    @abc.abstractmethod
    def sample_step(self, dnn_out: np.ndarray, features: np.ndarray,
                    rng: np.random.Generator) -> StepSample:
        """Sample one item per attacker (numpy fast path).

        ``dnn_out`` is the DNN head output ``D(h_t)`` of shape
        ``(batch, dim)``; ``features`` is the full feature table data of
        shape ``(num_items + num_extra_rows, dim)``.
        """

    @abc.abstractmethod
    def step_log_probs(self, dnn_out: Tensor, features: Tensor,
                       decisions: Dict[str, np.ndarray]) -> Tensor:
        """Recompute decision log-probs under current params (autograd).

        Returns a ``(batch, max_decisions)`` tensor aligned with the
        decision mask.
        """

    @abc.abstractmethod
    def item_distribution(self, dnn_out: np.ndarray,
                          features: np.ndarray) -> np.ndarray:
        """Full per-item sampling distribution (numpy, for analysis).

        Returns ``(batch, num_items)`` probabilities.  For tree spaces
        this multiplies branch probabilities down every root-to-leaf path;
        rows always sum to 1 — the invariant the property tests check.
        """


class PlainActionSpace(ActionSpace):
    """Equation 6: one multinomial over the full item universe."""

    name = "plain"
    num_extra_rows = 0
    max_decisions = 1

    def sample_step(self, dnn_out: np.ndarray, features: np.ndarray,
                    rng: np.random.Generator) -> StepSample:
        logits = dnn_out @ features[:self.num_items].T
        items = _gumbel_argmax(rng, logits)
        log_probs = _log_softmax_np(logits)[np.arange(len(items)), items]
        return StepSample(
            items=items,
            decisions={"items": items},
            log_probs=log_probs[:, None],
            mask=np.ones((len(items), 1)),
        )

    @shape_spec("(B, E), (R, E), _ -> (B, max_decisions)")
    def step_log_probs(self, dnn_out: Tensor, features: Tensor,
                       decisions: Dict[str, np.ndarray]) -> Tensor:
        items = decisions["items"]
        logits = dnn_out @ features[np.arange(self.num_items)].T
        log_probs = F.log_softmax(logits, axis=1)
        picked = log_probs[np.arange(len(items)), items]
        return picked.reshape(len(items), 1)

    def item_distribution(self, dnn_out: np.ndarray,
                          features: np.ndarray) -> np.ndarray:
        logits = dnn_out @ features[:self.num_items].T
        return np.exp(_log_softmax_np(logits))


class BPlainActionSpace(ActionSpace):
    """Priori knowledge only: choose the set, then the item within it."""

    name = "bplain"
    num_extra_rows = 2  # one feature row per set node (I_t, I)
    max_decisions = 2

    def __init__(self, num_original_items: int,
                 target_items: np.ndarray) -> None:
        super().__init__(num_original_items, target_items)
        self.target_row = self.num_items       # set-node feature rows
        self.original_row = self.num_items + 1

    # ------------------------------------------------------------------
    def sample_step(self, dnn_out: np.ndarray, features: np.ndarray,
                    rng: np.random.Generator) -> StepSample:
        batch = len(dnn_out)
        set_logits = np.stack([dnn_out @ features[self.target_row],
                               dnn_out @ features[self.original_row]], axis=1)
        sides = _gumbel_argmax(rng, set_logits)  # 0 = targets, 1 = originals
        side_lp = _log_softmax_np(set_logits)[np.arange(batch), sides]

        target_logits = dnn_out @ features[self.target_items].T
        original_logits = dnn_out @ features[:self.num_original_items].T
        target_pick = _gumbel_argmax(rng, target_logits)
        original_pick = _gumbel_argmax(rng, original_logits)
        target_lp = _log_softmax_np(target_logits)[np.arange(batch),
                                                   target_pick]
        original_lp = _log_softmax_np(original_logits)[np.arange(batch),
                                                       original_pick]
        items = np.where(sides == 0, self.target_items[target_pick],
                         original_pick)
        item_lp = np.where(sides == 0, target_lp, original_lp)
        return StepSample(
            items=items,
            decisions={"sides": sides, "items": items},
            log_probs=np.stack([side_lp, item_lp], axis=1),
            mask=np.ones((batch, 2)),
        )

    @shape_spec("(B, E), (R, E), _ -> (B, max_decisions)")
    def step_log_probs(self, dnn_out: Tensor, features: Tensor,
                       decisions: Dict[str, np.ndarray]) -> Tensor:
        sides = decisions["sides"]
        items = decisions["items"]
        batch = len(sides)
        rows = np.arange(batch)

        set_feats = features[np.array([self.target_row, self.original_row])]
        set_logits = dnn_out @ set_feats.T
        side_lp = F.log_softmax(set_logits, axis=1)[rows, sides]

        target_logits = dnn_out @ features[self.target_items].T
        original_logits = dnn_out @ features[np.arange(
            self.num_original_items)].T
        # Positions within each set (clipped so gathers stay in-bounds for
        # rows belonging to the other set; the mask zeroes those out).
        target_pos = np.clip(items - self.num_original_items, 0,
                             len(self.target_items) - 1)
        original_pos = np.clip(items, 0, self.num_original_items - 1)
        target_lp = F.log_softmax(target_logits, axis=1)[rows, target_pos]
        original_lp = F.log_softmax(original_logits, axis=1)[rows,
                                                             original_pos]
        is_target = Tensor((sides == 0).astype(float))
        item_lp = target_lp * is_target + original_lp * (1.0 - is_target)
        return stack([side_lp, item_lp], axis=1)

    def item_distribution(self, dnn_out: np.ndarray,
                          features: np.ndarray) -> np.ndarray:
        set_logits = np.stack([dnn_out @ features[self.target_row],
                               dnn_out @ features[self.original_row]],
                              axis=1)
        set_probs = np.exp(_log_softmax_np(set_logits))
        target_probs = np.exp(_log_softmax_np(
            dnn_out @ features[self.target_items].T))
        original_probs = np.exp(_log_softmax_np(
            dnn_out @ features[:self.num_original_items].T))
        distribution = np.empty((len(dnn_out), self.num_items))
        distribution[:, :self.num_original_items] = (
            set_probs[:, 1:2] * original_probs)
        distribution[:, self.num_original_items:] = (
            set_probs[:, 0:1] * target_probs)
        return distribution


class TreeActionSpace(ActionSpace):
    """BCBT sampling (Algorithm 2) with per-level PPO updates (Equation 9)."""

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 tree: TreeArrays, name: str = "bcbt-popular") -> None:
        super().__init__(num_original_items, target_items)
        if tree.num_items != self.num_items:
            raise ValueError("tree was built over a different item universe")
        self.tree = tree
        self.name = name
        self.num_extra_rows = tree.num_internal
        self.max_decisions = tree.max_depth()

    # ------------------------------------------------------------------
    def sample_step(self, dnn_out: np.ndarray, features: np.ndarray,
                    rng: np.random.Generator) -> StepSample:
        batch = len(dnn_out)
        depth = self.max_decisions
        parents = np.zeros((batch, depth), dtype=np.int64)
        sides = np.zeros((batch, depth), dtype=np.int64)
        mask = np.zeros((batch, depth))
        log_probs = np.zeros((batch, depth))

        position = np.full(batch, self.tree.root, dtype=np.int64)
        for level in range(depth):
            active = position >= self.num_items
            if not active.any():
                break
            idx = np.flatnonzero(active)
            node = position[idx]
            left, right = self.tree.children(node)
            score_left = (dnn_out[idx] * features[left]).sum(axis=1)
            score_right = (dnn_out[idx] * features[right]).sum(axis=1)
            logits = np.stack([score_left, score_right], axis=1)
            choice = _gumbel_argmax(rng, logits)
            lp = _log_softmax_np(logits)[np.arange(len(idx)), choice]
            parents[idx, level] = node
            sides[idx, level] = choice
            mask[idx, level] = 1.0
            log_probs[idx, level] = lp
            position[idx] = np.where(choice == 0, left, right)
        if (position >= self.num_items).any():
            raise ValueError("tree walk exceeded max depth")
        return StepSample(items=position,
                          decisions={"parents": parents, "sides": sides},
                          log_probs=log_probs, mask=mask)

    @shape_spec("(B, E), (R, E), _ -> (B, max_decisions)")
    def step_log_probs(self, dnn_out: Tensor, features: Tensor,
                       decisions: Dict[str, np.ndarray]) -> Tensor:
        parents = decisions["parents"]
        sides = decisions["sides"]
        batch, depth = parents.shape
        rows = np.arange(batch)
        level_lps = []
        for level in range(depth):
            node = parents[:, level]
            valid = node >= self.num_items
            # Padded rows point at the root so gathers stay in-bounds; the
            # PPO mask removes their contribution.
            safe = np.where(valid, node, self.tree.root)
            left, right = self.tree.children(safe)
            feat_left = features[left]
            feat_right = features[right]
            score_left = (dnn_out * feat_left).sum(axis=1)
            score_right = (dnn_out * feat_right).sum(axis=1)
            logits = stack([score_left, score_right], axis=1)
            lp = F.log_softmax(logits, axis=1)[rows, sides[:, level]]
            level_lps.append(lp)
        return stack(level_lps, axis=1)

    def item_distribution(self, dnn_out: np.ndarray,
                          features: np.ndarray) -> np.ndarray:
        """Exact leaf distribution by pushing probability down the tree.

        Internal-node ids are constructed children-before-parents, so a
        single high-to-low sweep over internal indices propagates every
        node's mass to its children in one pass.
        """
        batch = len(dnn_out)
        num_nodes = self.num_items + self.tree.num_internal
        node_prob = np.zeros((batch, num_nodes))
        node_prob[:, self.tree.root] = 1.0
        for internal in range(self.tree.num_internal - 1, -1, -1):
            node = self.num_items + internal
            mass = node_prob[:, node]
            if not mass.any():
                continue
            left = int(self.tree.left_child[internal])
            right = int(self.tree.right_child[internal])
            score_left = dnn_out @ features[left]
            score_right = dnn_out @ features[right]
            logits = np.stack([score_left, score_right], axis=1)
            branch = np.exp(_log_softmax_np(logits))
            node_prob[:, left] += mass * branch[:, 0]
            node_prob[:, right] += mass * branch[:, 1]
        return node_prob[:, :self.num_items]


ACTION_SPACE_KINDS = ("plain", "bplain", "bcbt-popular", "bcbt-random")


def make_action_space(kind: str, num_original_items: int,
                      target_items: np.ndarray, popularity: np.ndarray,
                      seed: int = 0) -> ActionSpace:
    """Factory over the four designs compared in Section IV-B."""
    if kind == "plain":
        return PlainActionSpace(num_original_items, target_items)
    if kind == "bplain":
        return BPlainActionSpace(num_original_items, target_items)
    if kind in ("bcbt-popular", "bcbt-random"):
        assignment = "popular" if kind == "bcbt-popular" else "random"
        tree = build_bcbt(num_original_items, target_items, popularity,
                          assignment=assignment,
                          rng=np.random.default_rng(seed))
        return TreeActionSpace(num_original_items, target_items, tree,
                               name=kind)
    raise ValueError(
        f"unknown action space {kind!r}; expected one of {ACTION_SPACE_KINDS}")
