"""PoisonRec core: MDP policy, action spaces, BCBT, PPO, attack agent."""

from .action_space import (ACTION_SPACE_KINDS, ActionSpace, BPlainActionSpace,
                           PlainActionSpace, StepSample, TreeActionSpace,
                           make_action_space)
from .agent import PoisonRec, StepStats, TrainResult
from .bcbt import TreeArrays, build_bcbt
from .config import PoisonRecConfig
from .persistence import load_policy, save_policy
from .policy import PolicyNetwork, Rollout
from .ppo import Experience, PPOTrainer, normalize_rewards

__all__ = [
    "ACTION_SPACE_KINDS", "ActionSpace", "PlainActionSpace",
    "BPlainActionSpace", "TreeActionSpace", "StepSample",
    "make_action_space",
    "PoisonRec", "StepStats", "TrainResult",
    "TreeArrays", "build_bcbt",
    "PoisonRecConfig",
    "PolicyNetwork", "Rollout",
    "Experience", "PPOTrainer", "normalize_rewards",
    "save_policy", "load_policy",
]
