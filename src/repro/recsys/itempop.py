"""ItemPop: popularity ranking, the simplest testbed in the paper.

Items are scored by their raw click count in the (possibly poisoned) log.
Promoting a target item means making it *look* popular — the paper shows
PoisonRec learns to dump its entire budget on a single target here.
"""

from __future__ import annotations

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn.spec import shape_spec
from .base import Ranker


class ItemPop(Ranker):
    """Non-personalized popularity ranker."""

    name = "itempop"
    supports_incremental_revert = True

    def __init__(self, num_users: int, num_items: int, seed: int = 0) -> None:
        super().__init__(num_users, num_items, seed)
        self.counts = np.zeros(num_items, dtype=np.float64)

    @mutates("counts")
    def fit(self, log: InteractionLog) -> None:
        self.counts = log.item_counts().astype(np.float64)

    @mutates("counts")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        # Popularity is additive, so the update is just the poison counts
        # (applied in place: the clean buffer is reused query after query).
        self.counts += poison.item_counts()

    @mutates("counts")
    @sanctioned_channel
    def poison_revert(self, poison: InteractionLog) -> None:
        # Counts are integers stored as float64, so subtracting the same
        # poison counts restores the clean array bit-exactly.
        self.counts -= poison.item_counts()

    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        return self.counts[np.asarray(item_ids, dtype=np.int64)]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        return self.counts[candidates]

    def _state(self) -> np.ndarray:
        return self.counts

    @sanctioned_channel
    def _set_state(self, state: np.ndarray) -> None:
        self.counts = state
