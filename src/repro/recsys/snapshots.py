"""Copy-on-write ranker snapshots for the reload-and-poison hot loop.

Algorithm 1 reloads the clean ranker before every poison injection, so
snapshot/restore sits on the per-query critical path.  The seed
implementation deep-copied the whole state twice per query (once at
``snapshot``, once more inside ``restore``); this module replaces that
with a :class:`RankerSnapshot` that

* copies each array exactly once, at capture time, and marks the copy
  read-only so nothing can corrupt the clean baseline afterwards, and
* restores by ``np.copyto`` into the ranker's *existing* buffers where
  shapes/dtypes match — no allocation, no garbage-collector churn on the
  hot path — falling back to a fresh copy only when a buffer was
  replaced or resized.

A snapshot also captures the ranker's RNG stream.  ``poison_update``
implementations consume ``ranker.rng`` (negative sampling, replay
selection), so without the RNG in the snapshot each query's reward would
depend on how many queries ran before it.  Restoring the stream makes
``RecommenderSystem.attack`` a pure function of its trajectories, which
is exactly the property the parallel query engine
(:class:`repro.perf.QueryPool`) needs for its bit-exact serial/parallel
equivalence guarantee — and what makes checkpoint resume bit-identical
for the parametric rankers.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

from ..effects import pure
from ..runtime.errors import FatalEnvironmentError


class SnapshotMismatchError(FatalEnvironmentError):
    """An incremental poison revert failed to reproduce the clean state.

    Raised only in ``verify_incremental`` mode (see
    :class:`repro.recsys.system.RecommenderSystem`); it means a ranker's
    ``poison_revert`` is not the exact inverse of its ``poison_update``.
    Fatal in the campaign taxonomy: retrying the same query replays the
    same broken revert, so the supervisor must not burn retry budget.
    """


class RankerSnapshot:
    """Immutable captured ranker state plus its RNG stream.

    Produced by :meth:`repro.recsys.base.Ranker.snapshot`; consumed by
    :meth:`~repro.recsys.base.Ranker.restore`.  Array leaves are stored
    read-only, so the snapshot can be shared freely (e.g. inherited by
    forked pool workers) without defensive copies.
    """

    __slots__ = ("state", "rng_state")

    def __init__(self, state: Any, rng_state: dict) -> None:
        self.state = state
        self.rng_state = rng_state

    @classmethod
    @pure
    def capture(cls, ranker: Any) -> "RankerSnapshot":
        """Freeze ``ranker``'s current trained state and RNG stream."""
        return cls(state=freeze(ranker._state()),
                   rng_state=ranker.rng.bit_generator.state)

    def __repr__(self) -> str:
        return f"RankerSnapshot({type(self.state).__name__})"


def freeze(value: Any) -> Any:
    """Deep-copy ``value``, marking every array leaf read-only.

    The single copy made here is the *only* copy the snapshot lifecycle
    performs per array: ``thaw_into`` later writes the frozen data back
    into live buffers without allocating.
    """
    if isinstance(value, np.ndarray):
        frozen = value.copy()
        frozen.setflags(write=False)
        return frozen
    if isinstance(value, dict):
        return {key: freeze(item) for key, item in value.items()}
    if isinstance(value, list):
        return [freeze(item) for item in value]
    if isinstance(value, tuple):
        return tuple(freeze(item) for item in value)
    return copy.deepcopy(value)


def thaw_into(saved: Any, live: Any) -> Any:
    """Rebuild mutable state from ``saved``, reusing ``live`` buffers.

    Array leaves are copied in place into the matching ``live`` array
    when shape/dtype/writeability line up (zero allocation); any
    structural drift falls back to a fresh writable copy.  Non-array
    leaves are deep-copied, since rankers mutate them in place during
    ``poison_update`` (e.g. co-visitation edge dicts).
    """
    if isinstance(saved, np.ndarray):
        if (isinstance(live, np.ndarray) and live.shape == saved.shape
                and live.dtype == saved.dtype and live.flags.writeable):
            np.copyto(live, saved)
            return live
        return saved.copy()
    if isinstance(saved, dict):
        live_map = live if isinstance(live, dict) else {}
        return {key: thaw_into(item, live_map.get(key))
                for key, item in saved.items()}
    if isinstance(saved, list):
        live_items = (live if isinstance(live, list)
                      and len(live) == len(saved)
                      else [None] * len(saved))
        return [thaw_into(item, slot)
                for item, slot in zip(saved, live_items)]
    if isinstance(saved, tuple):
        live_items = (live if isinstance(live, tuple)
                      and len(live) == len(saved)
                      else (None,) * len(saved))
        return tuple(thaw_into(item, slot)
                     for item, slot in zip(saved, live_items))
    return copy.deepcopy(saved)


def states_equal(left: Any, right: Any) -> bool:
    """Exact structural equality between two ranker states.

    Arrays compare bit-exact (``array_equal``), containers recurse, and
    everything else uses ``==``.  Used by the incremental-revert
    equivalence assertion: a revert must reproduce the clean state
    *exactly*, not approximately, or serial/parallel campaigns drift.
    """
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return (isinstance(left, np.ndarray)
                and isinstance(right, np.ndarray)
                and left.shape == right.shape
                and np.array_equal(left, right))
    if isinstance(left, dict) and isinstance(right, dict):
        if left.keys() != right.keys():
            return False
        return all(states_equal(left[key], right[key]) for key in left)
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(states_equal(a, b) for a, b in zip(left, right))
    return bool(left == right)
