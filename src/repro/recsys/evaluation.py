"""Recommendation-quality evaluation (leave-one-out HR@k / NDCG@k).

Not part of the attack itself, but essential to trust the testbeds: a
ranker that cannot recommend cannot be meaningfully poisoned.  The
protocol follows the paper's data split — for each user, rank the held-out
item against sampled negatives and report hit rate and NDCG at k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.interactions import Dataset
from .base import Ranker


@dataclass
class RankingQuality:
    """Held-out ranking metrics for one ranker on one dataset."""

    hit_rate: float
    ndcg: float
    num_users: int
    k: int

    def __str__(self) -> str:
        return (f"HR@{self.k}={self.hit_rate:.3f} "
                f"NDCG@{self.k}={self.ndcg:.3f} over {self.num_users} users")


def evaluate_ranking(ranker: Ranker, dataset: Dataset,
                     held_out: Optional[Dict[int, int]] = None,
                     k: int = 10, num_negatives: int = 50,
                     seed: int = 0) -> RankingQuality:
    """Leave-one-out evaluation against sampled negatives.

    For every user with a held-out item (``dataset.test`` by default), the
    ranker scores the held-out item among ``num_negatives`` sampled
    unclicked items; a hit means it lands in the top ``k``.
    """
    held_out = held_out if held_out is not None else dataset.test
    rng = np.random.default_rng(seed)
    hits = []
    gains = []
    for user, positive in held_out.items():
        clicked = set(dataset.train.sequence(user))
        clicked.add(positive)
        negatives = []
        while len(negatives) < num_negatives:
            item = int(rng.integers(dataset.num_items))
            if item not in clicked:
                negatives.append(item)
        candidates = np.asarray([positive] + negatives, dtype=np.int64)
        scores = ranker.score(user, candidates)
        rank = int((scores > scores[0]).sum())  # items strictly above
        hits.append(1.0 if rank < k else 0.0)
        gains.append(1.0 / np.log2(rank + 2) if rank < k else 0.0)
    if not hits:
        return RankingQuality(hit_rate=0.0, ndcg=0.0, num_users=0, k=k)
    return RankingQuality(hit_rate=float(np.mean(hits)),
                          ndcg=float(np.mean(gains)),
                          num_users=len(hits), k=k)


def random_baseline_quality(dataset: Dataset, k: int = 10,
                            num_negatives: int = 50) -> float:
    """Expected HR@k of a random ranker under the same protocol."""
    return k / (num_negatives + 1)
