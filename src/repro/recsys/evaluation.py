"""Recommendation-quality evaluation (leave-one-out HR@k / NDCG@k).

Not part of the attack itself, but essential to trust the testbeds: a
ranker that cannot recommend cannot be meaningfully poisoned.  The
protocol follows the paper's data split — for each user, rank the held-out
item against sampled negatives and report hit rate and NDCG at k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.interactions import Dataset, InteractionLog
from ..data.sparse import as_sparse
from .base import Ranker


@dataclass
class RankingQuality:
    """Held-out ranking metrics for one ranker on one dataset."""

    hit_rate: float
    ndcg: float
    num_users: int
    k: int

    def __str__(self) -> str:
        return (f"HR@{self.k}={self.hit_rate:.3f} "
                f"NDCG@{self.k}={self.ndcg:.3f} over {self.num_users} users")


def sample_eval_negatives(rng: np.random.Generator, train: InteractionLog,
                          users: np.ndarray, positives: np.ndarray,
                          num_items: int, num_negatives: int,
                          max_rounds: int = 256) -> np.ndarray:
    """Batched rejection sampling of per-user unclicked negatives.

    One large uniform draw of shape ``(len(users), num_negatives)``;
    positions that collide with a clicked item (or the user's positive)
    are redrawn until none remain.  Membership is resolved for the whole
    batch at once by binary search over the train log's sorted
    ``user * num_items + item`` keys (see
    :meth:`~repro.data.sparse.SparseInteractions.sorted_pair_keys`).
    Each position is redrawn independently, so the sampler draws from
    exactly the same distribution as the scalar one-``rng.integers``-
    per-candidate loop it replaces — duplicates *within* a user's
    negatives remain possible, matching the original protocol.
    """
    users = np.asarray(users, dtype=np.int64)
    positives = np.asarray(positives, dtype=np.int64)
    clicked_keys = np.sort(np.concatenate(
        [as_sparse(train).sorted_pair_keys(),
         users * np.int64(num_items) + positives]))
    negatives = rng.integers(0, num_items,
                             size=(len(users), num_negatives))
    row_base = users[:, None] * np.int64(num_items)
    for _ in range(max_rounds):
        queries = (row_base + negatives).ravel()
        found = np.minimum(np.searchsorted(clicked_keys, queries),
                           clicked_keys.size - 1)
        colliding = (clicked_keys[found] == queries).reshape(negatives.shape)
        if not colliding.any():
            return negatives
        negatives[colliding] = rng.integers(0, num_items,
                                            size=int(colliding.sum()))
    raise ValueError(
        "negative sampling did not converge: some users have clicked "
        "nearly the whole item universe")


def evaluate_ranking(ranker: Ranker, dataset: Dataset,
                     held_out: Optional[Dict[int, int]] = None,
                     k: int = 10, num_negatives: int = 50,
                     seed: int = 0) -> RankingQuality:
    """Leave-one-out evaluation against sampled negatives.

    For every user with a held-out item (``dataset.test`` by default), the
    ranker scores the held-out item among ``num_negatives`` sampled
    unclicked items; a hit means it lands in the top ``k``.  Negatives
    come from one batched rejection draw and all users are scored through
    the ranker's vectorized ``score_batch`` in a single call.
    """
    held_out = held_out if held_out is not None else dataset.test
    rng = np.random.default_rng(seed)
    if not held_out:
        return RankingQuality(hit_rate=0.0, ndcg=0.0, num_users=0, k=k)
    users = np.fromiter(held_out.keys(), dtype=np.int64,
                        count=len(held_out))
    positives = np.fromiter((held_out[int(u)] for u in users),
                            dtype=np.int64, count=len(users))
    negatives = sample_eval_negatives(rng, dataset.train, users, positives,
                                      dataset.num_items, num_negatives)
    candidates = np.concatenate([positives[:, None], negatives], axis=1)
    scores = ranker.score_batch(users, candidates)
    ranks = (scores > scores[:, :1]).sum(axis=1)  # items strictly above
    hit = ranks < k
    gains = np.where(hit, 1.0 / np.log2(ranks + 2.0), 0.0)
    return RankingQuality(hit_rate=float(hit.mean()),
                          ndcg=float(gains.mean()),
                          num_users=len(users), k=k)


def random_baseline_quality(dataset: Dataset, k: int = 10,
                            num_negatives: int = 50) -> float:
    """Expected HR@k of a random ranker under the same protocol."""
    return k / (num_negatives + 1)
