"""BPR: Bayesian personalized ranking (Rendle et al., UAI 2009).

Matrix factorization optimized with the pairwise ranking loss
``-log sigmoid(x_ui - x_uj)`` over sampled (user, positive, negative)
triples.  Hand-vectorized numpy SGD.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn.spec import shape_spec
from .base import Ranker, sample_negatives
from .pmf import _apply_accumulated


class BPR(Ranker):
    """Pairwise-ranking matrix factorization."""

    name = "bpr"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 dim: int = 16, lr: float = 0.05, reg: float = 0.01,
                 epochs: int = 10, update_epochs: int = 3) -> None:
        super().__init__(num_users, num_items, seed)
        self.dim = dim
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.user_factors = self.rng.normal(0, 0.05, (num_users, dim))
        self.item_factors = self.rng.normal(0, 0.05, (num_items, dim))

    # ------------------------------------------------------------------
    def _sgd_epochs(self, users: np.ndarray, positives: np.ndarray,
                    epochs: int, batch_size: int = 1024) -> None:
        n = len(users)
        if n == 0:
            return
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                u, i = users[idx], positives[idx]
                j = sample_negatives(self.rng, i, self.num_items, len(idx))
                pu = self.user_factors[u]
                qi = self.item_factors[i]
                qj = self.item_factors[j]
                x = ((pu * (qi - qj)).sum(axis=1))
                sig = 1.0 / (1.0 + np.exp(np.clip(x, -60, 60)))  # d(-logsig)/dx
                grad_u = -sig[:, None] * (qi - qj) + self.reg * pu
                grad_i = -sig[:, None] * pu + self.reg * qi
                grad_j = sig[:, None] * pu + self.reg * qj
                _apply_accumulated(self.user_factors, u, grad_u, self.lr)
                _apply_accumulated(self.item_factors,
                                np.concatenate([i, j]),
                                np.concatenate([grad_i, grad_j]), self.lr)

    # ------------------------------------------------------------------
    @mutates("user_factors", "item_factors", "rng")
    def fit(self, log: InteractionLog) -> None:
        self.user_factors = self.rng.normal(0, 0.05, (self.num_users, self.dim))
        self.item_factors = self.rng.normal(0, 0.05, (self.num_items, self.dim))
        pairs = log.pairs()
        if len(pairs):
            self._sgd_epochs(pairs[:, 0], pairs[:, 1], self.epochs)

    @mutates("user_factors", "item_factors", "rng")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        p_pairs = poison.pairs()
        c_pairs = log.pairs()
        if len(c_pairs):
            replay = self.rng.choice(
                len(c_pairs),
                size=min(len(c_pairs), 4 * max(len(p_pairs), 64)),
                replace=False)
            pairs = (np.concatenate([p_pairs, c_pairs[replay]])
                     if len(p_pairs) else c_pairs[replay])
        else:
            pairs = p_pairs
        if len(pairs):
            self._sgd_epochs(pairs[:, 0], pairs[:, 1], self.update_epochs)

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        # Routed through the batched einsum (not a GEMV) so serial and
        # batched scoring share one reduction order — bit-identical.
        item_ids = np.asarray(item_ids, dtype=np.int64)
        return self.score_batch(np.asarray([user]), item_ids[None, :])[0]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        pu = self.user_factors[users]
        candidates = np.asarray(candidates)
        scores = np.empty(candidates.shape)
        # Column-at-a-time gather + reduce: one (B, d) factor slice per
        # candidate column stays cache-resident, unlike the (B, C, d)
        # blob a single einsum would gather.  Reduction order over d is
        # fixed per element, so results are batch-size invariant.
        for column in range(candidates.shape[1]):
            scores[:, column] = np.einsum(
                "nd,nd->n", pu, self.item_factors[candidates[:, column]])
        return scores

    def item_embeddings(self) -> np.ndarray:
        return self.item_factors.copy()

    def _state(self) -> Dict[str, np.ndarray]:
        return {"user": self.user_factors, "item": self.item_factors}

    @sanctioned_channel
    def _set_state(self, state: Dict[str, np.ndarray]) -> None:
        self.user_factors = state["user"]
        self.item_factors = state["item"]
