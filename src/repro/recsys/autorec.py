"""AutoRec: autoencoder collaborative filtering (Sedhain et al., WWW 2015).

U-AutoRec over the implicit user-item matrix: each user's binary click row
is encoded by a sigmoid hidden layer and decoded back to scores over every
item.  For implicit feedback the reconstruction loss is *weighted* — the
all-ones degenerate solution is avoided by giving unobserved entries a
small positive weight (the WRMF-style confidence trick).

The user-item matrix is never materialized: click profiles are stored as
per-user item sets and densified per batch, so the model scales to the
paper-size catalogs (a dense Phone-scale matrix would be gigabytes).
"""

from __future__ import annotations

from typing import Any, Dict, Set

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn import Adam, Dense, Module, Tensor, shape_spec
from ..nn import functional as F
from .base import Ranker, batch_slices, gemm_pad

#: Users per chunk in the batched scorer: bounds the two (B, num_items)
#: dense passes (input profiles + reconstruction) per chunk.
_SCORE_CHUNK_USERS = 1024


class _AutoRecNet(Module):
    def __init__(self, num_items: int, hidden: int,
                 rng: np.random.Generator) -> None:
        self.encoder = Dense(num_items, hidden, rng, activation="sigmoid")
        self.decoder = Dense(hidden, num_items, rng)

    @shape_spec("(B, N) -> (B, N)")
    def __call__(self, rows: Tensor) -> Tensor:
        return self.decoder(self.encoder(rows))


class AutoRec(Ranker):
    """U-AutoRec ranker over the implicit matrix."""

    name = "autorec"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 hidden: int = 32, lr: float = 0.01, epochs: int = 6,
                 update_epochs: int = 3, negative_weight: float = 0.1,
                 batch_size: int = 128) -> None:
        super().__init__(num_users, num_items, seed)
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.negative_weight = negative_weight
        self.batch_size = batch_size
        self._build()
        self._user_items: Dict[int, Set[int]] = {}

    def _build(self) -> None:
        self.net = _AutoRecNet(self.num_items, self.hidden, self.rng)
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)

    # ------------------------------------------------------------------
    def _profiles_from(self, log: InteractionLog) -> Dict[int, Set[int]]:
        return {user: set(seq) for user, seq in log.iter_sequences()}

    def _rows(self, users: np.ndarray) -> np.ndarray:
        """Densify the click profiles of ``users`` (batch-sized only).

        One fancy-index assignment over the batch's flattened profiles
        instead of a per-user loop (assignment order is irrelevant — all
        written cells become 1.0).
        """
        rows = np.zeros((len(users), self.num_items))
        profiles = [self._user_items.get(int(user)) for user in users]
        sizes = np.fromiter((len(p) if p else 0 for p in profiles),
                            dtype=np.int64, count=len(profiles))
        total = int(sizes.sum())
        if total:
            columns = np.fromiter(
                (item for p in profiles if p for item in p),
                dtype=np.int64, count=total)
            rows[np.repeat(np.arange(len(users)), sizes), columns] = 1.0
        return rows

    def _train(self, user_ids: np.ndarray, epochs: int) -> None:
        user_ids = np.asarray(
            [u for u in user_ids if self._user_items.get(int(u))],
            dtype=np.int64)
        if len(user_ids) == 0:
            return
        for _ in range(epochs):
            order = self.rng.permutation(user_ids)
            for start in range(0, len(order), self.batch_size):
                batch = order[start:start + self.batch_size]
                x = self._rows(batch)
                weights = np.where(x > 0, 1.0, self.negative_weight)
                self.optimizer.zero_grad()
                recon = self.net(Tensor(x))
                loss = F.mse_loss(recon, x, weight=weights)
                loss.backward()
                self.optimizer.step()

    # ------------------------------------------------------------------
    @mutates("rng", "net", "optimizer", "_user_items")
    def fit(self, log: InteractionLog) -> None:
        self.rng = np.random.default_rng(self.seed)
        self._build()
        self._user_items = self._profiles_from(log)
        self._train(np.fromiter(self._user_items, dtype=np.int64),
                    self.epochs)

    @mutates("rng", "net", "optimizer", "_user_items")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        self._user_items = self._profiles_from(log)
        poison_rows = np.asarray(poison.users, dtype=np.int64)
        replay_pool = np.asarray(
            [u for u in self._user_items if u not in poison],
            dtype=np.int64)
        replay = self.rng.choice(
            replay_pool,
            size=min(len(replay_pool), 4 * max(len(poison_rows), 16)),
            replace=False) if len(replay_pool) else replay_pool
        self._train(np.concatenate([poison_rows, replay]),
                    self.update_epochs)

    # ------------------------------------------------------------------
    def _reconstruct(self, users: np.ndarray) -> np.ndarray:
        """Decoder output rows for ``users`` (score source).

        Single-user batches are GEMM-padded so every block size produces
        bit-identical rows (see :func:`~repro.recsys.base.gemm_pad`).
        """
        padded, n = gemm_pad(np.asarray(users))
        return self.net(Tensor(self._rows(padded))).numpy()[:n]

    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        # Routed through the batched candidate-only decoder so serial
        # and batched scoring share every reduction order.
        item_ids = np.asarray(item_ids, dtype=np.int64)
        return self.score_batch(np.asarray([user]), item_ids[None, :])[0]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        """Encode per user chunk, decode only the candidate columns.

        The full decoder GEMM would reconstruct all ``num_items``
        columns to use ``C`` of them; instead each chunk runs the
        encoder once and decodes candidate columns with cache-resident
        (B, hidden) einsum reductions — halving the flops and never
        materializing a ``(B, num_items)`` reconstruction.  Encoder
        rows are GEMM-padded (`gemm_pad`) and every reduction order is
        fixed per element, so any block size produces bit-identical
        scores.
        """
        users = np.asarray(users, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        decoder_columns = self.net.decoder.weight.data.T
        decoder_bias = self.net.decoder.bias.data
        scores = np.empty(candidates.shape)
        for block in batch_slices(len(users), _SCORE_CHUNK_USERS):
            padded, n = gemm_pad(users[block])
            hidden = self.net.encoder(Tensor(self._rows(padded))).numpy()[:n]
            block_cands = candidates[block]
            out = scores[block]
            for col in range(block_cands.shape[1]):
                ids = block_cands[:, col]
                out[:, col] = (np.einsum("nh,nh->n", hidden,
                                         decoder_columns[ids])
                               + decoder_bias[ids])
        return scores

    def _state(self) -> Any:
        return {"params": [p.data for p in self.net.parameters()],
                "profiles": self._user_items}

    @sanctioned_channel
    def _set_state(self, state: Any) -> None:
        for param, data in zip(self.net.parameters(), state["params"]):
            param.assign_(data, copy=False)
        self._user_items = state["profiles"]
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)
