"""Name-based ranker registry: the paper's 8 testbed algorithms."""

from __future__ import annotations

from typing import Dict, Type

from .autorec import AutoRec
from .base import Ranker
from .bpr import BPR
from .covisitation import CoVisitation
from .gru4rec import GRU4Rec
from .itempop import ItemPop
from .neumf import NeuMF
from .ngcf import NGCF
from .pmf import PMF

#: All eight rankers, in the paper's Table III column order.
RANKER_CLASSES: Dict[str, Type[Ranker]] = {
    cls.name: cls
    for cls in (ItemPop, CoVisitation, PMF, BPR, NeuMF, AutoRec, GRU4Rec,
                NGCF)
}

RANKER_NAMES = tuple(RANKER_CLASSES)


def make_ranker(name: str, num_users: int, num_items: int, seed: int = 0,
                **kwargs) -> Ranker:
    """Instantiate a ranker by registry name."""
    try:
        cls = RANKER_CLASSES[name]
    except KeyError:
        raise ValueError(f"unknown ranker {name!r}; "
                         f"expected one of {RANKER_NAMES}") from None
    return cls(num_users, num_items, seed=seed, **kwargs)
