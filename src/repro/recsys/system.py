"""The recommender system under attack, and its black-box facade.

:class:`RecommenderSystem` wires together a dataset, a ranker, random
candidate generation and top-k selection, and implements the paper's
poisoning protocol: target items are *new* items appended to the catalog,
attackers are *new* user accounts, and every attack reloads the clean
ranker state before applying the poison update (Algorithm 1's
``DataPoisoning``).

:class:`BlackBoxEnvironment` is the attacker-facing surface.  It exposes
exactly the knowledge the paper grants (Section III-A2): the item universe,
the target item ids, crawlable item popularity, and the scalar ``RecNum``
reward after an injection — nothing else.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional, Sequence

import numpy as np

from ..data.interactions import Dataset, InteractionLog
from ..effects import pure
from .base import Ranker, batch_slices
from .candidate import (CandidateGenerator, PopularityCandidateGenerator,
                        RandomCandidateGenerator)

#: Eval users per chunk when scoring recommendations; bounds the per-chunk
#: score matrix while keeping each ranker's batched kernel saturated.
_RECOMMEND_CHUNK_USERS = 8192
from .registry import make_ranker
from .snapshots import SnapshotMismatchError, states_equal


class RecommenderSystem:
    """A candidate-generation + ranker pipeline with a poisoning hook.

    Parameters
    ----------
    dataset:
        Clean training data (items ``[0, dataset.num_items)``).
    ranker:
        A ranker name (see :mod:`repro.recsys.registry`) or an already
        constructed :class:`Ranker` sized for the extended universe.
    num_targets:
        Number of new target items appended to the catalog (paper: 8).
    num_attackers:
        Number of fake accounts available for injection (paper: N=20).
    num_original_candidates / top_k:
        Candidate-set protocol (paper: 92 random originals + targets,
        k=10).
    eval_user_sample:
        Optionally evaluate RecNum over a fixed random subset of users
        instead of all of them (speeds up large runs; None = all users).
    incremental:
        Use a ranker's O(|poison|) ``poison_revert`` delta instead of a
        full snapshot restore where supported (ItemPop, CoVisitation).
        The revert is bit-exact, so results are identical either way;
        disable only to benchmark the full-restore path.
    verify_incremental:
        After every incremental revert, assert the ranker state matches
        the clean snapshot exactly (raises
        :class:`~repro.recsys.snapshots.SnapshotMismatchError` on
        drift).  Debug/test mode: it re-validates the whole state each
        query, erasing the revert's speedup.
    """

    def __init__(self, dataset: Dataset, ranker: str | Ranker,
                 num_targets: int = 8, num_attackers: int = 20,
                 num_original_candidates: int = 92, top_k: int = 10,
                 seed: int = 0, ranker_kwargs: Optional[dict] = None,
                 eval_user_sample: Optional[int] = None,
                 candidate_generator: str | CandidateGenerator = "random",
                 incremental: bool = True,
                 verify_incremental: bool = False) -> None:
        if num_targets <= 0:
            raise ValueError("num_targets must be positive")
        self.dataset = dataset
        self.num_original_items = dataset.num_items
        self.num_targets = num_targets
        self.num_items = self.num_original_items + num_targets
        self.target_items = np.arange(self.num_original_items, self.num_items)
        self.top_k = top_k
        self.seed = seed

        real_users = dataset.train.users
        if not real_users:
            raise ValueError("dataset has no users")
        self._user_slots = max(real_users) + 1
        self.num_attackers = num_attackers
        self.attacker_users = np.arange(self._user_slots,
                                        self._user_slots + num_attackers)
        self.num_users = self._user_slots + num_attackers

        # Clean training log re-homed into the extended item universe.
        self.clean_log = InteractionLog(self.num_items)
        for user, sequence in dataset.train.iter_sequences():
            self.clean_log.add_sequence(user, sequence)

        if isinstance(ranker, str):
            self.ranker = make_ranker(ranker, self.num_users, self.num_items,
                                      seed=seed, **(ranker_kwargs or {}))
        else:
            self.ranker = ranker
        self.ranker.fit(self.clean_log)
        self._clean_state = self.ranker.snapshot()
        # Normalize the post-fit state through one restore so "never
        # poisoned" and "restored after poisoning" are the same state
        # (fresh optimizer moments, snapshot RNG stream).  This is what
        # makes it sound for attack() to skip the restore entirely when
        # the system is already clean.
        self.ranker.restore(self._clean_state)
        # Pre-built merged-log skeleton: poison rows are spliced in and
        # out of this copy each query instead of re-copying the clean log.
        self._merged_skeleton = self.clean_log.copy()
        self.incremental = incremental
        self.verify_incremental = verify_incremental
        #: Optional :class:`repro.perf.QueryProfiler` timing each attack
        #: phase (restore / merge / retrain / score).
        self.profiler = None
        self._active_poison: Optional[InteractionLog] = None

        # Frozen evaluation protocol: fixed eval users and candidate sets so
        # RecNum differences across attacks reflect the poisoning, not
        # candidate-sampling noise.
        rng = np.random.default_rng(seed + 7919)
        eval_users = np.asarray(real_users, dtype=np.int64)
        if eval_user_sample is not None and eval_user_sample < len(eval_users):
            eval_users = rng.choice(eval_users, size=eval_user_sample,
                                    replace=False)
        self.eval_users = np.sort(eval_users)
        if isinstance(candidate_generator, CandidateGenerator):
            generator = candidate_generator
        elif candidate_generator == "random":
            generator = RandomCandidateGenerator(
                self.num_original_items, self.target_items,
                num_original_candidates=num_original_candidates,
                seed=seed + 104729)
        elif candidate_generator == "popularity":
            generator = PopularityCandidateGenerator(
                self.num_original_items, self.target_items,
                popularity=self.clean_log.item_counts().astype(float),
                num_original_candidates=num_original_candidates,
                seed=seed + 104729)
        else:
            raise ValueError(
                f"unknown candidate generator {candidate_generator!r}; "
                "use 'random', 'popularity', or a CandidateGenerator")
        self.candidate_generator = generator
        self.candidates = generator.generate(len(self.eval_users))
        self._poisoned = False
        self.query_count = 0

    # ------------------------------------------------------------------
    # Recommendation + measurement
    # ------------------------------------------------------------------
    @pure
    def recommend(self) -> np.ndarray:
        """Top-k candidate item ids per evaluation user.

        Scored through the ranker's vectorized ``score_batch`` in
        user chunks: chunking is row-wise, so results are bit-identical
        to one monolithic call while the intermediate score matrix stays
        memory-bounded at 10⁵+ eval users.
        """
        top = np.empty((len(self.eval_users), self.top_k), dtype=np.int64)
        for block in batch_slices(len(self.eval_users),
                                  _RECOMMEND_CHUNK_USERS):
            scores = self.ranker.score_batch(self.eval_users[block],
                                             self.candidates[block])
            picked = np.argpartition(-scores, self.top_k - 1,
                                     axis=1)[:, :self.top_k]
            top[block] = np.take_along_axis(self.candidates[block], picked,
                                            axis=1)
        return top

    @pure
    def recnum(self) -> int:
        """The paper's RecNum: total target-item slots across all top-k lists."""
        recommended = self.recommend()
        return int((recommended >= self.num_original_items).sum())

    @pure
    def target_exposures(self) -> np.ndarray:
        """Per-target exposure counts (RecNum broken down by target item).

        Used to verify the paper's Section IV-D observation that PoisonRec
        can promote several targets simultaneously.
        """
        recommended = self.recommend()
        exposures = np.zeros(self.num_targets, dtype=np.int64)
        hits = recommended[recommended >= self.num_original_items]
        np.add.at(exposures, hits - self.num_original_items, 1)
        return exposures

    # ------------------------------------------------------------------
    # Poisoning
    # ------------------------------------------------------------------
    def build_poison_log(self,
                         trajectories: Sequence[Sequence[int]]
                         ) -> InteractionLog:
        """Map attack trajectories onto attacker accounts.

        Trajectory ``i`` becomes the click sequence of attacker account
        ``i``; item ids must be in the extended universe (targets are
        ``system.target_items``).
        """
        if len(trajectories) > self.num_attackers:
            raise ValueError(
                f"{len(trajectories)} trajectories exceed the "
                f"{self.num_attackers} attacker accounts")
        poison = InteractionLog(self.num_items)
        for i, trajectory in enumerate(trajectories):
            poison.add_sequence(int(self.attacker_users[i]), trajectory)
        return poison

    def _phase(self, name: str):
        """Profiling context for one attack phase (no-op when unprofiled)."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.phase(name)

    def reset(self, force: bool = False) -> None:
        """Reload the clean ranker state (pre-poison).

        Already-clean systems return immediately — the restore would be
        a no-op by construction (the post-fit state is normalized through
        one restore in ``__init__``).  When the active poison is known
        and the ranker supports it, the reload is an O(|poison|)
        incremental revert instead of a full snapshot restore; ``force``
        bypasses both shortcuts and always restores the snapshot.
        """
        if not self._poisoned and not force:
            return
        poison = self._active_poison
        if (not force and self.incremental and poison is not None
                and self.ranker.supports_incremental_revert):
            self.ranker.poison_revert(poison)
            if self.verify_incremental:
                self._assert_clean_state()
        else:
            self.ranker.restore(self._clean_state)
        self._poisoned = False
        self._active_poison = None

    def _assert_clean_state(self) -> None:
        """Verify an incremental revert reproduced the clean state exactly."""
        if not states_equal(self.ranker._state(), self._clean_state.state):
            raise SnapshotMismatchError(
                f"incremental poison revert on {self.ranker.name!r} did "
                "not reproduce the clean snapshot — poison_revert is not "
                "the exact inverse of poison_update")

    def inject(self, trajectories: Sequence[Sequence[int]]) -> None:
        """Inject fake behaviors and update the ranker (no reset).

        The merged (clean + poison) log handed to the ranker is the
        pre-built skeleton with the poison rows spliced in for the
        duration of the update — no per-query copy of the clean log.

        If the ranker's retraining raises, the clean snapshot is
        restored before the exception propagates: a failed poison update
        must never leave a half-updated ranker behind, or the next
        measurement would read a state no attack actually produced.
        This is the consistency invariant ``repro.runtime``'s
        retry/backoff loop relies on when it re-issues a failed query.
        """
        with self._phase("merge"):
            poison = self.build_poison_log(trajectories)
            self._merged_skeleton.splice(poison)
        try:
            with self._phase("retrain"):
                self.ranker.poison_update(self._merged_skeleton, poison)
        except Exception:
            self.ranker.restore(self._clean_state)
            self._poisoned = False
            self._active_poison = None
            raise
        finally:
            self._merged_skeleton.unsplice(poison)
        # Stacked injections (no reset in between) have no single active
        # poison to revert; the next reset then falls back to the full
        # snapshot restore instead of an (incorrect) incremental revert.
        self._active_poison = None if self._poisoned else poison
        self._poisoned = True

    def attack(self, trajectories: Sequence[Sequence[int]]) -> int:
        """The full poisoning round: reload clean state, inject, measure.

        This is Algorithm 1's ``DataPoisoning`` plus the RecNum readout,
        and the primitive every attack method in this package is built on.
        Each call counts as one black-box query (``query_count``), the
        budget unit for comparing learning-based attacks fairly.

        Because the reload restores the ranker's full state *including
        its RNG stream*, the returned RecNum is a pure function of
        ``trajectories`` — independent of query order — which is the
        exact-equivalence contract :class:`repro.perf.QueryPool` relies
        on to fan queries out across worker processes.
        """
        with self._phase("restore"):
            self.reset()
        self.inject(trajectories)
        self.query_count += 1
        with self._phase("score"):
            return self.recnum()

    def __repr__(self) -> str:
        return (f"RecommenderSystem(ranker={self.ranker.name!r}, "
                f"dataset={self.dataset.name!r}, "
                f"items={self.num_original_items}+{self.num_targets}, "
                f"eval_users={len(self.eval_users)})")


class BlackBoxEnvironment:
    """Attacker's view of a :class:`RecommenderSystem`.

    Exposes only the knowledge the paper's threat model allows:

    * the browsable item universe and which items are the attacker's own
      targets,
    * crawlable item popularity (sales volume) of the *clean* system,
    * the scalar RecNum signal after injecting an attack.

    The ranker type, its parameters, other users' logs and per-user
    recommendation lists are all hidden.

    This surface (the attributes above plus ``attack`` /
    ``clean_recnum`` / ``query_count``) is the contract wrappers build
    on — e.g. :class:`repro.runtime.faults.FaultyEnvironment`, which
    decorates it with an injected fault schedule for chaos testing.
    """

    def __init__(self, system: RecommenderSystem) -> None:
        self._system = system
        self.num_original_items = system.num_original_items
        self.num_items = system.num_items
        self.target_items = system.target_items.copy()
        self.num_attackers = system.num_attackers
        self.item_popularity = (
            system.clean_log.item_counts().astype(np.float64))

    def attack(self, trajectories: Sequence[Sequence[int]]) -> int:
        """Inject trajectories into the black box; returns observed RecNum."""
        return self._system.attack(trajectories)

    def clean_recnum(self) -> int:
        """RecNum with no poisoning (the pre-attack baseline exposure)."""
        self._system.reset()
        return self._system.recnum()

    @property
    def query_count(self) -> int:
        """How many poisoning rounds this environment has served."""
        return self._system.query_count
