"""NeuMF: neural matrix factorization (He et al., WWW 2017).

Fuses a GMF branch (element-wise product of user/item embeddings) with an
MLP branch over concatenated embeddings; a final linear layer over the
concatenated branch outputs produces the preference logit.  Trained with
binary cross-entropy over positives and sampled negatives.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn import (Adam, Dense, Embedding, MLP, Module, Tensor,
                  concatenate, shape_spec)
from ..nn import functional as F
from .base import Ranker, batch_slices, gemm_pad, sample_negatives

#: Flattened (user, item) rows per forward pass in the batched scorer.
_SCORE_CHUNK_PAIRS = 262144


class _NeuMFNet(Module):
    def __init__(self, num_users: int, num_items: int, dim: int,
                 rng: np.random.Generator) -> None:
        self.user_gmf = Embedding(num_users, dim, rng)
        self.item_gmf = Embedding(num_items, dim, rng)
        self.user_mlp = Embedding(num_users, dim, rng)
        self.item_mlp = Embedding(num_items, dim, rng)
        self.mlp = MLP([2 * dim, dim, dim // 2], rng)
        self.out = Dense(dim + dim // 2, 1, rng)

    @shape_spec("(B,), (B,) -> (B,)")
    def logits(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = self.user_gmf(users) * self.item_gmf(items)
        mlp_in = concatenate([self.user_mlp(users), self.item_mlp(items)],
                             axis=1)
        mlp_out = self.mlp(mlp_in)
        fused = concatenate([gmf, mlp_out], axis=1)
        return self.out(fused).reshape(-1)


class NeuMF(Ranker):
    """Neural collaborative filtering ranker."""

    name = "neumf"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 dim: int = 8, lr: float = 0.01, epochs: int = 4,
                 update_epochs: int = 8, update_lr: float = 0.02,
                 negatives_per_positive: int = 2,
                 batch_size: int = 512) -> None:
        super().__init__(num_users, num_items, seed)
        self.dim = dim
        self.lr = lr
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.update_lr = update_lr
        self.negatives_per_positive = negatives_per_positive
        self.batch_size = batch_size
        self._build()

    def _build(self) -> None:
        self.net = _NeuMFNet(self.num_users, self.num_items, self.dim,
                             self.rng)
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)

    # ------------------------------------------------------------------
    def _examples(self, log: InteractionLog) -> tuple:
        pairs = log.pairs()
        if len(pairs) == 0:
            return np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        users, items = pairs[:, 0], pairs[:, 1]
        k = self.negatives_per_positive
        neg_items = sample_negatives(self.rng, items, self.num_items,
                                     len(users) * k)
        all_users = np.concatenate([users, np.repeat(users, k)])
        all_items = np.concatenate([items, neg_items])
        labels = np.concatenate([np.ones(len(users)),
                                 np.zeros(len(users) * k)])
        return all_users, all_items, labels

    def _train(self, users: np.ndarray, items: np.ndarray,
               labels: np.ndarray, epochs: int) -> None:
        n = len(users)
        if n == 0:
            return
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                self.optimizer.zero_grad()
                logits = self.net.logits(users[idx], items[idx])
                loss = F.binary_cross_entropy_with_logits(logits, labels[idx])
                loss.backward()
                self.optimizer.step()

    # ------------------------------------------------------------------
    @mutates("rng", "net", "optimizer")
    def fit(self, log: InteractionLog) -> None:
        self.rng = np.random.default_rng(self.seed)
        self._build()
        self._train(*self._examples(log), epochs=self.epochs)

    @mutates("rng", "net", "optimizer")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        p_users, p_items, p_labels = self._examples(poison)
        c_users, c_items, c_labels = self._examples(log)
        if len(c_users):
            replay = self.rng.choice(
                len(c_users),
                size=min(len(c_users), 4 * max(len(p_users), 64)),
                replace=False)
            users = np.concatenate([p_users, c_users[replay]])
            items = np.concatenate([p_items, c_items[replay]])
            labels = np.concatenate([p_labels, c_labels[replay]])
        else:
            users, items, labels = p_users, p_items, p_labels
        # Incremental retrains in production systems typically run with a
        # fresh (often larger) step size; this is also what lets a modest
        # poison budget move the model at all.
        self.optimizer = Adam(list(self.net.parameters()), lr=self.update_lr)
        self._train(users, items, labels, epochs=self.update_epochs)

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        # Routed through the factored batched forward so serial and
        # batched scoring share every reduction order — bit-identical.
        item_ids = np.asarray(item_ids, dtype=np.int64)
        return self.score_batch(np.asarray([user]), item_ids[None, :])[0]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        """Factored forward over all (user, candidate) pairs.

        The naive flattened pass pays four per-pair embedding gathers,
        two concats and the full first MLP layer per pair — all
        memory-bound.  This override exploits the network's structure
        instead: the first MLP layer splits into a per-user half (one
        GEMM over the eval users, reused across all candidates) and a
        per-item half, and the GMF branch folds its slice of the output
        weights into the user embeddings, leaving per candidate column
        only (B, dim)-sized gathers, GEMMs and dot products that stay
        cache-resident.  Each element's reduction orders are fixed and
        GEMM rows are batch-invariant (``gemm_pad``), so the result is
        identical for any batch composition or chunk size.
        """
        users = np.asarray(users, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        net = self.net
        layer1, layer2 = net.mlp.layers
        w1 = layer1.weight.data
        dim = self.dim
        out_w = net.out.weight.data
        out_b = float(net.out.bias.data[0])
        w2 = layer2.weight.data
        b2 = layer2.bias.data
        mlp_w = out_w[dim:, 0]

        n, c = candidates.shape
        scores = np.empty((n, c))
        chunk = max(1, _SCORE_CHUNK_PAIRS // max(c, 1))
        for block in batch_slices(n, chunk):
            block_users = users[block]
            block_cands = candidates[block]
            padded, rows = gemm_pad(net.user_mlp.weight.data[block_users])
            user_part = (padded @ w1[:dim])[:rows] + layer1.bias.data
            # GMF branch with the output head's GMF slice folded into
            # the user embeddings, once per block.
            user_gmf = net.user_gmf.weight.data[block_users] * out_w[:dim, 0]
            out = scores[block]
            for col in range(c):
                ids = block_cands[:, col]
                padded, rows = gemm_pad(net.item_mlp.weight.data[ids])
                hidden = np.maximum(
                    user_part + (padded @ w1[dim:])[:rows], 0.0)
                padded, rows = gemm_pad(hidden)
                mlp_out = (padded @ w2)[:rows] + b2
                out[:, col] = (np.einsum("nd,nd->n", user_gmf,
                                         net.item_gmf.weight.data[ids])
                               + np.einsum("nk,k->n", mlp_out, mlp_w)
                               + out_b)
        return scores

    def item_embeddings(self) -> np.ndarray:
        return self.net.item_gmf.weight.numpy().copy()

    def _state(self) -> Any:
        return [p.data for p in self.net.parameters()]

    @sanctioned_channel
    def _set_state(self, state: Any) -> None:
        for param, data in zip(self.net.parameters(), state):
            param.assign_(data, copy=False)
        # Fresh optimizer moments so every restore+update run is independent
        # of earlier poisoning runs.
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)
