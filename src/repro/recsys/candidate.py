"""Candidate generation for the recommendation pipeline.

The paper's evaluation protocol (Section IV-A): for each user, the
candidate set is 92 randomly selected original items plus the 8 target
items; the ranker then picks the top-10.  Random candidate generation is
used "for evaluation efficiency" — whether the targets win among random
competitors reflects how well they were promoted.

Production systems use a real candidate-generation model (the paper's
Section III-A1), so two further generators are provided:

* :class:`PopularityCandidateGenerator` — a popularity head plus a random
  exploration tail, the simplest production heuristic;
* :class:`ModelCandidateGenerator` — per-user top-C retrieval from a
  two-tower factor model (here: PMF factors), the YouTube-style design
  the paper cites.

All generators append the full target set so RecNum stays measurable;
whether that is realistic depends on the attack's progress — a production
candidate model only surfaces targets once poisoning lifts them, which
the model generator reflects when re-fit on the poisoned log.
"""

from __future__ import annotations

import abc

import numpy as np

#: Cell budget per chunk for the vectorized samplers (keys matrices are
#: ``rows x num_items`` floats; 2^22 cells ≈ 32 MB per chunk).
_CHUNK_CELLS = 1 << 22


def _sample_without_replacement(rng: np.random.Generator, pool_size: int,
                                count: int, num_rows: int) -> np.ndarray:
    """``num_rows`` independent uniform ``count``-subsets of ``range(pool_size)``.

    Vectorized via random sort keys: the ``count`` smallest keys of an
    i.i.d. uniform row form a uniform random subset (order within the
    subset is arbitrary — callers shuffle downstream).  Chunked so the
    key matrix stays ~tens of MB regardless of ``num_rows``.
    """
    count = min(count, pool_size)
    out = np.empty((num_rows, count), dtype=np.int64)
    if count == 0:
        return out
    chunk = max(1, _CHUNK_CELLS // max(pool_size, 1))
    for start in range(0, num_rows, chunk):
        rows = min(chunk, num_rows - start)
        keys = rng.random((rows, pool_size))
        if count >= pool_size:
            out[start:start + rows] = np.arange(pool_size, dtype=np.int64)
        else:
            out[start:start + rows] = np.argpartition(
                keys, count - 1, axis=1)[:, :count]
    return out


class CandidateGenerator(abc.ABC):
    """Builds per-user candidate sets of original items plus all targets."""

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 num_original_candidates: int = 92, seed: int = 0) -> None:
        if num_original_items <= 0:
            raise ValueError("num_original_items must be positive")
        self.num_original_items = num_original_items
        self.target_items = np.asarray(target_items, dtype=np.int64)
        self.num_original_candidates = min(num_original_candidates,
                                           num_original_items)
        self.rng = np.random.default_rng(seed)

    @property
    def candidate_size(self) -> int:
        """Originals per row plus the always-included target block."""
        return self.num_original_candidates + len(self.target_items)

    @abc.abstractmethod
    def _original_candidates(self, row: int) -> np.ndarray:
        """The original-item part of one user's candidate set."""

    def _original_candidates_batch(self, num_users: int) -> np.ndarray:
        """All rows' originals at once, shape ``(num_users, k)``.

        Default stacks the per-row hook; the built-in generators
        override this with fully vectorized samplers.
        """
        return np.stack([np.asarray(self._original_candidates(row),
                                    dtype=np.int64)
                         for row in range(num_users)])

    def generate(self, num_users: int) -> np.ndarray:
        """Candidate matrix of shape ``(num_users, candidate_size)``.

        Each row mixes the generator's originals with the targets and is
        shuffled so candidate position carries no information (important
        for deterministic tie-breaking in top-k selection).  The whole
        matrix is built vectorized: originals come from
        :meth:`_original_candidates_batch` and the per-row shuffle is an
        argsort over i.i.d. random keys (a uniform permutation per row),
        chunked to bound peak memory.
        """
        originals = self._original_candidates_batch(num_users)
        rows = np.empty((num_users, self.candidate_size), dtype=np.int64)
        rows[:, :originals.shape[1]] = originals
        rows[:, originals.shape[1]:] = self.target_items
        chunk = max(1, _CHUNK_CELLS // max(self.candidate_size, 1))
        for start in range(0, num_users, chunk):
            block = rows[start:start + chunk]
            keys = self.rng.random(block.shape)
            order = np.argsort(keys, axis=1, kind="stable")
            rows[start:start + chunk] = np.take_along_axis(block, order,
                                                           axis=1)
        return rows


class RandomCandidateGenerator(CandidateGenerator):
    """The paper's protocol: uniform random originals per user."""

    def _original_candidates(self, row: int) -> np.ndarray:
        return self.rng.choice(self.num_original_items,
                               size=self.num_original_candidates,
                               replace=False)

    def _original_candidates_batch(self, num_users: int) -> np.ndarray:
        return _sample_without_replacement(self.rng,
                                           self.num_original_items,
                                           self.num_original_candidates,
                                           num_users)


class PopularityCandidateGenerator(CandidateGenerator):
    """Popularity head + random exploration tail.

    ``head_fraction`` of each candidate set is the globally most popular
    items (shared across users); the remainder is sampled uniformly from
    the rest — a common non-personalized production fallback.
    """

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 popularity: np.ndarray,
                 num_original_candidates: int = 92, seed: int = 0,
                 head_fraction: float = 0.5) -> None:
        super().__init__(num_original_items, target_items,
                         num_original_candidates, seed)
        if not 0.0 <= head_fraction <= 1.0:
            raise ValueError("head_fraction must be in [0, 1]")
        popularity = np.asarray(popularity[:num_original_items], dtype=float)
        head_size = int(round(self.num_original_candidates * head_fraction))
        order = np.argsort(-popularity, kind="stable")
        self.head = order[:head_size].astype(np.int64)
        self.tail_pool = order[head_size:].astype(np.int64)

    def _original_candidates(self, row: int) -> np.ndarray:
        tail_size = self.num_original_candidates - len(self.head)
        if tail_size <= 0 or len(self.tail_pool) == 0:
            return self.head[:self.num_original_candidates]
        tail = self.rng.choice(self.tail_pool,
                               size=min(tail_size, len(self.tail_pool)),
                               replace=False)
        originals = np.concatenate([self.head, tail])
        return originals[:self.num_original_candidates]

    def _original_candidates_batch(self, num_users: int) -> np.ndarray:
        tail_size = self.num_original_candidates - len(self.head)
        if tail_size <= 0 or len(self.tail_pool) == 0:
            return np.broadcast_to(
                self.head[:self.num_original_candidates],
                (num_users, min(len(self.head),
                                self.num_original_candidates))).copy()
        tail_idx = _sample_without_replacement(self.rng,
                                               len(self.tail_pool),
                                               tail_size, num_users)
        originals = np.empty(
            (num_users, len(self.head) + tail_idx.shape[1]), dtype=np.int64)
        originals[:, :len(self.head)] = self.head
        originals[:, len(self.head):] = self.tail_pool[tail_idx]
        return originals[:, :self.num_original_candidates]


class ModelCandidateGenerator(CandidateGenerator):
    """Two-tower retrieval: per-user top-C originals by factor dot product.

    ``user_factors``/``item_factors`` typically come from a PMF/BPR model
    fit on the (possibly poisoned) log — call :meth:`refresh` after the
    retrieval model retrains so candidate sets follow the poisoning, as a
    production funnel would.
    """

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 user_factors: np.ndarray, item_factors: np.ndarray,
                 user_ids: np.ndarray,
                 num_original_candidates: int = 92, seed: int = 0,
                 exploration_fraction: float = 0.2) -> None:
        super().__init__(num_original_items, target_items,
                         num_original_candidates, seed)
        if not 0.0 <= exploration_fraction <= 1.0:
            raise ValueError("exploration_fraction must be in [0, 1]")
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.exploration_fraction = exploration_fraction
        self.refresh(user_factors, item_factors)

    def refresh(self, user_factors: np.ndarray,
                item_factors: np.ndarray) -> None:
        """Recompute retrieval scores from updated tower factors."""
        self._scores = (user_factors[self.user_ids]
                        @ item_factors[:self.num_original_items].T)

    def _original_candidates(self, row: int) -> np.ndarray:
        count = self.num_original_candidates
        explore = int(round(count * self.exploration_fraction))
        retrieve = count - explore
        order = np.argsort(-self._scores[row], kind="stable")
        head = order[:retrieve].astype(np.int64)
        if explore > 0:
            pool = np.setdiff1d(np.arange(self.num_original_items), head)
            extra = self.rng.choice(pool, size=min(explore, len(pool)),
                                    replace=False)
            head = np.concatenate([head, extra])
        return head[:count]

    def _original_candidates_batch(self, num_users: int) -> np.ndarray:
        count = self.num_original_candidates
        explore = int(round(count * self.exploration_fraction))
        retrieve = count - explore
        explore = min(explore, self.num_original_items - retrieve)
        heads = np.argsort(-self._scores[:num_users], axis=1,
                           kind="stable")[:, :retrieve].astype(np.int64)
        if explore <= 0:
            return heads[:, :count]
        originals = np.empty((num_users, retrieve + explore), dtype=np.int64)
        originals[:, :retrieve] = heads
        chunk = max(1, _CHUNK_CELLS // max(self.num_original_items, 1))
        for start in range(0, num_users, chunk):
            rows = min(chunk, num_users - start)
            # Uniform `explore`-subsets of the non-head pool: random keys
            # with head positions masked out, then a partial sort.
            keys = self.rng.random((rows, self.num_original_items))
            np.put_along_axis(keys, heads[start:start + rows], np.inf,
                              axis=1)
            originals[start:start + rows, retrieve:] = np.argpartition(
                keys, explore - 1, axis=1)[:, :explore]
        return originals[:, :count]
