"""Candidate generation for the recommendation pipeline.

The paper's evaluation protocol (Section IV-A): for each user, the
candidate set is 92 randomly selected original items plus the 8 target
items; the ranker then picks the top-10.  Random candidate generation is
used "for evaluation efficiency" — whether the targets win among random
competitors reflects how well they were promoted.

Production systems use a real candidate-generation model (the paper's
Section III-A1), so two further generators are provided:

* :class:`PopularityCandidateGenerator` — a popularity head plus a random
  exploration tail, the simplest production heuristic;
* :class:`ModelCandidateGenerator` — per-user top-C retrieval from a
  two-tower factor model (here: PMF factors), the YouTube-style design
  the paper cites.

All generators append the full target set so RecNum stays measurable;
whether that is realistic depends on the attack's progress — a production
candidate model only surfaces targets once poisoning lifts them, which
the model generator reflects when re-fit on the poisoned log.
"""

from __future__ import annotations

import abc

import numpy as np


class CandidateGenerator(abc.ABC):
    """Builds per-user candidate sets of original items plus all targets."""

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 num_original_candidates: int = 92, seed: int = 0) -> None:
        if num_original_items <= 0:
            raise ValueError("num_original_items must be positive")
        self.num_original_items = num_original_items
        self.target_items = np.asarray(target_items, dtype=np.int64)
        self.num_original_candidates = min(num_original_candidates,
                                           num_original_items)
        self.rng = np.random.default_rng(seed)

    @property
    def candidate_size(self) -> int:
        """Originals per row plus the always-included target block."""
        return self.num_original_candidates + len(self.target_items)

    @abc.abstractmethod
    def _original_candidates(self, row: int) -> np.ndarray:
        """The original-item part of one user's candidate set."""

    def generate(self, num_users: int) -> np.ndarray:
        """Candidate matrix of shape ``(num_users, candidate_size)``.

        Each row mixes the generator's originals with the targets and is
        shuffled so candidate position carries no information (important
        for deterministic tie-breaking in top-k selection).
        """
        rows = np.empty((num_users, self.candidate_size), dtype=np.int64)
        for row in range(num_users):
            originals = self._original_candidates(row)
            candidates = np.concatenate([originals, self.target_items])
            self.rng.shuffle(candidates)
            rows[row] = candidates
        return rows


class RandomCandidateGenerator(CandidateGenerator):
    """The paper's protocol: uniform random originals per user."""

    def _original_candidates(self, row: int) -> np.ndarray:
        return self.rng.choice(self.num_original_items,
                               size=self.num_original_candidates,
                               replace=False)


class PopularityCandidateGenerator(CandidateGenerator):
    """Popularity head + random exploration tail.

    ``head_fraction`` of each candidate set is the globally most popular
    items (shared across users); the remainder is sampled uniformly from
    the rest — a common non-personalized production fallback.
    """

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 popularity: np.ndarray,
                 num_original_candidates: int = 92, seed: int = 0,
                 head_fraction: float = 0.5) -> None:
        super().__init__(num_original_items, target_items,
                         num_original_candidates, seed)
        if not 0.0 <= head_fraction <= 1.0:
            raise ValueError("head_fraction must be in [0, 1]")
        popularity = np.asarray(popularity[:num_original_items], dtype=float)
        head_size = int(round(self.num_original_candidates * head_fraction))
        order = np.argsort(-popularity, kind="stable")
        self.head = order[:head_size].astype(np.int64)
        self.tail_pool = order[head_size:].astype(np.int64)

    def _original_candidates(self, row: int) -> np.ndarray:
        tail_size = self.num_original_candidates - len(self.head)
        if tail_size <= 0 or len(self.tail_pool) == 0:
            return self.head[:self.num_original_candidates]
        tail = self.rng.choice(self.tail_pool,
                               size=min(tail_size, len(self.tail_pool)),
                               replace=False)
        originals = np.concatenate([self.head, tail])
        return originals[:self.num_original_candidates]


class ModelCandidateGenerator(CandidateGenerator):
    """Two-tower retrieval: per-user top-C originals by factor dot product.

    ``user_factors``/``item_factors`` typically come from a PMF/BPR model
    fit on the (possibly poisoned) log — call :meth:`refresh` after the
    retrieval model retrains so candidate sets follow the poisoning, as a
    production funnel would.
    """

    def __init__(self, num_original_items: int, target_items: np.ndarray,
                 user_factors: np.ndarray, item_factors: np.ndarray,
                 user_ids: np.ndarray,
                 num_original_candidates: int = 92, seed: int = 0,
                 exploration_fraction: float = 0.2) -> None:
        super().__init__(num_original_items, target_items,
                         num_original_candidates, seed)
        if not 0.0 <= exploration_fraction <= 1.0:
            raise ValueError("exploration_fraction must be in [0, 1]")
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.exploration_fraction = exploration_fraction
        self.refresh(user_factors, item_factors)

    def refresh(self, user_factors: np.ndarray,
                item_factors: np.ndarray) -> None:
        """Recompute retrieval scores from updated tower factors."""
        self._scores = (user_factors[self.user_ids]
                        @ item_factors[:self.num_original_items].T)

    def _original_candidates(self, row: int) -> np.ndarray:
        count = self.num_original_candidates
        explore = int(round(count * self.exploration_fraction))
        retrieve = count - explore
        order = np.argsort(-self._scores[row], kind="stable")
        head = order[:retrieve].astype(np.int64)
        if explore > 0:
            pool = np.setdiff1d(np.arange(self.num_original_items), head)
            extra = self.rng.choice(pool, size=min(explore, len(pool)),
                                    replace=False)
            head = np.concatenate([head, extra])
        return head[:count]
