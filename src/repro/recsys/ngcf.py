"""NGCF: neural graph collaborative filtering (Wang et al., SIGIR 2019).

Embeddings for users and items are propagated over the normalized
user-item bipartite graph.  Each layer computes

    E(l+1) = LeakyReLU( (A_hat + I) E(l) W1 + (A_hat E(l)) * E(l) W2 )

with A_hat = D^-1/2 A D^-1/2, and the final representation concatenates
all layers.  Trained with the BPR pairwise loss.  The adjacency stays
sparse (scipy CSR) via the autograd ``spmm`` op.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn import Adam, Module, Tensor, concatenate, shape_spec
from ..nn import functional as F
from ..nn.init import xavier_uniform
from .base import Ranker, sample_negatives


class _NGCFNet(Module):
    def __init__(self, num_nodes: int, dim: int, num_layers: int,
                 rng: np.random.Generator) -> None:
        self.embedding = Tensor(rng.normal(0, 0.05, (num_nodes, dim)),
                                requires_grad=True, name="ngcf.embedding")
        self.w1 = [Tensor(xavier_uniform(rng, dim, dim), requires_grad=True,
                          name=f"ngcf.w1.{layer}")
                   for layer in range(num_layers)]
        self.w2 = [Tensor(xavier_uniform(rng, dim, dim), requires_grad=True,
                          name=f"ngcf.w2.{layer}")
                   for layer in range(num_layers)]
        self.num_layers = num_layers

    @shape_spec("_ -> (N, F)")
    def propagate(self, adjacency: sp.csr_matrix) -> Tensor:
        """All-layer concatenated node representations."""
        layers = [self.embedding]
        current = self.embedding
        for w1, w2 in zip(self.w1, self.w2):
            neighbor = F.spmm(adjacency, current)
            message = (neighbor + current) @ w1 + (neighbor * current) @ w2
            current = F.leaky_relu(message)
            layers.append(current)
        return concatenate(layers, axis=1)


class NGCF(Ranker):
    """Graph collaborative filtering ranker."""

    name = "ngcf"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 dim: int = 16, num_layers: int = 2, lr: float = 0.01,
                 reg: float = 1e-4, epochs: int = 6, update_epochs: int = 3,
                 batches_per_epoch: int = 4, batch_size: int = 1024) -> None:
        super().__init__(num_users, num_items, seed)
        self.dim = dim
        self.num_layers = num_layers
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batches_per_epoch = batches_per_epoch
        self.batch_size = batch_size
        self._build()
        self._adjacency = sp.csr_matrix(
            (num_users + num_items, num_users + num_items))
        # ``_final`` is maintained eagerly (here, after every ``_train``
        # and by snapshot restore) so the score path never writes state —
        # a lazily cached representation would make ``score`` impure and
        # break the @pure contract effectcheck verifies.
        self._refresh_final()

    def _build(self) -> None:
        self.net = _NGCFNet(self.num_users + self.num_items, self.dim,
                            self.num_layers, self.rng)
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)

    # ------------------------------------------------------------------
    def _build_adjacency(self, log: InteractionLog) -> sp.csr_matrix:
        pairs = log.pairs()
        n = self.num_users + self.num_items
        if len(pairs) == 0:
            return sp.csr_matrix((n, n))
        rows = pairs[:, 0]
        cols = pairs[:, 1] + self.num_users
        data = np.ones(len(pairs))
        adjacency = sp.coo_matrix(
            (np.concatenate([data, data]),
             (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
            shape=(n, n)).tocsr()
        adjacency.sum_duplicates()
        degree = np.asarray(adjacency.sum(axis=1)).ravel()
        inv_sqrt = np.divide(1.0, np.sqrt(degree),
                             out=np.zeros_like(degree), where=degree > 0)
        norm = sp.diags(inv_sqrt)
        return (norm @ adjacency @ norm).tocsr()

    def _train(self, pairs: np.ndarray, epochs: int) -> None:
        if len(pairs) == 0:
            self._refresh_final()
            return
        for _ in range(epochs):
            for _ in range(self.batches_per_epoch):
                idx = self.rng.integers(0, len(pairs),
                                        size=min(self.batch_size, len(pairs)))
                users = pairs[idx, 0]
                positives = pairs[idx, 1]
                negatives = sample_negatives(self.rng, positives,
                                             self.num_items, len(idx))
                self.optimizer.zero_grad()
                final = self.net.propagate(self._adjacency)
                user_repr = final[users]
                pos_repr = final[positives + self.num_users]
                neg_repr = final[negatives + self.num_users]
                x = ((user_repr * (pos_repr - neg_repr)).sum(axis=1))
                loss = -F.logsigmoid(x).mean()
                reg = (user_repr * user_repr).mean() + (
                    pos_repr * pos_repr).mean()
                total = loss + reg * self.reg
                total.backward()
                self.optimizer.step()
        self._refresh_final()

    def _refresh_final(self) -> None:
        self._final = self.net.propagate(self._adjacency).numpy()

    # ------------------------------------------------------------------
    @mutates("rng", "net", "optimizer", "_adjacency", "_final")
    def fit(self, log: InteractionLog) -> None:
        self.rng = np.random.default_rng(self.seed)
        self._build()
        self._adjacency = self._build_adjacency(log)
        self._train(log.pairs(), self.epochs)

    @mutates("rng", "net", "optimizer", "_adjacency", "_final")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        self._adjacency = self._build_adjacency(log)
        p_pairs = poison.pairs()
        c_pairs = log.pairs()
        if len(c_pairs):
            replay = self.rng.choice(
                len(c_pairs),
                size=min(len(c_pairs), 4 * max(len(p_pairs), 64)),
                replace=False)
            pairs = (np.concatenate([p_pairs, c_pairs[replay]])
                     if len(p_pairs) else c_pairs[replay])
        else:
            pairs = p_pairs
        self._train(pairs, self.update_epochs)

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        # Routed through the batched einsum (not a GEMV) so serial and
        # batched scoring share one reduction order — bit-identical.
        item_ids = np.asarray(item_ids, dtype=np.int64)
        return self.score_batch(np.asarray([user]), item_ids[None, :])[0]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        user_repr = self._final[users]
        item_rows = np.asarray(candidates) + self.num_users
        scores = np.empty(candidates.shape)
        # Column-at-a-time gather + reduce: NGCF's concatenated
        # representation is wide (dim x (layers+1)), so the naive
        # (B, C, D) candidate gather blows past cache and loses to the
        # serial loop; one (B, D) slice per candidate column stays
        # cache-resident.  Each output element reduces over D in the
        # same order, so results are block- and batch-size invariant.
        for column in range(item_rows.shape[1]):
            scores[:, column] = np.einsum(
                "nd,nd->n", user_repr, self._final[item_rows[:, column]])
        return scores

    def item_embeddings(self) -> np.ndarray:
        return self._final[self.num_users:].copy()

    def _state(self) -> Any:
        return {"params": [p.data for p in self.net.parameters()],
                "adjacency": self._adjacency, "final": self._final}

    @sanctioned_channel
    def _set_state(self, state: Any) -> None:
        for param, data in zip(self.net.parameters(), state["params"]):
            param.assign_(data, copy=False)
        self._adjacency = state["adjacency"]
        self._final = state["final"]
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)
