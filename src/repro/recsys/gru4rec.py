"""GRU4Rec: session-based recommendation with RNNs (Hidasi et al., 2015).

A GRU runs over the user's recent click sequence; the final hidden state
scores items by dot product with (tied) item embeddings, trained with a
softmax next-item loss.  This ranker is *order-sensitive* — the paper
highlights it as a system where the click order of the attack trajectory
matters.
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from ..data.interactions import InteractionLog
from ..data.sparse import as_sparse
from ..effects import mutates, pure, sanctioned_channel
from ..nn import Adam, Embedding, GRUCell, Module, Tensor, shape_spec
from ..nn import functional as F
from .base import Ranker, batch_slices, gemm_pad

#: Users per chunk in the batched scorer: bounds the (B, C, dim)
#: candidate-embedding gather to ~50 MB at the paper's candidate sizes.
_SCORE_CHUNK_USERS = 4096


class _GRU4RecNet(Module):
    def __init__(self, num_items: int, dim: int,
                 rng: np.random.Generator) -> None:
        # One extra embedding row serves as the left-padding token.
        self.embedding = Embedding(num_items + 1, dim, rng)
        self.cell = GRUCell(dim, dim, rng)
        self.pad_id = num_items

    @shape_spec("(B, W) -> (B, cell.hidden_dim)")
    def encode(self, windows: np.ndarray) -> Tensor:
        """Hidden state after running the GRU over ``(batch, W)`` windows."""
        batch, width = windows.shape
        h = self.cell.initial_state(batch)
        for t in range(width):
            x = self.embedding(windows[:, t])
            h = self.cell(x, h)
        return h

    @shape_spec("(B, cell.hidden_dim) -> (B, N)")
    def all_item_logits(self, hidden: Tensor) -> Tensor:
        # Exclude the padding row from the softmax.
        item_table = self.embedding.weight[
            np.arange(self.embedding.num_embeddings - 1)]
        return hidden @ item_table.T


class GRU4Rec(Ranker):
    """Sequence-aware GRU ranker."""

    name = "gru4rec"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 dim: int = 16, window: int = 5, lr: float = 0.01,
                 epochs: int = 5, update_epochs: int = 8,
                 update_lr: float = 0.02, batch_size: int = 256) -> None:
        super().__init__(num_users, num_items, seed)
        self.dim = dim
        self.window = window
        self.lr = lr
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.update_lr = update_lr
        self.batch_size = batch_size
        self._build()
        self._histories: dict[int, List[int]] = {}

    def _build(self) -> None:
        self.net = _GRU4RecNet(self.num_items, self.dim, self.rng)
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)

    # ------------------------------------------------------------------
    def _window_for(self, sequence: List[int]) -> np.ndarray:
        """Left-padded fixed-width window over the end of ``sequence``."""
        tail = sequence[-self.window:]
        padding = [self.net.pad_id] * (self.window - len(tail))
        return np.asarray(padding + tail, dtype=np.int64)

    def _training_examples(self, log: InteractionLog) -> tuple:
        """(windows, targets): every prefix of each sequence predicts the
        next click, using a fixed-width left-padded window.

        Built in one vectorized pass over the log's CSR view — for each
        non-first click, the window gathers the ``window`` preceding
        positions and left-pads entries that fall before the user's row
        start.  Example order matches the old per-sequence loop
        (ascending user, then click position), so training is
        bit-identical to the row-object implementation.
        """
        view = as_sparse(log)
        item_ids = view.item_ids
        if item_ids.size == 0:
            return (np.empty((0, self.window), np.int64),
                    np.empty(0, np.int64))
        starts = np.repeat(view.user_ptr[:-1], view.lengths)
        position = np.arange(item_ids.size)
        predictable = position > starts
        target_pos = position[predictable]
        if target_pos.size == 0:
            return (np.empty((0, self.window), np.int64),
                    np.empty(0, np.int64))
        gather = target_pos[:, None] + np.arange(-self.window, 0)
        in_row = gather >= starts[predictable][:, None]
        safe = np.clip(gather, 0, item_ids.size - 1)
        windows = np.where(in_row, item_ids[safe], self.net.pad_id)
        return windows.astype(np.int64, copy=False), item_ids[target_pos]

    def _train(self, windows: np.ndarray, targets: np.ndarray,
               epochs: int) -> None:
        n = len(windows)
        if n == 0:
            return
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                self.optimizer.zero_grad()
                hidden = self.net.encode(windows[idx])
                logits = self.net.all_item_logits(hidden)
                log_probs = F.log_softmax(logits, axis=1)
                picked = log_probs[np.arange(len(idx)), targets[idx]]
                loss = -picked.mean()
                loss.backward()
                self.optimizer.step()

    # ------------------------------------------------------------------
    @mutates("rng", "net", "optimizer", "_histories")
    def fit(self, log: InteractionLog) -> None:
        self.rng = np.random.default_rng(self.seed)
        self._build()
        self._histories = {u: seq for u, seq in log.iter_sequences()}
        self._train(*self._training_examples(log), epochs=self.epochs)

    @mutates("rng", "net", "optimizer", "_histories")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        for user, seq in poison.iter_sequences():
            self._histories.setdefault(user, [])
            self._histories[user] = self._histories[user] + seq
        p_windows, p_targets = self._training_examples(poison)
        # Replay a sample of clean windows so poisoning competes with the
        # organic signal, as in an online incremental retrain.
        users = [u for u in self._histories
                 if u not in poison and len(self._histories[u]) >= 2]
        replay_users = self.rng.choice(
            users, size=min(len(users), 4 * max(poison.num_users, 8)),
            replace=False) if users else []
        r_windows, r_targets = [], []
        for user in replay_users:
            sequence = self._histories[user]
            t = int(self.rng.integers(1, len(sequence)))
            r_windows.append(self._window_for(sequence[:t]))
            r_targets.append(sequence[t])
        if r_windows:
            windows = np.concatenate([p_windows, np.stack(r_windows)])
            targets = np.concatenate(
                [p_targets, np.asarray(r_targets, dtype=np.int64)])
        else:
            windows, targets = p_windows, p_targets
        self.optimizer = Adam(list(self.net.parameters()), lr=self.update_lr)
        self._train(windows, targets, epochs=self.update_epochs)

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        return self.score_batch(np.array([user]),
                                np.asarray(item_ids)[None, :])[0]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        """Encode all user windows and einsum against candidate rows.

        Chunked over users so the ``(B, C, dim)`` candidate-embedding
        gather stays memory-bounded at 10⁵+ eval users; chunking is
        row-wise and therefore bit-invariant.
        """
        candidates = np.asarray(candidates)
        table = self.net.embedding.weight.numpy()
        scores = np.empty(candidates.shape)
        for block in batch_slices(len(candidates), _SCORE_CHUNK_USERS):
            windows = np.stack([
                self._window_for(self._histories.get(int(u), []))
                for u in users[block]])
            padded, n = gemm_pad(windows)
            hidden = self.net.encode(padded).numpy()[:n]
            scores[block] = np.einsum("nd,ncd->nc", hidden,
                                      table[candidates[block]])
        return scores

    def item_embeddings(self) -> np.ndarray:
        return self.net.embedding.weight.numpy()[:self.num_items].copy()

    def _state(self) -> Any:
        return {"params": [p.data for p in self.net.parameters()],
                "histories": self._histories}

    @sanctioned_channel
    def _set_state(self, state: Any) -> None:
        for param, data in zip(self.net.parameters(), state["params"]):
            param.assign_(data, copy=False)
        self._histories = state["histories"]
        self.optimizer = Adam(list(self.net.parameters()), lr=self.lr)
