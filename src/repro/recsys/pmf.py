"""PMF: probabilistic matrix factorization (Salakhutdinov & Mnih, 2007).

Adapted to implicit feedback as the paper does: observed clicks are
positives (rating 1), sampled unobserved items are negatives (rating 0),
trained with mini-batch SGD on squared error plus L2 regularization.
Gradients are hand-vectorized numpy — MF does not need the autograd engine.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn.spec import shape_spec
from .base import Ranker, sample_negatives


def _apply_accumulated(table: np.ndarray, ids: np.ndarray,
                       gradients: np.ndarray, lr: float,
                       max_row_norm: float = 2.0) -> None:
    """SGD step with per-id gradient accumulation and a row-norm clip.

    Duplicate ids within a batch accumulate (standard minibatch-sum
    semantics — frequency is signal for matrix factorization), but each
    id's accumulated gradient row is clipped to ``max_row_norm``.  Poison
    data concentrates hundreds of clicks on a single item; without the
    clip, that item's effective step size scales with its multiplicity and
    the factors diverge.
    """
    grad_sum = np.zeros_like(table)
    np.add.at(grad_sum, ids, gradients)
    norms = np.linalg.norm(grad_sum, axis=1)
    oversized = norms > max_row_norm
    if oversized.any():
        grad_sum[oversized] *= (max_row_norm / norms[oversized])[:, None]
    table -= lr * grad_sum


class PMF(Ranker):
    """Implicit-feedback probabilistic matrix factorization."""

    name = "pmf"

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 dim: int = 16, lr: float = 0.05, reg: float = 0.01,
                 epochs: int = 8, negatives_per_positive: int = 2,
                 update_epochs: int = 3) -> None:
        super().__init__(num_users, num_items, seed)
        self.dim = dim
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.negatives_per_positive = negatives_per_positive
        self.update_epochs = update_epochs
        self.user_factors = self.rng.normal(0, 0.05, (num_users, dim))
        self.item_factors = self.rng.normal(0, 0.05, (num_items, dim))

    # ------------------------------------------------------------------
    def _training_triples(self, log: InteractionLog) -> tuple:
        pairs = log.pairs()
        if len(pairs) == 0:
            return (np.empty(0, np.int64),) * 2 + (np.empty(0),)
        users = pairs[:, 0]
        items = pairs[:, 1]
        k = self.negatives_per_positive
        neg_users = np.repeat(users, k)
        neg_items = sample_negatives(self.rng, items, self.num_items,
                                     len(users) * k)
        all_users = np.concatenate([users, neg_users])
        all_items = np.concatenate([items, neg_items])
        ratings = np.concatenate([np.ones(len(users)),
                                  np.zeros(len(neg_users))])
        return all_users, all_items, ratings

    def _sgd_epochs(self, users: np.ndarray, items: np.ndarray,
                    ratings: np.ndarray, epochs: int,
                    batch_size: int = 1024) -> None:
        n = len(users)
        if n == 0:
            return
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                u, i, r = users[idx], items[idx], ratings[idx]
                pu = self.user_factors[u]
                qi = self.item_factors[i]
                err = (pu * qi).sum(axis=1) - r
                grad_u = err[:, None] * qi + self.reg * pu
                grad_i = err[:, None] * pu + self.reg * qi
                _apply_accumulated(self.user_factors, u, grad_u, self.lr)
                _apply_accumulated(self.item_factors, i, grad_i, self.lr)

    # ------------------------------------------------------------------
    @mutates("user_factors", "item_factors", "rng")
    def fit(self, log: InteractionLog) -> None:
        self.user_factors = self.rng.normal(0, 0.05, (self.num_users, self.dim))
        self.item_factors = self.rng.normal(0, 0.05, (self.num_items, self.dim))
        users, items, ratings = self._training_triples(log)
        self._sgd_epochs(users, items, ratings, self.epochs)

    @mutates("user_factors", "item_factors", "rng")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        # Fine-tune on poison data plus a replay sample of the merged log,
        # the incremental-retrain behavior of a production system.
        p_users, p_items, p_ratings = self._training_triples(poison)
        c_users, c_items, c_ratings = self._training_triples(log)
        if len(c_users):
            replay = self.rng.choice(len(c_users),
                                     size=min(len(c_users),
                                              4 * max(len(p_users), 64)),
                                     replace=False)
            users = np.concatenate([p_users, c_users[replay]])
            items = np.concatenate([p_items, c_items[replay]])
            ratings = np.concatenate([p_ratings, c_ratings[replay]])
        else:
            users, items, ratings = p_users, p_items, p_ratings
        self._sgd_epochs(users, items, ratings, self.update_epochs)

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        # Routed through the batched einsum (not a GEMV) so serial and
        # batched scoring share one reduction order — bit-identical.
        item_ids = np.asarray(item_ids, dtype=np.int64)
        return self.score_batch(np.asarray([user]), item_ids[None, :])[0]

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        pu = self.user_factors[users]
        candidates = np.asarray(candidates)
        scores = np.empty(candidates.shape)
        # Column-at-a-time gather + reduce: one (B, d) factor slice per
        # candidate column stays cache-resident, unlike the (B, C, d)
        # blob a single einsum would gather.  Reduction order over d is
        # fixed per element, so results are batch-size invariant.
        for column in range(candidates.shape[1]):
            scores[:, column] = np.einsum(
                "nd,nd->n", pu, self.item_factors[candidates[:, column]])
        return scores

    def item_embeddings(self) -> np.ndarray:
        return self.item_factors.copy()

    def _state(self) -> Dict[str, np.ndarray]:
        return {"user": self.user_factors, "item": self.item_factors}

    @sanctioned_channel
    def _set_state(self, state: Dict[str, np.ndarray]) -> None:
        self.user_factors = state["user"]
        self.item_factors = state["item"]
