"""Recommender-system substrate: 8 rankers, candidate generation, environment."""

from .autorec import AutoRec
from .base import Ranker, sample_negatives
from .bpr import BPR
from .candidate import (CandidateGenerator, ModelCandidateGenerator,
                        PopularityCandidateGenerator,
                        RandomCandidateGenerator)
from .covisitation import CoVisitation
from .evaluation import (RankingQuality, evaluate_ranking,
                         random_baseline_quality)
from .gru4rec import GRU4Rec
from .itempop import ItemPop
from .neumf import NeuMF
from .ngcf import NGCF
from .pmf import PMF
from .registry import RANKER_CLASSES, RANKER_NAMES, make_ranker
from .snapshots import RankerSnapshot, SnapshotMismatchError, states_equal
from .system import BlackBoxEnvironment, RecommenderSystem

__all__ = [
    "Ranker", "sample_negatives",
    "RankerSnapshot", "SnapshotMismatchError", "states_equal",
    "ItemPop", "CoVisitation", "PMF", "BPR", "NeuMF", "AutoRec", "GRU4Rec",
    "NGCF",
    "RANKER_CLASSES", "RANKER_NAMES", "make_ranker",
    "CandidateGenerator", "RandomCandidateGenerator",
    "PopularityCandidateGenerator", "ModelCandidateGenerator",
    "RecommenderSystem", "BlackBoxEnvironment",
    "RankingQuality", "evaluate_ranking", "random_baseline_quality",
]
