"""CoVisitation: item-based CF over consecutive clicks (Yang et al., NDSS'17).

Consecutive behaviors ``(a, b)`` in any user's sequence add a co-visitation
edge in both directions.  A candidate item's score for a user aggregates
the co-visitation counts between the candidate and the user's history,
normalized by each history item's total co-visits (the "co-visitation
rate").  This is the system ConsLOP is purpose-built to attack.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn.spec import shape_spec
from .base import Ranker, batch_slices

#: Users per block in the batched scorer; bounds the (history x
#: candidate) query matrix to a few tens of MB per block.
_SCORE_BLOCK_USERS = 2048


class CoVisitation(Ranker):
    """Co-visitation graph recommender."""

    name = "covisitation"
    supports_incremental_revert = True

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 history_window: int = 20) -> None:
        super().__init__(num_users, num_items, seed)
        self.history_window = history_window
        self.covisits: Dict[int, Dict[int, float]] = defaultdict(dict)
        self.out_degree = np.zeros(num_items, dtype=np.float64)
        self._histories: Dict[int, list] = {}

    # ------------------------------------------------------------------
    def _add_edges(self, log: InteractionLog) -> None:
        for user, sequence in log.iter_sequences():
            history = self._histories.setdefault(user, [])
            prev = history[-1] if history else None
            for item in sequence:
                if prev is not None and prev != item:
                    row = self.covisits[prev]
                    row[item] = row.get(item, 0.0) + 1.0
                    row_b = self.covisits[item]
                    row_b[prev] = row_b.get(prev, 0.0) + 1.0
                    self.out_degree[prev] += 1.0
                    self.out_degree[item] += 1.0
                history.append(item)
                prev = item

    @mutates("covisits", "out_degree", "_histories")
    def fit(self, log: InteractionLog) -> None:
        self.covisits = defaultdict(dict)
        self.out_degree = np.zeros(self.num_items, dtype=np.float64)
        self._histories = {}
        self._add_edges(log)

    @mutates("covisits", "out_degree", "_histories")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        # Edges are additive; only the poison sequences add new ones.
        self._add_edges(poison)

    @mutates("covisits", "out_degree", "_histories")
    @sanctioned_channel
    def poison_revert(self, poison: InteractionLog) -> None:
        """Exactly undo :meth:`poison_update` for the same ``poison`` log.

        Replays the edge walk of :meth:`_add_edges` in reverse: each
        co-visit weight is decremented by the same 1.0 it was incremented
        by (bit-exact for float64 counts), emptied rows and zeroed
        entries are deleted so the dict structure matches the clean
        graph, and the appended history suffix is trimmed (dropping the
        whole entry for users the poison created).
        """
        for user, sequence in poison.iter_sequences():
            history = self._histories.get(user, [])
            start = len(history) - len(sequence)
            prev = history[start - 1] if start > 0 else None
            for item in sequence:
                if prev is not None and prev != item:
                    self._remove_edge(prev, item)
                prev = item
            if start <= 0:
                # The poison walk created this history via setdefault.
                self._histories.pop(user, None)
            else:
                del history[start:]

    def _remove_edge(self, a: int, b: int) -> None:
        """Decrement one bidirectional co-visit edge added by the poison."""
        for src, dst in ((a, b), (b, a)):
            row = self.covisits[src]
            weight = row[dst] - 1.0
            if weight <= 0.0:
                del row[dst]
            else:
                row[dst] = weight
            if not row:
                del self.covisits[src]
            self.out_degree[src] -= 1.0

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        history = self._histories.get(user, [])[-self.history_window:]
        scores = np.zeros(len(item_ids), dtype=np.float64)
        if not history:
            return scores
        index = {int(item): pos for pos, item in enumerate(item_ids)}
        for h in history:
            degree = max(self.out_degree[h], 1.0)
            for neighbor, weight in self.covisits.get(h, {}).items():
                pos = index.get(neighbor)
                if pos is not None:
                    scores[pos] += weight / degree
        return scores

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        """All users x candidates in one gather-reduce pass per block.

        The per-user loop walks every history item's full neighbor dict;
        this override instead scatters the block's adjacency rows into a
        reusable dense weight table (a chunk of history items at a time)
        and resolves every (history item, candidate) pair with one fancy
        gather — no per-query search at all.  Accumulation runs over the
        flat (history position, candidate) order of the serial loop and
        ``np.add.at`` is unbuffered, so the result is bit-equal to
        stacking :meth:`score` — including the duplicate-candidate
        corner where only a row's last occurrence of an item scores.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        scores = np.zeros(candidates.shape, dtype=np.float64)
        for block in batch_slices(len(candidates), _SCORE_BLOCK_USERS):
            self._score_block(users[block], candidates[block], scores[block])
        return scores

    def _score_block(self, users: np.ndarray, candidates: np.ndarray,
                     out: np.ndarray) -> None:
        """Accumulate one user block's scores into ``out`` (a view)."""
        windows = [self._histories.get(int(u), [])[-self.history_window:]
                   for u in users]
        lengths = np.fromiter((len(w) for w in windows), dtype=np.int64,
                              count=len(windows))
        total = int(lengths.sum())
        if total == 0:
            return
        history = np.fromiter((h for w in windows for h in w),
                              dtype=np.int64, count=total)
        rows = np.repeat(np.arange(len(users)), lengths)
        num_candidates = candidates.shape[1]

        # Per-occurrence contributions in flat (occurrence, candidate)
        # order: realize a chunk of distinct history items as dense
        # weight rows, gather each occurrence's candidate weights, then
        # un-scatter so the table can be reused without re-zeroing.
        uniq, uniq_index = np.unique(history, return_inverse=True)
        occ_order = np.argsort(uniq_index, kind="stable")
        sorted_uniq_index = uniq_index[occ_order]
        chunk = max(1, (1 << 21) // max(self.num_items, 1))
        table = np.zeros((min(chunk, len(uniq)), self.num_items),
                         dtype=np.float64)
        contrib = np.zeros((total, num_candidates), dtype=np.float64)
        for base in range(0, len(uniq), chunk):
            stop = min(base + chunk, len(uniq))
            filled = []
            for j in range(base, stop):
                row = self.covisits.get(int(uniq[j]))
                if not row:
                    continue
                neighbors = np.fromiter(row.keys(), dtype=np.int64,
                                        count=len(row))
                table[j - base, neighbors] = np.fromiter(
                    row.values(), dtype=np.float64, count=len(row))
                filled.append((j - base, neighbors))
            lo, hi = np.searchsorted(sorted_uniq_index, (base, stop))
            occ = occ_order[lo:hi]
            if occ.size and filled:
                contrib[occ] = table[(uniq_index[occ] - base)[:, None],
                                     candidates[rows[occ]]]
            for local, neighbors in filled:
                table[local, neighbors] = 0.0

        flat = contrib.ravel()
        idx = np.flatnonzero(flat)
        if idx.size == 0:
            return
        # Everything below runs on the (sparse) hits only — co-visit
        # weights are positive counts, so nonzero gathers are exactly
        # the (history item, candidate) adjacency hits.
        hit_rows = rows[idx // num_candidates]
        hit_cols = idx % num_candidates
        # Serial score() indexes candidates through a dict, so when a row
        # repeats an item only its last occurrence accumulates.  Mark the
        # per-row last occurrence of every candidate value (stable sort
        # keeps columns ascending within each (row, value) group).
        position_keys = (np.arange(len(users))[:, None]
                         * np.int64(self.num_items) + candidates).ravel()
        order = np.argsort(position_keys, kind="stable")
        group_end = np.ones(order.size, dtype=bool)
        sorted_keys = position_keys[order]
        group_end[:-1] = sorted_keys[1:] != sorted_keys[:-1]
        last_mask = np.zeros(order.size, dtype=bool)
        last_mask[order[group_end]] = True
        last_mask = last_mask.reshape(len(users), num_candidates)
        keep = last_mask[hit_rows, hit_cols]
        idx = idx[keep]
        if idx.size == 0:
            return
        degrees = np.maximum(self.out_degree[history[idx // num_candidates]],
                             1.0)
        contributions = flat[idx] / degrees
        np.add.at(out, (hit_rows[keep], hit_cols[keep]), contributions)

    def _state(self) -> tuple:
        return (self.covisits, self.out_degree, self._histories)

    @sanctioned_channel
    def _set_state(self, state: tuple) -> None:
        self.covisits, self.out_degree, self._histories = state
        if not isinstance(self.covisits, defaultdict):
            self.covisits = defaultdict(dict, self.covisits)
