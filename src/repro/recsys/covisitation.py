"""CoVisitation: item-based CF over consecutive clicks (Yang et al., NDSS'17).

Consecutive behaviors ``(a, b)`` in any user's sequence add a co-visitation
edge in both directions.  A candidate item's score for a user aggregates
the co-visitation counts between the candidate and the user's history,
normalized by each history item's total co-visits (the "co-visitation
rate").  This is the system ConsLOP is purpose-built to attack.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn.spec import shape_spec
from .base import Ranker


class CoVisitation(Ranker):
    """Co-visitation graph recommender."""

    name = "covisitation"
    supports_incremental_revert = True

    def __init__(self, num_users: int, num_items: int, seed: int = 0,
                 history_window: int = 20) -> None:
        super().__init__(num_users, num_items, seed)
        self.history_window = history_window
        self.covisits: Dict[int, Dict[int, float]] = defaultdict(dict)
        self.out_degree = np.zeros(num_items, dtype=np.float64)
        self._histories: Dict[int, list] = {}

    # ------------------------------------------------------------------
    def _add_edges(self, log: InteractionLog) -> None:
        for user, sequence in log.iter_sequences():
            history = self._histories.setdefault(user, [])
            prev = history[-1] if history else None
            for item in sequence:
                if prev is not None and prev != item:
                    row = self.covisits[prev]
                    row[item] = row.get(item, 0.0) + 1.0
                    row_b = self.covisits[item]
                    row_b[prev] = row_b.get(prev, 0.0) + 1.0
                    self.out_degree[prev] += 1.0
                    self.out_degree[item] += 1.0
                history.append(item)
                prev = item

    @mutates("covisits", "out_degree", "_histories")
    def fit(self, log: InteractionLog) -> None:
        self.covisits = defaultdict(dict)
        self.out_degree = np.zeros(self.num_items, dtype=np.float64)
        self._histories = {}
        self._add_edges(log)

    @mutates("covisits", "out_degree", "_histories")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        # Edges are additive; only the poison sequences add new ones.
        self._add_edges(poison)

    @mutates("covisits", "out_degree", "_histories")
    @sanctioned_channel
    def poison_revert(self, poison: InteractionLog) -> None:
        """Exactly undo :meth:`poison_update` for the same ``poison`` log.

        Replays the edge walk of :meth:`_add_edges` in reverse: each
        co-visit weight is decremented by the same 1.0 it was incremented
        by (bit-exact for float64 counts), emptied rows and zeroed
        entries are deleted so the dict structure matches the clean
        graph, and the appended history suffix is trimmed (dropping the
        whole entry for users the poison created).
        """
        for user, sequence in poison.iter_sequences():
            history = self._histories.get(user, [])
            start = len(history) - len(sequence)
            prev = history[start - 1] if start > 0 else None
            for item in sequence:
                if prev is not None and prev != item:
                    self._remove_edge(prev, item)
                prev = item
            if start <= 0:
                # The poison walk created this history via setdefault.
                self._histories.pop(user, None)
            else:
                del history[start:]

    def _remove_edge(self, a: int, b: int) -> None:
        """Decrement one bidirectional co-visit edge added by the poison."""
        for src, dst in ((a, b), (b, a)):
            row = self.covisits[src]
            weight = row[dst] - 1.0
            if weight <= 0.0:
                del row[dst]
            else:
                row[dst] = weight
            if not row:
                del self.covisits[src]
            self.out_degree[src] -= 1.0

    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        history = self._histories.get(user, [])[-self.history_window:]
        scores = np.zeros(len(item_ids), dtype=np.float64)
        if not history:
            return scores
        index = {int(item): pos for pos, item in enumerate(item_ids)}
        for h in history:
            degree = max(self.out_degree[h], 1.0)
            for neighbor, weight in self.covisits.get(h, {}).items():
                pos = index.get(neighbor)
                if pos is not None:
                    scores[pos] += weight / degree
        return scores

    def _state(self) -> tuple:
        return (self.covisits, self.out_degree, self._histories)

    @sanctioned_channel
    def _set_state(self, state: tuple) -> None:
        self.covisits, self.out_degree, self._histories = state
        if not isinstance(self.covisits, defaultdict):
            self.covisits = defaultdict(dict, self.covisits)
