"""Ranker interface shared by all eight recommendation algorithms.

A :class:`Ranker` scores candidate items for a user.  The recommender
*system* (``repro.recsys.system``) owns candidate generation, top-k
selection and the poison/retrain loop; rankers only implement ``fit`` /
``score`` plus snapshot/restore so the system can implement the paper's
"Reload the Ranker R, update R with D^p" poisoning step cheaply.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, ClassVar, Iterator, Optional

import numpy as np

from ..data.interactions import InteractionLog
from ..effects import mutates, pure, sanctioned_channel
from ..nn.spec import shape_spec
from .snapshots import RankerSnapshot, thaw_into


class Ranker(abc.ABC):
    """Abstract ranker over a fixed user/item universe.

    Parameters
    ----------
    num_users:
        Size of the user universe, including the attacker accounts that
        will be appended by the recommender system.
    num_items:
        Size of the item universe, including the target items.
    seed:
        Seed for any internal randomness (initialization, negative
        sampling); identical seeds yield identical models.
    """

    #: Registry key, e.g. ``"bpr"``.
    name: ClassVar[str] = "base"

    #: Rankers whose ``poison_update`` is a pure additive delta can set
    #: this and implement :meth:`poison_revert`, letting the recommender
    #: system undo a poison injection in O(|poison|) instead of restoring
    #: the full clean snapshot (see ``docs/performance.md``).
    supports_incremental_revert: ClassVar[bool] = False

    def __init__(self, num_users: int, num_items: int, seed: int = 0) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = num_users
        self.num_items = num_items
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, log: InteractionLog) -> None:
        """Train from scratch on ``log``."""

    @mutates("*")
    def poison_update(self, log: InteractionLog,
                      poison: InteractionLog) -> None:
        """Update an already-fit model after poison injection.

        ``log`` is the merged (clean + poison) log; ``poison`` contains only
        the injected fake behaviors.  The default simply refits on the
        merged log — parametric rankers override this with a cheap
        fine-tuning pass, mirroring an online system's incremental retrain.
        """
        self.fit(log)

    @mutates("*")
    @sanctioned_channel
    def poison_revert(self, poison: InteractionLog) -> None:
        """Exactly undo the most recent ``poison_update``.

        Only meaningful when :attr:`supports_incremental_revert` is True
        and ``poison`` is the same log the update was applied with; the
        result must be *bit-identical* to restoring the pre-poison
        snapshot (asserted by ``verify_incremental`` mode and the perf
        test-suite).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental revert")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @pure
    @shape_spec("_, (C,) -> (C,)")
    @abc.abstractmethod
    def score(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        """Preference scores for ``user`` over ``item_ids`` (higher=better)."""

    @pure
    @shape_spec("(B,), (B, C) -> (B, C)")
    def score_batch(self, users: np.ndarray,
                    candidates: np.ndarray) -> np.ndarray:
        """Scores for many users at once.

        ``candidates`` is ``(num_users, candidate_size)``; the default
        implementation loops, subclasses vectorize where it pays off.
        """
        return np.stack([self.score(int(u), candidates[i])
                         for i, u in enumerate(users)])

    # ------------------------------------------------------------------
    # State management (for the reload-and-poison loop)
    # ------------------------------------------------------------------
    @pure
    def snapshot(self) -> RankerSnapshot:
        """Capture the trained state; restorable via :meth:`restore`.

        The returned :class:`~repro.recsys.snapshots.RankerSnapshot`
        holds read-only array copies plus the ranker's RNG stream, so a
        restored ranker replays ``poison_update`` identically no matter
        how many queries ran in between — the property the parallel
        query engine's equivalence guarantee is built on.
        """
        return RankerSnapshot.capture(self)

    @mutates("*")
    @sanctioned_channel
    def restore(self, state: Any) -> None:
        """Restore a state captured by :meth:`snapshot`.

        Snapshot restores are copy-on-write: frozen arrays are copied in
        place into the live buffers (no allocation).  Raw states (the
        pre-snapshot legacy form: whatever ``_state`` returned) are still
        accepted and deep-copied defensively.
        """
        if isinstance(state, RankerSnapshot):
            self._set_state(thaw_into(state.state, self._state()))
            self.rng.bit_generator.state = state.rng_state
        else:
            self._set_state(copy.deepcopy(state))

    def _state(self) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _state/_set_state")

    def _set_state(self, state: Any) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _state/_set_state")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def item_embeddings(self) -> Optional[np.ndarray]:
        """Learned item representations, if the model has any.

        Used for the Figure 6 t-SNE visualization.  Non-embedding models
        (ItemPop, CoVisitation) return ``None``; the paper substitutes
        PMF's embeddings for them.
        """
        return None

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(users={self.num_users}, "
                f"items={self.num_items})")


def batch_slices(total: int, chunk: int) -> Iterator[slice]:
    """Row slices covering ``range(total)`` in ``chunk``-sized blocks.

    The memory governor for batched scoring: every vectorized
    ``score_batch`` processes its users through these slices so peak
    intermediate size is bounded by the chunk, not the eval-user count.
    Row-wise operations are chunk-invariant, so chunked and unchunked
    passes produce bit-identical results.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    for start in range(0, total, chunk):
        yield slice(start, min(start + chunk, total))


def gemm_pad(rows: np.ndarray) -> tuple[np.ndarray, int]:
    """Duplicate a lone batch row so BLAS dispatches its GEMM kernel.

    OpenBLAS routes single-row matmuls to GEMV, whose reduction order
    differs from GEMM's by ~1 ulp; for two or more rows, GEMM's per-row
    outputs are independent of the batch size.  The neural scorers pad
    1-row blocks to 2 (and drop the duplicate) so ``score_batch`` is
    bit-identical to stacked ``score`` calls at every block size.
    """
    if rows.shape[0] == 1:
        return np.concatenate([rows, rows], axis=0), 1
    return rows, rows.shape[0]


def sample_negatives(rng: np.random.Generator, positives: np.ndarray,
                     num_items: int, count: int) -> np.ndarray:
    """Sample ``count`` item ids, re-rolling collisions with ``positives``.

    A single re-roll pass is enough for the sparse implicit logs used
    here; residual collisions act as mild label noise, which the original
    BPR/NeuMF training procedures also tolerate.
    """
    negatives = rng.integers(0, num_items, size=count)
    positive_set = set(int(p) for p in np.asarray(positives).ravel())
    if positive_set:
        mask = np.fromiter((int(n) in positive_set for n in negatives),
                           dtype=bool, count=count)
        if mask.any():
            negatives[mask] = rng.integers(0, num_items, size=int(mask.sum()))
    return negatives
