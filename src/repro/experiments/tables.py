"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that output aligned and diff-able.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule, ready to print."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float],
                  precision: int = 1) -> str:
    """One labelled numeric series (used for figure-style output)."""
    rendered = ", ".join(f"{value:.{precision}f}" for value in values)
    return f"{label}: [{rendered}]"
