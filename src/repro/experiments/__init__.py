"""Experiment harness: scales, testbed builders, table formatting."""

from .runner import (SCALES, ExperimentScale, build_environment,
                     resolve_scale, run_baseline, run_poisonrec)
from .tables import format_series, format_table

__all__ = [
    "SCALES", "ExperimentScale", "build_environment", "resolve_scale",
    "run_baseline", "run_poisonrec",
    "format_table", "format_series",
]
