"""Shared experiment harness for all tables and figures.

Every benchmark resolves an :class:`ExperimentScale` (from the
``REPRO_SCALE`` environment variable, default ``ci``) that fixes the
dataset size, the PoisonRec budget and the baseline query budgets, so the
whole evaluation grid runs in seconds at ``ci`` and approaches the paper's
setup at ``paper``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..attacks import BASELINE_CLASSES, AttackBudget
from ..core import PoisonRec, PoisonRecConfig, TrainResult
from ..data import Dataset, load_dataset
from ..recsys import BlackBoxEnvironment, RecommenderSystem


@dataclass(frozen=True)
class ExperimentScale:
    """All scale-dependent knobs for one experiment tier."""

    name: str
    dataset_scale: str
    embedding_dim: int
    num_attackers: int
    trajectory_length: int
    samples_per_step: int
    batch_size: int
    ppo_epochs: int
    rl_steps: int
    appgrad_iterations: int
    eval_user_sample: Optional[int] = None

    def config(self, seed: int = 0) -> PoisonRecConfig:
        """PoisonRec configuration at this scale."""
        return PoisonRecConfig(
            num_attackers=self.num_attackers,
            trajectory_length=self.trajectory_length,
            embedding_dim=self.embedding_dim,
            samples_per_step=self.samples_per_step,
            batch_size=self.batch_size,
            ppo_epochs=self.ppo_epochs,
            seed=seed,
        )

    def budget(self) -> AttackBudget:
        """Baseline attack budget (same N and T as PoisonRec)."""
        return AttackBudget(self.num_attackers, self.trajectory_length)


SCALES: Dict[str, ExperimentScale] = {
    "ci": ExperimentScale(
        name="ci", dataset_scale="ci", embedding_dim=16,
        num_attackers=20, trajectory_length=20, samples_per_step=8,
        batch_size=8, ppo_epochs=2, rl_steps=20, appgrad_iterations=20),
    "small": ExperimentScale(
        name="small", dataset_scale="small", embedding_dim=32,
        num_attackers=20, trajectory_length=20, samples_per_step=16,
        batch_size=16, ppo_epochs=3, rl_steps=40, appgrad_iterations=40,
        eval_user_sample=400),
    "paper": ExperimentScale(
        name="paper", dataset_scale="paper", embedding_dim=64,
        num_attackers=20, trajectory_length=20, samples_per_step=32,
        batch_size=32, ppo_epochs=3, rl_steps=200, appgrad_iterations=200,
        eval_user_sample=1000),
}


def resolve_scale(name: Optional[str] = None) -> ExperimentScale:
    """Scale from an explicit name or the ``REPRO_SCALE`` env var."""
    chosen = name or os.environ.get("REPRO_SCALE", "ci")
    try:
        return SCALES[chosen]
    except KeyError:
        raise ValueError(f"unknown scale {chosen!r}; "
                         f"expected one of {sorted(SCALES)}") from None


def build_environment(dataset_name: str, ranker_name: str,
                      scale: ExperimentScale, seed: int = 0
                      ) -> Tuple[Dataset, RecommenderSystem,
                                 BlackBoxEnvironment]:
    """Dataset + recommender system + black-box facade for one testbed."""
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=seed)
    system = RecommenderSystem(dataset, ranker_name, seed=seed,
                               num_attackers=scale.num_attackers,
                               eval_user_sample=scale.eval_user_sample)
    return dataset, system, BlackBoxEnvironment(system)


def run_baseline(method: str, env: BlackBoxEnvironment,
                 system: RecommenderSystem, scale: ExperimentScale,
                 seed: int = 0) -> int:
    """Execute one Table III baseline; returns its RecNum."""
    cls = BASELINE_CLASSES[method]
    kwargs = {}
    if method == "conslop":
        # Privileged baseline: gets the system log (as in the paper).
        kwargs["system_log"] = system.clean_log
    if method == "appgrad":
        kwargs["iterations"] = scale.appgrad_iterations
    attack = cls(env, scale.budget(), seed=seed, **kwargs)
    return attack.run().recnum


def run_poisonrec(env: BlackBoxEnvironment, scale: ExperimentScale,
                  seed: int = 0, action_space: str = "bcbt-popular",
                  steps: Optional[int] = None) -> TrainResult:
    """Train PoisonRec on one testbed; returns the training result."""
    agent = PoisonRec(env, scale.config(seed=seed),
                      action_space=action_space)
    return agent.train(steps if steps is not None else scale.rl_steps)
