"""Supervision: failure isolation, restart backoff, and drain control.

The scheduler treats every campaign slice as a supervised unit of work.
When a slice fails, :class:`CampaignSupervisor` classifies the failure:

* *restartable* — transient environment trouble that escaped the inner
  retry loop (a :class:`~repro.runtime.errors.TransientEnvironmentError`
  without a retry policy, an escaped
  :class:`~repro.runtime.errors.RetriesExhaustedError`): the campaign
  restarts from its last crash-safe checkpoint after an exponential
  backoff, up to ``spec.max_restarts`` times;
* *fatal* — the campaign's own failure budget is exhausted, training
  diverged beyond the rollback allowance, its checkpoint is corrupt, or
  an unclassified exception surfaced: the campaign is quarantined to
  ``FAILED``.

Either way the failure is *isolated*: sibling campaigns never see it,
the shared worker fleet keeps serving them, and the scheduler only
stops when every campaign reached a terminal state (or a drain was
requested).

:class:`DrainController` implements graceful shutdown: SIGTERM/SIGINT
set a flag the scheduler polls after every completed training step, so
in-flight queries finish, every campaign checkpoints, the journal
records the drain, and the process exits 0.  A drained fleet resumes
bit-identically with ``CampaignScheduler.resume``.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass
from typing import Dict, Optional

from ..effects import pure
from ..runtime.errors import (CampaignDivergenceError, CorruptCheckpointError,
                              FailureBudgetExhausted, FatalEnvironmentError,
                              RetriesExhaustedError,
                              TransientEnvironmentError)


@dataclass(frozen=True)
class RestartPolicy:
    """Exponential backoff between supervised campaign restarts."""

    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    @pure
    def delay(self, restart: int) -> float:
        """Backoff before restart number ``restart`` (1-based)."""
        if restart < 1:
            raise ValueError("restart is 1-based")
        return min(self.base_delay * self.multiplier ** (restart - 1),
                   self.max_delay)


#: Failure kinds worth a supervised restart from the last checkpoint.
RESTARTABLE_ERRORS = (TransientEnvironmentError, RetriesExhaustedError)

#: Failure kinds that quarantine the campaign immediately.
FATAL_ERRORS = (FailureBudgetExhausted, CampaignDivergenceError,
                CorruptCheckpointError)

#: Errors that mean the *host process* is unhealthy rather than one
#: campaign: isolation must not swallow these as a campaign failure —
#: the scheduler re-raises them and the whole fleet stops loudly.
HOST_ERRORS = (MemoryError, SystemError, RecursionError)


class CampaignSupervisor:
    """Classifies slice failures and enforces per-campaign budgets."""

    def __init__(self, restart: Optional[RestartPolicy] = None) -> None:
        self.restart = restart if restart is not None else RestartPolicy()

    @pure
    def classify(self, record, error: Exception) -> str:
        """``"restart"`` or ``"fail"`` for one slice failure.

        Restartable errors only earn a restart while the spec's
        allowance lasts; everything fatal or unclassified quarantines
        the campaign (failing *loudly* per campaign beats poisoning the
        fleet with an unknown state).
        """
        if isinstance(error, FATAL_ERRORS):
            return "fail"
        if isinstance(error, RESTARTABLE_ERRORS):
            if record.restarts >= record.spec.max_restarts:
                return "fail"
            return "restart"
        if isinstance(error, FatalEnvironmentError):
            return "fail"
        return "fail"

    def charge_quarantines(self, record) -> None:
        """Spend the campaign's failure budget for new quarantines.

        The inner training loop quarantines samples per *slice*; the
        supervisor charges them against the campaign-lifetime budget
        (which spans slices and restarts, because it is derived from
        the checkpointed ``StepStats`` history).  Raises
        :class:`~repro.runtime.errors.FailureBudgetExhausted` when the
        campaign has permanently lost more samples than its spec allows.
        """
        history = record.agent.result.history
        total = sum(stats.quarantined for stats in history)
        delta = total - record.charged_quarantines
        if delta > 0:
            record.charged_quarantines = total
            record.budget.spend(
                delta, reason=f"campaign {record.spec.name!r} quarantined "
                              f"{total} sample(s) so far")


class DrainRequested(Exception):
    """Raised between training steps to unwind a slice for a drain."""


class DrainController:
    """Cooperative SIGTERM/SIGINT drain flag for the scheduler."""

    def __init__(self) -> None:
        self._requested = False
        self.reason: Optional[str] = None
        self._previous: Dict[int, object] = {}

    @property
    def requested(self) -> bool:
        """Whether a drain has been requested."""
        return self._requested

    def request(self, reason: str = "drain") -> None:
        """Ask the scheduler to drain at the next step boundary."""
        self._requested = True
        if self.reason is None:
            self.reason = reason

    def install(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        """Route the given signals into :meth:`request`.

        Only callable from the main thread (a CPython restriction on
        ``signal.signal``); the scheduler's tests call :meth:`request`
        directly instead.
        """
        for signum in signals:
            def _handler(received, frame, _controller=self):
                _controller.request(signal.Signals(received).name.lower())
            self._previous[signum] = signal.signal(signum, _handler)

    def uninstall(self) -> None:
        """Restore the signal handlers :meth:`install` replaced."""
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
