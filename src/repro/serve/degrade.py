"""Tiered graceful degradation of the shared worker fleet.

The fleet serves campaigns in one of three tiers:

``pooled``
    The full :class:`~repro.perf.pool.QueryPool` worker fleet.
``reduced``
    The pool was rebuilt with half the workers after it broke or
    suffered a crash storm; reduction repeats (4 → 2) while at least
    ``min_workers`` remain.
``serial``
    No pool at all — every campaign queries its environment in-process.
    The fleet is slower but still *correct* (the pool's bit-exact
    equivalence guarantee means results are identical in every tier).

:class:`DegradationController` owns the tier state machine.  The
scheduler calls :meth:`assess` after every slice with the live pool;
a downgrade decision tells the scheduler to rebuild (or drop) the pool
before the next slice.  Degradation is one-way by design: a fleet that
has already proven itself unstable is not promoted back mid-run —
predictable behavior under faults beats opportunistic speed.
"""

from __future__ import annotations

from typing import Optional

from ..effects import mutates, pure

#: Tier names, healthiest first.
TIERS = ("pooled", "reduced", "serial")


class DegradationController:
    """One-way pooled → reduced → serial tier state machine.

    Parameters
    ----------
    workers:
        Fleet size at the ``pooled`` tier.  ``workers <= 1`` starts (and
        stays) at the ``serial`` tier.
    min_workers:
        Smallest pool worth forking; a reduction that would go below
        this drops straight to ``serial``.
    crash_storm:
        Worker deaths observed within a single assessment interval that
        count as a storm (the pool is unhealthy even though it keeps
        healing individual crashes).
    """

    def __init__(self, workers: int, min_workers: int = 2,
                 crash_storm: int = 8) -> None:
        if min_workers < 2:
            raise ValueError("min_workers must be at least 2")
        if crash_storm < 1:
            raise ValueError("crash_storm must be at least 1")
        self.min_workers = min_workers
        self.crash_storm = crash_storm
        self.workers = max(workers, 1)
        self.tier = "pooled" if self.workers > 1 else "serial"
        self._seen_crashes = 0

    @property
    @pure
    def serial(self) -> bool:
        """Whether the fleet is at the in-process tier."""
        return self.tier == "serial"

    @mutates("workers", "tier", "reason", "_seen_crashes")
    def assess(self, pool) -> Optional[str]:
        """Inspect the live pool; returns the new tier on a downgrade.

        ``None`` means the current tier stands.  After a downgrade the
        caller must rebuild the pool at :attr:`workers` workers (or drop
        it entirely at the ``serial`` tier) before the next slice.
        """
        if self.serial or pool is None:
            return None
        fresh_crashes = pool.crashes - self._seen_crashes
        self._seen_crashes = pool.crashes
        if pool.broken:
            return self._downgrade("pool cannot spawn workers")
        if fresh_crashes >= self.crash_storm:
            return self._downgrade(
                f"{fresh_crashes} worker deaths in one interval")
        return None

    def _downgrade(self, reason: str) -> str:
        next_workers = self.workers // 2
        if next_workers >= self.min_workers:
            self.workers = next_workers
            self.tier = "reduced"
        else:
            self.workers = 1
            self.tier = "serial"
        self.reason = reason
        self._seen_crashes = 0
        return self.tier

    def __repr__(self) -> str:
        return (f"DegradationController(tier={self.tier}, "
                f"workers={self.workers})")
