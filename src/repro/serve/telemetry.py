"""Live fleet telemetry: per-campaign StepStats and profiler rollups.

:class:`FleetTelemetry` is the scheduler's observer: every completed
training step streams its :class:`~repro.core.agent.StepStats` here
(tagged with the campaign name), fleet events (restarts, tier changes,
drains) become narrator lines, and per-campaign
:class:`~repro.perf.profile.QueryProfiler` phase timings are rolled up
into one fleet-wide breakdown.  Because pooled workers ship their
per-query phase deltas back with every
:class:`~repro.perf.pool.QueryOutcome` (merged into the parent-side
profiler by the pool), the rollups cover *all* tiers — pooled, reduced
and serial alike.

Output is written to an injectable stream (``None`` silences it, which
is what the tests use); the scheduler never formats anything itself.
Attaching a :class:`~repro.obs.run.RunTelemetry` mirrors every counter
into its labeled metrics registry and every fleet event into its
crash-safe run log, so ``repro metrics`` can render the dashboard of a
live or dead fleet.  A fleet resumed from a scheduler journal is
*hydrated* (:meth:`FleetTelemetry.hydrate`) with the counters the prior
process journaled, so the summary table never zeroes out history it
did not stream itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

from ..effects import pure
from ..experiments.tables import format_table
from ..obs.metrics import MetricsRegistry


@dataclass
class CampaignTelemetry:
    """Accumulated per-campaign stream state."""

    name: str
    steps: int = 0
    retries: int = 0
    quarantined: int = 0
    best_reward: float = float("-inf")
    last_mean: float = float("nan")
    last_max: float = float("nan")
    restarts: int = 0
    phases: Dict[str, float] = field(default_factory=dict)


class FleetTelemetry:
    """Streams fleet progress and aggregates per-campaign counters.

    Parameters
    ----------
    stream:
        Text stream for narrator lines (``None`` silences them).
    obs:
        Optional :class:`~repro.obs.run.RunTelemetry`: counters are
        mirrored into its metrics registry and fleet events into its
        run log.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 obs=None) -> None:
        self.stream = stream
        self.obs = obs
        #: The labeled metrics registry backing the counters — shared
        #: with ``obs`` when one is attached, private otherwise.
        self.metrics: MetricsRegistry = (obs.metrics if obs is not None
                                         else MetricsRegistry())
        self.campaigns: Dict[str, CampaignTelemetry] = {}
        self.events: List[str] = []

    def _campaign(self, name: str) -> CampaignTelemetry:
        if name not in self.campaigns:
            self.campaigns[name] = CampaignTelemetry(name)
        return self.campaigns[name]

    def _emit(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream)

    def observe(self, name: str, stats) -> None:
        """Stream one completed training step of one campaign."""
        entry = self._campaign(name)
        entry.steps += 1
        entry.retries += stats.retries
        entry.quarantined += stats.quarantined
        entry.last_mean = stats.mean_reward
        entry.last_max = stats.max_reward
        if stats.max_reward > entry.best_reward:
            entry.best_reward = stats.max_reward
        self.metrics.counter("fleet.steps", campaign=name).inc()
        if stats.retries:
            self.metrics.counter("fleet.retries",
                                 campaign=name).inc(stats.retries)
        if stats.quarantined:
            self.metrics.counter("fleet.quarantined",
                                 campaign=name).inc(stats.quarantined)
        if entry.best_reward > float("-inf"):
            self.metrics.gauge("fleet.best_reward",
                               campaign=name).set(entry.best_reward)
        self._emit(f"[{name}] step {stats.step:3d}: "
                   f"mean={stats.mean_reward:8.1f} "
                   f"max={stats.max_reward:6.0f} "
                   f"retries={stats.retries} "
                   f"quarantined={stats.quarantined}")

    def event(self, message: str) -> None:
        """Record one fleet-level event (restart, tier change, drain)."""
        self.events.append(message)
        if self.obs is not None:
            self.obs.event(message)
        self._emit(f"== {message}")

    def note_restart(self, name: str) -> None:
        """Count one supervised restart of ``name``."""
        self._campaign(name).restarts += 1
        self.metrics.counter("fleet.restarts", campaign=name).inc()

    def hydrate(self, name: str, steps: int = 0,
                best: Optional[float] = None, retries: int = 0,
                quarantined: int = 0, restarts: int = 0) -> None:
        """Seed a campaign's counters from a journal replay.

        A resumed fleet streamed none of its prior process's steps
        through this instance; hydration restores the journaled
        cumulative counters so :meth:`render_table` shows real history
        instead of ``best=-`` and zeroes.  Values only ever grow — live
        observations layered on top keep the totals cumulative.
        """
        entry = self._campaign(name)
        entry.steps = max(entry.steps, steps)
        if best is not None and best > entry.best_reward:
            entry.best_reward = best
            self.metrics.gauge("fleet.best_reward",
                               campaign=name).set(best)
        entry.retries = max(entry.retries, retries)
        entry.quarantined = max(entry.quarantined, quarantined)
        entry.restarts = max(entry.restarts, restarts)

    def rollup_profiler(self, name: str, profiler) -> None:
        """Fold one campaign's profiler phases into the fleet rollup.

        The profiler covers every tier: worker-side phase deltas are
        shipped back with each pooled
        :class:`~repro.perf.pool.QueryOutcome` and merged by the pool,
        serial and fallback queries accumulate directly.
        """
        if profiler is None:
            return
        phases = self._campaign(name).phases
        for phase, stats in profiler.summary().items():
            phases[phase] = phases.get(phase, 0.0) + stats["seconds"]

    @pure
    def phase_totals(self) -> Dict[str, float]:
        """Fleet-wide per-phase seconds across all campaigns."""
        totals: Dict[str, float] = {}
        for entry in self.campaigns.values():
            for phase, seconds in entry.phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def render_table(self, records=None) -> str:
        """The fleet summary table (optionally with lifecycle status).

        With ``records``, every submitted campaign gets a row — including
        ones that finished in a *previous* process (a resumed fleet) and
        therefore streamed no steps through this telemetry instance.
        """
        names = list(records) if records is not None else list(self.campaigns)
        rows = []
        for name in names:
            entry = self.campaigns.get(name)
            record = records[name] if records is not None else None
            steps = record.steps_done if record is not None else entry.steps
            if (record is not None and record.agent is None
                    and record.status.value == "completed"
                    and record.total_steps is not None):
                steps = record.total_steps  # finished in a prior process
            if entry is not None and entry.steps > steps:
                steps = entry.steps  # hydrated from the journal
            rows.append([
                name,
                record.status.value if record is not None else "?",
                steps,
                f"{entry.best_reward:.0f}"
                if entry is not None and entry.best_reward > float("-inf")
                else "-",
                entry.retries if entry is not None else 0,
                entry.quarantined if entry is not None else 0,
                entry.restarts if entry is not None else 0,
            ])
        return format_table(
            ["campaign", "status", "steps", "best", "retries",
             "quarantined", "restarts"], rows)
