"""Live fleet telemetry: per-campaign StepStats and profiler rollups.

:class:`FleetTelemetry` is the scheduler's observer: every completed
training step streams its :class:`~repro.core.agent.StepStats` here
(tagged with the campaign name), fleet events (restarts, tier changes,
drains) become narrator lines, and per-campaign
:class:`~repro.perf.profile.QueryProfiler` phase timings are rolled up
into one fleet-wide breakdown.

Output is written to an injectable stream (``None`` silences it, which
is what the tests use); the scheduler never formats anything itself.
Profiler rollups cover work executed *in the parent process* — at the
pooled tier the restore/retrain/score phases run inside forked workers,
whose timings are not shipped back, so rollups are most informative at
the serial tier or for serial-fallback queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

from ..effects import pure
from ..experiments.tables import format_table


@dataclass
class CampaignTelemetry:
    """Accumulated per-campaign stream state."""

    name: str
    steps: int = 0
    retries: int = 0
    quarantined: int = 0
    best_reward: float = float("-inf")
    last_mean: float = float("nan")
    last_max: float = float("nan")
    restarts: int = 0
    phases: Dict[str, float] = field(default_factory=dict)


class FleetTelemetry:
    """Streams fleet progress and aggregates per-campaign counters."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream
        self.campaigns: Dict[str, CampaignTelemetry] = {}
        self.events: List[str] = []

    def _campaign(self, name: str) -> CampaignTelemetry:
        if name not in self.campaigns:
            self.campaigns[name] = CampaignTelemetry(name)
        return self.campaigns[name]

    def _emit(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream)

    def observe(self, name: str, stats) -> None:
        """Stream one completed training step of one campaign."""
        entry = self._campaign(name)
        entry.steps += 1
        entry.retries += stats.retries
        entry.quarantined += stats.quarantined
        entry.last_mean = stats.mean_reward
        entry.last_max = stats.max_reward
        if stats.max_reward > entry.best_reward:
            entry.best_reward = stats.max_reward
        self._emit(f"[{name}] step {stats.step:3d}: "
                   f"mean={stats.mean_reward:8.1f} "
                   f"max={stats.max_reward:6.0f} "
                   f"retries={stats.retries} "
                   f"quarantined={stats.quarantined}")

    def event(self, message: str) -> None:
        """Record one fleet-level event (restart, tier change, drain)."""
        self.events.append(message)
        self._emit(f"== {message}")

    def note_restart(self, name: str) -> None:
        """Count one supervised restart of ``name``."""
        self._campaign(name).restarts += 1

    def rollup_profiler(self, name: str, profiler) -> None:
        """Fold one campaign's parent-side profiler phases in."""
        if profiler is None:
            return
        phases = self._campaign(name).phases
        for phase, stats in profiler.summary().items():
            phases[phase] = phases.get(phase, 0.0) + stats["seconds"]

    @pure
    def phase_totals(self) -> Dict[str, float]:
        """Fleet-wide per-phase seconds across all campaigns."""
        totals: Dict[str, float] = {}
        for entry in self.campaigns.values():
            for phase, seconds in entry.phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def render_table(self, records=None) -> str:
        """The fleet summary table (optionally with lifecycle status).

        With ``records``, every submitted campaign gets a row — including
        ones that finished in a *previous* process (a resumed fleet) and
        therefore streamed no steps through this telemetry instance.
        """
        names = list(records) if records is not None else list(self.campaigns)
        rows = []
        for name in names:
            entry = self.campaigns.get(name)
            record = records[name] if records is not None else None
            steps = record.steps_done if record is not None else entry.steps
            if (record is not None and record.agent is None
                    and record.status.value == "completed"
                    and record.total_steps is not None):
                steps = record.total_steps  # finished in a prior process
            rows.append([
                name,
                record.status.value if record is not None else "?",
                steps,
                f"{entry.best_reward:.0f}"
                if entry is not None and entry.steps else "-",
                entry.retries if entry is not None else 0,
                entry.quarantined if entry is not None else 0,
                entry.restarts if entry is not None else 0,
            ])
        return format_table(
            ["campaign", "status", "steps", "best", "retries",
             "quarantined", "restarts"], rows)
