"""Campaign specifications and their runtime records.

A :class:`CampaignSpec` is the immutable, JSON-serializable description
of one black-box attack campaign — target testbed, action space, budget,
priority, chaos settings.  It is what ``repro submit`` writes to the
scheduler journal and what the Table-2/3 grid expands into.

A :class:`CampaignRecord` is the scheduler's mutable view of one
submitted spec: lifecycle status, the constructed environment/agent,
restart bookkeeping, and checkpoint location.  Records are built lazily
(the environment fit is the expensive part) and rebuilt from their
checkpoint after a supervised restart.
"""

from __future__ import annotations

import dataclasses
import enum
import pathlib
from dataclasses import dataclass
from typing import Optional

from ..effects import pure
from ..runtime.checkpoint import as_npz_path
from ..runtime.retry import FailureBudget


class CampaignStatus(enum.Enum):
    """Lifecycle of one campaign inside the scheduler.

    ``PENDING`` → ``RUNNING`` ⇄ ``WAITING`` (between slices) with
    ``RESTARTING`` on supervised recovery; terminal states are
    ``COMPLETED`` (all steps done) and ``FAILED`` (quarantined by the
    supervision layer — siblings keep running).
    """

    PENDING = "pending"
    RUNNING = "running"
    WAITING = "waiting"
    RESTARTING = "restarting"
    COMPLETED = "completed"
    FAILED = "failed"

    @property
    @pure
    def terminal(self) -> bool:
        """Whether the campaign is done (successfully or not)."""
        return self in (CampaignStatus.COMPLETED, CampaignStatus.FAILED)


@dataclass(frozen=True)
class CampaignSpec:
    """Immutable description of one attack campaign.

    ``steps=None`` defers to the scale's default RL budget.
    ``chaos_rate`` wraps the environment in a
    :class:`~repro.runtime.faults.FaultyEnvironment` with the
    *retryable* fault mix (see
    :meth:`~repro.runtime.faults.FaultPlan.retryable`), so a chaos
    campaign's observed rewards stay bit-identical to a fault-free run.
    ``priority`` weights fair-share scheduling: a priority-2 campaign
    receives twice the step slices of a priority-1 sibling.
    """

    name: str
    dataset: str = "steam"
    ranker: str = "itempop"
    action_space: str = "bcbt-popular"
    scale: str = "ci"
    seed: int = 0
    steps: Optional[int] = None
    priority: float = 1.0
    chaos_rate: float = 0.0
    max_retries: int = 3
    max_restarts: int = 2
    failure_budget: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if any(sep in self.name for sep in "/\\\0"):
            raise ValueError(
                f"campaign name {self.name!r} must not contain path "
                "separators (it names the checkpoint file)")
        if self.priority <= 0.0:
            raise ValueError("priority must be positive")
        if not 0.0 <= self.chaos_rate <= 1.0:
            raise ValueError("chaos_rate must be in [0, 1]")
        if self.steps is not None and self.steps < 1:
            raise ValueError("steps must be at least 1")
        if self.max_retries < 0 or self.max_restarts < 0:
            raise ValueError("max_retries/max_restarts must be non-negative")
        if self.failure_budget < 0:
            raise ValueError("failure_budget must be non-negative")

    @pure
    def to_json(self) -> dict:
        """Plain-dict form for the scheduler journal."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(
                f"campaign spec has unknown field(s) {sorted(unknown)}")
        return cls(**data)


class CampaignRecord:
    """One submitted campaign as the scheduler sees it.

    Holds the spec plus everything mutable: lifecycle status, the built
    environment/agent pair, restart and quarantine bookkeeping, and the
    scheduling bookkeeping (``submit_order`` breaks fair-share ties,
    ``backoff_until`` defers a restarting campaign).
    """

    def __init__(self, spec: CampaignSpec, directory: pathlib.Path,
                 submit_order: int) -> None:
        self.spec = spec
        self.directory = pathlib.Path(directory)
        self.submit_order = submit_order
        self.status = CampaignStatus.PENDING
        self.restarts = 0
        self.last_error: Optional[str] = None
        #: Total steps this campaign must complete (resolved at build
        #: time when the spec defers to the scale default).
        self.total_steps: Optional[int] = spec.steps
        #: Built lazily by the scheduler (environment fit is expensive).
        self.env = None
        self.agent = None
        self.config = None
        #: Parent-side profiler hung on the recommender system, if any.
        self.profiler = None
        #: Pool facade for the current pool generation (rebuilt on
        #: degradation, dropped at the serial tier).
        self.client = None
        #: Per-campaign failure budget, spanning slices and restarts.
        self.budget = FailureBudget(spec.failure_budget)
        #: Quarantined samples already charged against :attr:`budget`.
        self.charged_quarantines = 0
        #: Monotonic time before which a restarting campaign must wait.
        self.backoff_until = 0.0
        #: Whether the journal already has this campaign's ``running``
        #: transition (journaled once, not per slice).
        self.journaled_running = False

    @property
    def checkpoint_path(self) -> pathlib.Path:
        """Where this campaign's crash-safe checkpoint lives."""
        return as_npz_path(self.directory / self.spec.name)

    @property
    def steps_done(self) -> int:
        """Completed training steps (0 until the agent is built)."""
        return self.agent.step if self.agent is not None else 0

    @property
    def remaining(self) -> int:
        """Steps still owed (0 until the budget is resolved)."""
        if self.total_steps is None:
            return 0
        return max(self.total_steps - self.steps_done, 0)

    @property
    @pure
    def fair_share_key(self):
        """Fair-share ordering: least weighted progress first.

        Progress is ``steps_done / priority``, so higher-priority
        campaigns tolerate more completed steps before yielding their
        turn; submit order breaks exact ties deterministically.
        """
        return (self.steps_done / self.spec.priority, self.submit_order)

    def __repr__(self) -> str:
        return (f"CampaignRecord({self.spec.name!r}, "
                f"status={self.status.value}, "
                f"steps={self.steps_done}/{self.total_steps}, "
                f"restarts={self.restarts})")
