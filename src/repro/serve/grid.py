"""The Table-2/3 experiment grid as the scheduler's first client.

The paper's headline results sweep rankers × action spaces on one
dataset (Table 2: attack performance per recommender; Table 3: action
space ablation).  :func:`grid_specs` expands such a sweep into one
:class:`~repro.serve.campaign.CampaignSpec` per cell, named
``<ranker>-<action_space>``, ready for ``CampaignScheduler.submit`` —
so the whole grid runs as a supervised fleet over one shared worker
pool instead of a serial for-loop of standalone runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..effects import pure
from .campaign import CampaignSpec

#: Table-2 rankers and Table-3 action spaces at reproduction scale.
DEFAULT_RANKERS = ("itempop", "covisitation", "pmf")
DEFAULT_ACTION_SPACES = ("plain", "bplain", "bcbt-popular")


@pure
def grid_specs(rankers: Sequence[str] = DEFAULT_RANKERS,
               action_spaces: Sequence[str] = DEFAULT_ACTION_SPACES,
               dataset: str = "steam", scale: str = "ci",
               steps: Optional[int] = None, seed: int = 0,
               chaos_rate: float = 0.0,
               failure_budget: int = 64) -> List[CampaignSpec]:
    """Expand a ranker × action-space sweep into campaign specs.

    Every cell gets the same seed, budget, and chaos settings, so the
    grid is a controlled comparison; cell names are
    ``<ranker>-<action_space>`` and double as checkpoint file names.
    """
    if not rankers or not action_spaces:
        raise ValueError("grid needs at least one ranker and action space")
    specs = []
    for ranker in rankers:
        for action_space in action_spaces:
            specs.append(CampaignSpec(
                name=f"{ranker}-{action_space}",
                dataset=dataset,
                ranker=ranker,
                action_space=action_space,
                scale=scale,
                seed=seed,
                steps=steps,
                chaos_rate=chaos_rate,
                failure_budget=failure_budget,
            ))
    return specs
