"""repro.serve — fault-tolerant campaign orchestration.

Runs a fleet of concurrent attack campaigns over one shared
:class:`~repro.perf.pool.QueryPool` worker fleet, with supervision
(per-campaign failure isolation, checkpointed restarts with exponential
backoff), tiered graceful degradation (pooled → reduced → serial), a
crash-safe scheduler journal (``kill -9`` resumes bit-identically), and
cooperative SIGTERM/SIGINT drains.  See ``docs/serving.md``.
"""

from .campaign import CampaignRecord, CampaignSpec, CampaignStatus
from .degrade import TIERS, DegradationController
from .grid import DEFAULT_ACTION_SPACES, DEFAULT_RANKERS, grid_specs
from .journal import (JOURNAL_FORMAT, JOURNAL_VERSION, FleetLedger,
                      LedgerEntry, SchedulerJournal, read_events, replay)
from .router import CampaignQueryClient, CampaignRouter
from .scheduler import CampaignScheduler, FleetResult, default_builder
from .supervision import (FATAL_ERRORS, HOST_ERRORS, RESTARTABLE_ERRORS,
                          CampaignSupervisor, DrainController,
                          DrainRequested, RestartPolicy)
from .telemetry import CampaignTelemetry, FleetTelemetry

__all__ = [
    "CampaignRecord",
    "CampaignSpec",
    "CampaignStatus",
    "DegradationController",
    "TIERS",
    "DEFAULT_ACTION_SPACES",
    "DEFAULT_RANKERS",
    "grid_specs",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "FleetLedger",
    "LedgerEntry",
    "SchedulerJournal",
    "read_events",
    "replay",
    "CampaignQueryClient",
    "CampaignRouter",
    "CampaignScheduler",
    "FleetResult",
    "default_builder",
    "CampaignSupervisor",
    "DrainController",
    "DrainRequested",
    "RestartPolicy",
    "FATAL_ERRORS",
    "HOST_ERRORS",
    "RESTARTABLE_ERRORS",
    "CampaignTelemetry",
    "FleetTelemetry",
]
