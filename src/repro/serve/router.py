"""Routing a shared worker fleet across many campaign environments.

One :class:`~repro.perf.pool.QueryPool` can only replicate a single
``system`` object into its forked workers.  To serve a whole fleet of
campaigns over one pool, that object is a :class:`CampaignRouter`: it
holds every campaign's environment, and its ``attack`` accepts
*tagged* tasks ``(campaign_name, trajectories)``, unwrapping them to
the right environment.  Workers fork the router (and therefore every
environment) copy-on-write, so adding campaigns costs no pickling and
no duplicate ranker fits.

:class:`CampaignQueryClient` is the per-campaign facade handed to each
:class:`~repro.core.agent.PoisonRec` as its ``query_pool``: it tags the
agent's untagged trajectory batches with the campaign name before
dispatching them, and counts the campaign's dispatched queries for
telemetry.  Because :func:`~repro.runtime.faults.query_digest` hashes
the tag along with the trajectories, per-query fault schedules remain
deterministic per campaign even when two campaigns submit identical
trajectory content.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..perf.pool import QueryOutcome
from ..perf.profile import QueryProfiler, find_profiler


class CampaignRouter:
    """The single pool-replicated object holding every campaign's env."""

    def __init__(self) -> None:
        self._envs: Dict[str, object] = {}

    def register(self, name: str, env) -> None:
        """Add one campaign's environment under its (unique) name."""
        if name in self._envs:
            raise ValueError(f"campaign {name!r} is already registered")
        self._envs[name] = env

    @property
    def campaigns(self) -> List[str]:
        """Registered campaign names, in registration order."""
        return list(self._envs)

    def environment(self, name: str):
        """The environment registered under ``name``."""
        return self._envs[name]

    def attack(self, task) -> float:
        """Serve one tagged query ``(campaign_name, trajectories)``."""
        name, trajectories = task
        return float(self._envs[name].attack(trajectories))

    def resolve_profiler(self, task) -> Optional[QueryProfiler]:
        """The profiler of the campaign a tagged ``task`` routes to.

        The :func:`~repro.perf.profile.find_profiler` hook: workers use
        it to attribute each query's phase timings to the right
        campaign, and the parent uses it to merge shipped deltas back
        into that campaign's parent-side profiler.
        """
        name, _ = task
        return find_profiler(self._envs.get(name))

    def __repr__(self) -> str:
        return f"CampaignRouter(campaigns={list(self._envs)})"


class CampaignQueryClient:
    """Per-campaign ``query_pool`` facade over the shared fleet pool.

    Implements exactly the surface :class:`~repro.core.agent.PoisonRec`
    uses (``attack_many``), tagging each trajectory set with the
    campaign name so the pool's router can unwrap it — in a worker, or
    in the parent on the serial-fallback path.
    """

    def __init__(self, pool, name: str) -> None:
        self.pool = pool
        self.name = name
        #: Queries this campaign has dispatched through the fleet
        #: (telemetry; worker-side query counts never reach the parent).
        self.queries = 0

    def attack_many(self, trajectory_sets: Sequence, retry=None, rng=None,
                    sleep=None) -> List[QueryOutcome]:
        """Dispatch one tagged batch; outcomes in submission order."""
        tagged = [(self.name, trajectories)
                  for trajectories in trajectory_sets]
        self.queries += len(tagged)
        return self.pool.attack_many(tagged, retry=retry, rng=rng,
                                     sleep=sleep)

    def __repr__(self) -> str:
        return (f"CampaignQueryClient({self.name!r}, "
                f"queries={self.queries})")
