"""The campaign scheduler: N attack campaigns over one worker fleet.

:class:`CampaignScheduler` multiplexes any number of submitted
campaigns (arbitrary dataset/ranker/action-space/seed combinations)
over a single shared :class:`~repro.perf.pool.QueryPool`.  Scheduling
is fair-share with priorities: each round, the non-terminal campaign
with the least *weighted* progress (``steps_done / priority``) runs one
slice of training steps, so every campaign advances and a priority-2
campaign advances twice as fast as a priority-1 sibling.

Robustness is layered on end to end:

* every slice ends with a crash-safe campaign checkpoint
  (:mod:`repro.runtime.checkpoint`) and a fsynced journal line
  (:mod:`repro.serve.journal`), so ``kill -9`` of the orchestrator
  loses at most one in-flight slice — :meth:`resume` replays the
  journal and continues the whole fleet bit-identically;
* slice failures are supervised (:mod:`repro.serve.supervision`):
  transient trouble restarts the campaign from its last checkpoint
  with exponential backoff, fatal trouble quarantines it to ``FAILED``
  without touching siblings;
* the fleet degrades gracefully (:mod:`repro.serve.degrade`): a broken
  or crash-storming pool is rebuilt smaller, and ultimately dropped for
  in-process serial execution — identical results, reduced throughput;
* SIGTERM/SIGINT drain cooperatively: in-flight queries finish, every
  campaign checkpoints, the journal records the drain, exit code 0.

Because pooled execution is bit-exact with serial execution (the
pool's equivalence guarantee) and fault schedules are pure functions of
query content (:mod:`repro.runtime.faults`), every campaign's final
``TrainResult`` is independent of the tier, the worker count, sibling
campaigns, crashes healed along the way, and where drains or resumes
sliced the run.
"""

from __future__ import annotations

import math
import pathlib
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core import PoisonRec
from ..perf.pool import QueryPool
from ..perf.profile import QueryProfiler
from ..runtime.checkpoint import load_campaign, save_campaign
from ..runtime.errors import FailureBudgetExhausted
from ..runtime.faults import FaultPlan, FaultyEnvironment, WorkerFaultPlan
from ..runtime.resilience import ResilienceConfig
from ..runtime.retry import RetryPolicy
from .campaign import CampaignRecord, CampaignSpec, CampaignStatus
from .degrade import DegradationController
from .journal import SchedulerJournal, replay
from .router import CampaignQueryClient, CampaignRouter
from .supervision import (HOST_ERRORS, CampaignSupervisor, DrainController,
                          DrainRequested, RestartPolicy)
from .telemetry import FleetTelemetry


def default_builder(spec: CampaignSpec):
    """Standard testbed builder: ``(env, config, default_steps)``.

    Resolves the spec's scale through the experiment registry and fits
    the recommender system.  Tests inject lighter builders.
    """
    from ..experiments import SCALES, build_environment
    scale = SCALES[spec.scale]
    _, _, env = build_environment(spec.dataset, spec.ranker, scale,
                                  seed=spec.seed)
    return env, scale.config(seed=spec.seed), scale.rl_steps


@dataclass
class FleetResult:
    """Outcome of one :meth:`CampaignScheduler.run` call."""

    records: Dict[str, CampaignRecord] = field(default_factory=dict)
    drained: bool = False
    tier: str = "pooled"
    pool_crashes: int = 0
    serial_fallbacks: int = 0

    @property
    def completed(self) -> List[str]:
        return [name for name, record in self.records.items()
                if record.status is CampaignStatus.COMPLETED]

    @property
    def failed(self) -> List[str]:
        return [name for name, record in self.records.items()
                if record.status is CampaignStatus.FAILED]

    @property
    def all_completed(self) -> bool:
        return all(record.status is CampaignStatus.COMPLETED
                   for record in self.records.values())


class CampaignScheduler:
    """Fair-share, fault-tolerant orchestrator for a campaign fleet.

    Parameters
    ----------
    directory:
        Fleet home: the journal (``journal.jsonl``) and every
        campaign's checkpoint (``<name>.npz``) live here.
    workers:
        Worker fleet size at the healthy (``pooled``) tier; ``1`` runs
        the whole fleet in-process.
    slice_steps:
        Training steps one campaign runs per scheduling turn.  Smaller
        slices interleave campaigns more finely and checkpoint more
        often; results are identical for any slicing.
    stall_timeout:
        Per-query worker heartbeat deadline (seconds); ``None``
        disables stall detection.
    worker_chaos:
        Optional seeded :class:`~repro.runtime.faults.WorkerFaultPlan`
        injecting worker kills/stalls — fleet-level chaos for soak
        tests.
    builder:
        ``spec -> (env, config, default_steps)`` testbed factory.
    sleep:
        Injectable clock for retry backoff and restart delays.
    obs:
        Optional :class:`~repro.obs.run.RunTelemetry`: traces scheduler
        slices and pool dispatch, counts fleet metrics, and logs it all
        to the crash-safe obs run log.  Wired through to every
        campaign's agent and the shared pool; purely observational.
    """

    def __init__(self, directory, workers: int = 1, slice_steps: int = 2,
                 stall_timeout: Optional[float] = None,
                 worker_chaos: Optional[WorkerFaultPlan] = None,
                 restart: Optional[RestartPolicy] = None,
                 telemetry: Optional[FleetTelemetry] = None,
                 builder: Callable = default_builder,
                 sleep: Callable[[float], None] = time.sleep,
                 min_workers: int = 2, crash_storm: int = 8,
                 obs=None) -> None:
        if slice_steps < 1:
            raise ValueError("slice_steps must be at least 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal = SchedulerJournal(self.directory / "journal.jsonl")
        self.slice_steps = slice_steps
        self.stall_timeout = stall_timeout
        self.worker_chaos = worker_chaos
        self.builder = builder
        self.sleep = sleep
        self.obs = obs
        self.telemetry = telemetry if telemetry is not None \
            else FleetTelemetry(obs=obs)
        self.supervisor = CampaignSupervisor(restart)
        self.drain = DrainController()
        self.degradation = DegradationController(
            workers, min_workers=min_workers, crash_storm=crash_storm)
        self.router = CampaignRouter()
        self.records: Dict[str, CampaignRecord] = {}
        self._pool: Optional[QueryPool] = None
        self._pool_crashes = 0
        self._pool_fallbacks = 0

    # ------------------------------------------------------------------
    # Submission and resume
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec,
               journal: bool = True) -> CampaignRecord:
        """Register one campaign; journaled unless replaying a resume."""
        if spec.name in self.records:
            raise ValueError(f"campaign {spec.name!r} already submitted")
        record = CampaignRecord(spec, self.directory,
                                submit_order=len(self.records))
        self.records[spec.name] = record
        if journal:
            self.journal.append({"event": "submit", "name": spec.name,
                                 "spec": spec.to_json()})
        return record

    def resume(self) -> None:
        """Reload the fleet from the journal after a crash or drain.

        Terminal campaigns keep their recorded state; every other
        campaign re-enters the queue and will continue from its last
        checkpoint.  New campaigns may still be submitted afterwards.
        """
        ledger = replay(self.journal.path)
        for name, entry in sorted(ledger.campaigns.items(),
                                  key=lambda item: item[1].order):
            record = self.submit(CampaignSpec.from_json(entry.spec),
                                 journal=False)
            record.restarts = entry.restarts
            if entry.status == "completed":
                record.status = CampaignStatus.COMPLETED
            elif entry.status == "failed":
                record.status = CampaignStatus.FAILED
                record.last_error = entry.error
            # Hydrate telemetry with the prior process's journaled
            # counters so the summary table shows real history instead
            # of ``best=-`` and zeroes for resumed campaigns.
            self.telemetry.hydrate(
                name, steps=entry.steps_done, best=entry.best_reward,
                retries=entry.retries, quarantined=entry.quarantined,
                restarts=entry.restarts)

    # ------------------------------------------------------------------
    # Fleet construction
    # ------------------------------------------------------------------
    def _build(self, record: CampaignRecord) -> None:
        spec = record.spec
        env, config, default_steps = self.builder(spec)
        if spec.chaos_rate > 0.0:
            env = FaultyEnvironment(
                env, FaultPlan.retryable(spec.chaos_rate, seed=spec.seed))
        record.env = env
        record.config = config
        if record.total_steps is None:
            record.total_steps = default_steps
        self.router.register(spec.name, env)
        self._attach_profiler(record)
        self._rebuild_agent(record)

    def _attach_profiler(self, record: CampaignRecord) -> None:
        """Hang a QueryProfiler on the underlying recommender system."""
        target = record.env
        for _ in range(8):
            if target is None:
                return
            if hasattr(target, "profiler"):
                record.profiler = QueryProfiler()
                target.profiler = record.profiler
                return
            inner = getattr(target, "_system", None)
            if inner is None:
                inner = getattr(target, "_env", None)
            target = inner
        record.profiler = None

    def _rebuild_agent(self, record: CampaignRecord) -> None:
        """Fresh agent, restored from the last checkpoint if one exists."""
        record.agent = PoisonRec(record.env, record.config,
                                 action_space=record.spec.action_space,
                                 obs=self.obs)
        record.agent.obs_attrs = {"campaign": record.spec.name}
        if record.checkpoint_path.exists():
            load_campaign(record.agent, record.checkpoint_path)

    def _build_all(self) -> None:
        for record in self.records.values():
            if record.status.terminal:
                continue
            if record.agent is None:
                self._build(record)
            if record.remaining == 0:
                self._complete(record)

    def _ensure_pool(self) -> None:
        if self.degradation.serial or self._pool is not None:
            return
        self._pool = QueryPool(self.router,
                               workers=self.degradation.workers,
                               stall_timeout=self.stall_timeout,
                               chaos=self.worker_chaos)
        if self.obs is not None:
            # Parent-side attachments only: workers are forked from
            # ``self.router`` and never see the tracer or its log file.
            self._pool.tracer = self.obs.tracer
            self._pool.metrics = self.obs.metrics

    def _retire_pool(self) -> None:
        if self._pool is not None:
            self._pool_crashes += self._pool.crashes
            self._pool_fallbacks += self._pool.serial_fallbacks
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def run(self, handle_signals: bool = False) -> FleetResult:
        """Drive every campaign to a terminal state (or drain).

        ``handle_signals=True`` routes SIGTERM/SIGINT into a graceful
        drain (main thread only).  Returns the fleet outcome either
        way; a drained fleet resumes with :meth:`resume` + :meth:`run`.
        """
        if handle_signals:
            self.drain.install()
        try:
            self._build_all()
            self._ensure_pool()
            while not self.drain.requested:
                record = self._next_runnable()
                if record is None:
                    if self._await_backoff():
                        continue
                    break
                self._run_slice(record)
                self._assess_fleet()
            if self.drain.requested:
                self._drain_all()
        finally:
            self._retire_pool()
            if handle_signals:
                self.drain.uninstall()
            self.journal.close()
        for record in self.records.values():
            self.telemetry.rollup_profiler(record.spec.name, record.profiler)
        return FleetResult(records=dict(self.records),
                           drained=self.drain.requested,
                           tier=self.degradation.tier,
                           pool_crashes=self._pool_crashes,
                           serial_fallbacks=self._pool_fallbacks)

    def _next_runnable(self) -> Optional[CampaignRecord]:
        now = time.monotonic()
        runnable = [record for record in self.records.values()
                    if not record.status.terminal
                    and record.backoff_until <= now]
        if not runnable:
            return None
        return min(runnable, key=lambda record: record.fair_share_key)

    def _await_backoff(self) -> bool:
        """Sleep until the earliest backing-off campaign is runnable.

        Returns False when no campaign owes work (the fleet is done).
        """
        waiting = [record for record in self.records.values()
                   if not record.status.terminal]
        if not waiting:
            return False
        earliest = min(waiting, key=lambda record: record.backoff_until)
        self.sleep(max(earliest.backoff_until - time.monotonic(), 0.0))
        # The sleep contract is fulfilled even under injected test
        # clocks, so the earliest campaign is now runnable by fiat.
        earliest.backoff_until = 0.0
        return True

    def _client(self, record: CampaignRecord):
        if self._pool is None:
            return None
        if record.client is None or record.client.pool is not self._pool:
            record.client = CampaignQueryClient(self._pool, record.spec.name)
        return record.client

    def _resilience(self, record: CampaignRecord,
                    steps: int) -> ResilienceConfig:
        spec = record.spec
        return ResilienceConfig(
            retry=RetryPolicy(max_attempts=spec.max_retries + 1),
            failure_budget=spec.failure_budget,
            checkpoint_path=record.checkpoint_path,
            checkpoint_every=steps,
            jitter_seed=spec.seed,
            sleep=self.sleep)

    def _journal_slice(self, record: CampaignRecord) -> None:
        """Append one slice event with the campaign's telemetry counters.

        Beyond the step watermark the event carries the cumulative
        best/retries/quarantined counters (summed over the agent's full
        restored history, so they span prior processes), from which
        :meth:`resume` hydrates :class:`~repro.serve.telemetry
        .FleetTelemetry` after a crash or drain.  ``best`` is
        ``None``-encoded while still ``-inf`` (strict JSON).
        """
        agent = record.agent
        best = agent.result.best_reward
        history = agent.result.history
        self.journal.append({
            "event": "slice", "name": record.spec.name,
            "step": agent.step,
            "best": best if math.isfinite(best) else None,
            "retries": sum(s.retries for s in history),
            "quarantined": sum(s.quarantined for s in history)})

    def _slice_span(self, record: CampaignRecord, steps: int):
        if self.obs is None:
            return nullcontext()
        return self.obs.span("slice", campaign=record.spec.name,
                             steps=steps, tier=self.degradation.tier)

    def _run_slice(self, record: CampaignRecord) -> None:
        spec = record.spec
        record.status = CampaignStatus.RUNNING
        if not record.journaled_running:
            record.journaled_running = True
            self.journal.append({"event": "status", "name": spec.name,
                                 "status": "running"})
        agent = record.agent
        agent.query_pool = self._client(record)
        steps = min(self.slice_steps, record.remaining)

        def callback(stats) -> None:
            self.telemetry.observe(spec.name, stats)
            if self.drain.requested:
                raise DrainRequested()

        try:
            with self._slice_span(record, steps):
                agent.train(steps, callback=callback,
                            resilience=self._resilience(record, steps))
        except DrainRequested:
            # The step that just finished is complete and consistent;
            # persist it so the drain loses nothing.
            save_campaign(agent, record.checkpoint_path)
            self._journal_slice(record)
            record.status = CampaignStatus.WAITING
            return
        except Exception as error:  # supervised: isolate, never spread
            if isinstance(error, HOST_ERRORS):
                raise  # a sick host is not a campaign-local fault
            self._handle_failure(record, error)
            return
        self._journal_slice(record)
        try:
            self.supervisor.charge_quarantines(record)
        except FailureBudgetExhausted as error:
            self._fail(record, error)
            return
        if record.remaining == 0:
            self._complete(record)
        else:
            record.status = CampaignStatus.WAITING

    def _handle_failure(self, record: CampaignRecord,
                        error: Exception) -> None:
        spec = record.spec
        if self.supervisor.classify(record, error) == "restart":
            record.restarts += 1
            record.last_error = str(error)
            delay = self.supervisor.restart.delay(record.restarts)
            record.backoff_until = time.monotonic() + delay
            record.status = CampaignStatus.RESTARTING
            self.journal.append({"event": "status", "name": spec.name,
                                 "status": "restarting",
                                 "restarts": record.restarts,
                                 "error": str(error)})
            self.telemetry.note_restart(spec.name)
            self.telemetry.event(
                f"campaign {spec.name} restarting from checkpoint "
                f"(attempt {record.restarts}/{spec.max_restarts}, "
                f"backoff {delay:.2f}s): {error}")
            self._rebuild_agent(record)
        else:
            self._fail(record, error)

    def _fail(self, record: CampaignRecord, error: Exception) -> None:
        record.status = CampaignStatus.FAILED
        record.last_error = str(error)
        self.journal.append({"event": "status", "name": record.spec.name,
                             "status": "failed", "error": str(error),
                             "restarts": record.restarts})
        self.telemetry.event(
            f"campaign {record.spec.name} FAILED (isolated): {error}")

    def _complete(self, record: CampaignRecord) -> None:
        record.status = CampaignStatus.COMPLETED
        self.journal.append({"event": "status", "name": record.spec.name,
                             "status": "completed",
                             "step": record.steps_done})
        self.telemetry.event(
            f"campaign {record.spec.name} completed "
            f"({record.steps_done} steps, best "
            f"{record.agent.result.best_reward:.0f})")

    # ------------------------------------------------------------------
    # Degradation and drain
    # ------------------------------------------------------------------
    def _assess_fleet(self) -> None:
        new_tier = self.degradation.assess(self._pool)
        if new_tier is None:
            return
        self.journal.append({"event": "tier", "tier": new_tier,
                             "workers": self.degradation.workers})
        self.telemetry.metrics.counter("fleet.tier_changes",
                                       tier=new_tier).inc()
        self.telemetry.metrics.gauge("fleet.workers").set(
            self.degradation.workers)
        self.telemetry.event(
            f"fleet degraded to {new_tier} tier "
            f"({self.degradation.workers} worker(s)): "
            f"{self.degradation.reason}")
        self._retire_pool()
        self._ensure_pool()

    def _drain_all(self) -> None:
        """Record the drain; every campaign is already checkpointed.

        Slices end with a checkpoint, and a drain interrupting a slice
        checkpoints before unwinding — so by the time the loop reaches
        here there is nothing left to flush except the journal line.
        """
        self.journal.append({"event": "drain",
                             "reason": self.drain.reason or "requested"})
        self.telemetry.event(
            f"fleet drained ({self.drain.reason}): in-flight work "
            "checkpointed, resume with --resume")
