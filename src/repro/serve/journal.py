"""Crash-safe scheduler journal: the fleet's source of truth on disk.

The scheduler appends one JSON line per fleet event — campaign
submission, status transitions, slice completions (each backed by a
crash-safe campaign checkpoint), degradation tier changes, drains.
Every line is flushed and fsynced before the scheduler proceeds, so a
``kill -9`` of the *orchestrator* can at worst tear the final line.
:func:`read_events` tolerates exactly that: a garbled or truncated
*last* line is dropped (the event it described never committed), while
corruption anywhere earlier raises
:class:`~repro.runtime.errors.CorruptCheckpointError` — that cannot be
produced by a crash mid-append and means the journal was damaged.

:func:`replay` folds the surviving events into per-campaign ledger
entries (spec, status, steps completed, restart count), from which
``CampaignScheduler.resume`` reconstructs the whole fleet: every
non-terminal campaign re-enters the run queue and continues from its
last checkpoint bit-identically.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..obs.jsonl import JsonlSink, read_jsonl
from ..runtime.checkpoint import PathLike
from ..runtime.errors import CorruptCheckpointError

JOURNAL_FORMAT = "poisonrec-fleet-journal"
JOURNAL_VERSION = 1


class SchedulerJournal:
    """Append-only, fsync-per-line fleet event log.

    A thin discipline over :class:`~repro.obs.jsonl.JsonlSink` in its
    journal-grade (fsync-per-record) mode, plus the fleet's format
    header and the requirement that every record carries an ``event``
    discriminator.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self._sink: Optional[JsonlSink] = None

    def _ensure_open(self) -> None:
        if self._sink is None:
            fresh = not self.path.exists()
            self._sink = JsonlSink(self.path, fsync=True)
            if fresh:
                self._sink.append({"event": "format",
                                   "format": JOURNAL_FORMAT,
                                   "version": JOURNAL_VERSION})

    def append(self, event: dict) -> None:
        """Durably append one event (committed before this returns)."""
        if "event" not in event:
            raise ValueError("journal events need an 'event' key")
        self._ensure_open()
        self._sink.append(event)

    def close(self) -> None:
        """Release the file handle (appends may resume later)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "SchedulerJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(path: PathLike) -> List[dict]:
    """Parse a journal, dropping at most one torn final line."""
    path = pathlib.Path(path)
    events = read_jsonl(path, what="scheduler journal",
                        expect_key="event")
    if not events or events[0].get("event") != "format":
        raise CorruptCheckpointError(
            f"{path} is not a fleet journal (missing format header)")
    header = events[0]
    if (header.get("format") != JOURNAL_FORMAT
            or header.get("version") != JOURNAL_VERSION):
        raise CorruptCheckpointError(
            f"{path} has unsupported journal format "
            f"{header.get('format')!r} v{header.get('version')!r}")
    return events[1:]


@dataclass
class LedgerEntry:
    """Folded journal state of one campaign."""

    spec: dict
    status: str = "pending"
    steps_done: int = 0
    restarts: int = 0
    error: Optional[str] = None
    #: Submission order (journal position), for fair-share tie-breaks.
    order: int = 0
    #: Best reward the campaign had journaled (``None`` = none yet, or
    #: an old-format journal without slice counters).
    best_reward: Optional[float] = None
    #: Cumulative retry/quarantine counters at the last slice.
    retries: int = 0
    quarantined: int = 0


@dataclass
class FleetLedger:
    """Everything :func:`replay` recovers from a journal."""

    campaigns: Dict[str, LedgerEntry] = field(default_factory=dict)
    #: Last recorded degradation tier (``None`` = never recorded).
    tier: Optional[str] = None
    workers: Optional[int] = None
    drained: bool = False

    def pending(self) -> Iterator[LedgerEntry]:
        """Entries that still owe work, in submission order."""
        for entry in sorted(self.campaigns.values(),
                            key=lambda e: e.order):
            if entry.status not in ("completed", "failed"):
                yield entry


def replay(path: PathLike) -> FleetLedger:
    """Fold a journal into the fleet state at the moment of the crash."""
    ledger = FleetLedger()
    for event in read_events(path):
        kind = event["event"]
        if kind == "submit":
            spec = event["spec"]
            name = spec["name"]
            if name not in ledger.campaigns:
                ledger.campaigns[name] = LedgerEntry(
                    spec=spec, order=len(ledger.campaigns))
        elif kind == "status":
            entry = ledger.campaigns.get(event["name"])
            if entry is None:
                raise CorruptCheckpointError(
                    f"journal {path}: status event for unsubmitted "
                    f"campaign {event['name']!r}")
            entry.status = event["status"]
            entry.restarts = int(event.get("restarts", entry.restarts))
            entry.error = event.get("error", entry.error)
        elif kind == "slice":
            entry = ledger.campaigns.get(event["name"])
            if entry is None:
                raise CorruptCheckpointError(
                    f"journal {path}: slice event for unsubmitted "
                    f"campaign {event['name']!r}")
            entry.steps_done = int(event["step"])
            # Telemetry counters (absent in pre-obs journals; ``best``
            # is None both then and while every observation was NaN).
            best = event.get("best")
            if best is not None:
                entry.best_reward = float(best)
            entry.retries = int(event.get("retries", entry.retries))
            entry.quarantined = int(event.get("quarantined",
                                              entry.quarantined))
        elif kind == "tier":
            ledger.tier = event["tier"]
            ledger.workers = event.get("workers")
        elif kind == "drain":
            # A drain is a clean pause, not an end state: replaying a
            # drained journal resumes the remaining campaigns.
            ledger.drained = True
        # Unknown events are ignored for forward compatibility.
    return ledger
