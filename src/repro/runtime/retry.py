"""Retry with exponential backoff + jitter, and the campaign failure budget.

The black-box targets PoisonRec attacks are exactly the systems that fail
transiently (rate limits, flaky endpoints, retraining hiccups), so every
environment query in the resilient campaign loop runs through
:func:`call_with_retry`.  Backoff delays grow geometrically and are
jittered so a fleet of campaigns does not synchronize its retries; the
``sleep`` callable is injectable so tests (and simulated environments)
never actually block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from .errors import (FailureBudgetExhausted, RetriesExhaustedError,
                     TransientEnvironmentError)


@dataclass
class RetryPolicy:
    """Exponential-backoff schedule for transient environment failures.

    ``max_attempts`` bounds the *total* number of tries (first attempt
    included); delays grow as ``base_delay * multiplier**(attempt-1)``,
    capped at ``max_delay`` and spread by ``jitter`` (a symmetric
    fraction, so ``jitter=0.5`` means +/-50%).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int,
                rng: Optional[np.random.Generator] = None) -> float:
        """Delay in seconds before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(delay, 0.0)


@dataclass
class RetryOutcome:
    """Result of a retried call: the value plus how many retries it cost."""

    value: Any
    retries: int


def call_with_retry(fn: Callable[[], Any],
                    policy: Optional[RetryPolicy] = None,
                    rng: Optional[np.random.Generator] = None,
                    sleep: Optional[Callable[[float], None]] = None,
                    on_retry: Optional[Callable[[int, Exception, float],
                                                None]] = None) -> RetryOutcome:
    """Invoke ``fn`` under ``policy``, retrying transient failures.

    Only :class:`TransientEnvironmentError` (and subclasses) triggers a
    retry; anything else — including :class:`FatalEnvironmentError` —
    propagates immediately.  When the attempt budget is spent the last
    transient error is wrapped in :class:`RetriesExhaustedError` (with
    the original as ``__cause__``).  ``on_retry(attempt, error, delay)``
    is called before each backoff sleep.
    """
    policy = policy if policy is not None else RetryPolicy()
    sleep = time.sleep if sleep is None else sleep
    failures = 0
    while True:
        try:
            return RetryOutcome(value=fn(), retries=failures)
        except TransientEnvironmentError as error:
            failures += 1
            if failures >= policy.max_attempts:
                raise RetriesExhaustedError(
                    f"gave up after {failures} attempt(s): {error}",
                    attempts=failures) from error
            delay = policy.backoff(failures, rng)
            if on_retry is not None:
                on_retry(failures, error, delay)
            if delay > 0.0:
                sleep(delay)


class FailureBudget:
    """Caps how many samples a campaign may permanently lose.

    Each quarantined sample (a query whose retries were all exhausted)
    spends one unit; exceeding ``limit`` raises
    :class:`FailureBudgetExhausted`, turning a silently degrading
    campaign into a loud, typed stop.
    """

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("failure budget must be non-negative")
        self.limit = limit
        self.consumed = 0

    @property
    def remaining(self) -> int:
        """Units left before the budget is exhausted."""
        return max(self.limit - self.consumed, 0)

    def spend(self, cost: int = 1, reason: str = "") -> None:
        """Consume ``cost`` units; raise once the limit is exceeded."""
        self.consumed += cost
        if self.consumed > self.limit:
            suffix = f" (last failure: {reason})" if reason else ""
            raise FailureBudgetExhausted(
                f"campaign failure budget of {self.limit} quarantined "
                f"sample(s) exhausted{suffix}")

    def __repr__(self) -> str:
        return (f"FailureBudget(limit={self.limit}, "
                f"consumed={self.consumed})")
