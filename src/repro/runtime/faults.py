"""Fault injection: a chaos-mode wrapper over the black-box environment.

:class:`FaultyEnvironment` decorates any
:class:`~repro.recsys.system.BlackBoxEnvironment`-shaped object with a
seeded schedule of the transient failures real query-limited targets
exhibit: raised transient errors, deadline-budget timeouts, NaN/garbage
RecNum readings, and stale (cached) recommendations.

Per-query determinism
---------------------
Whether a given query is faulted is a *pure function* of the plan seed,
the query's trajectory content, and how many times that exact content
has been attempted (``sha256(seed, trajectories, occurrence)`` — no RNG
object, no call-order dependence).  Two consequences:

* a given seed reproduces the exact same fault schedule — the chaos
  tests and the CI chaos smoke job stay deterministic;
* the schedule survives process forks: a :class:`~repro.perf.pool.QueryPool`
  worker holding a replica of this wrapper injects exactly the faults
  the serial run would have injected for the same queries, so pooled
  chaos campaigns remain bit-identical to serial chaos campaigns.

Injected *transient* and *timeout* errors are tagged
``replica_safe=True``: they carry no risk of a corrupted replica, so
the pool keeps the worker alive instead of recycling it.

:class:`WorkerFaultPlan` is the fleet-level counterpart: a seeded
schedule of worker *kills* and *stalls* (drawn per dispatch attempt of
a query) that exercises the pool's crash-healing and heartbeat paths.

The wrapper exposes the same attacker-facing surface as the wrapped
environment (item universe, targets, popularity, ``attack``,
``clean_recnum``, ``query_count``) and can therefore be handed straight
to :class:`~repro.core.agent.PoisonRec`.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from ..effects import pure
from .errors import QueryTimeoutError, TransientEnvironmentError

if TYPE_CHECKING:  # pragma: no cover - type-only import, no runtime dep
    from ..recsys.system import BlackBoxEnvironment


# ----------------------------------------------------------------------
# Content hashing: the substrate of per-query determinism
# ----------------------------------------------------------------------
def _hash_update(h, obj) -> None:
    """Feed one (possibly nested) value into a hash, type-tagged.

    Supports the shapes that appear in query tasks: ints (trajectory
    item ids), floats, strings (campaign tags), bytes, bools, numpy
    scalars/arrays, and arbitrarily nested lists/tuples.  Tags and
    length prefixes make the encoding prefix-free, so distinct values
    can never collide by concatenation.
    """
    if isinstance(obj, (bool, np.bool_)):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + int(obj).to_bytes(8, "little", signed=True))
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"S" + len(raw).to_bytes(4, "little") + raw)
    elif isinstance(obj, bytes):
        h.update(b"Y" + len(obj).to_bytes(4, "little") + obj)
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        _hash_update(h, obj.tolist())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + len(obj).to_bytes(4, "little"))
        for item in obj:
            _hash_update(h, item)
    elif obj is None:
        h.update(b"N")
    else:
        raise TypeError(f"cannot hash query content of type {type(obj)!r}")


@pure
def query_digest(task, seed: int = 0) -> bytes:
    """Stable 32-byte digest of one query's content under ``seed``.

    ``task`` is whatever the pool dispatches — plain trajectory sets or
    ``(campaign, trajectories)`` tagged tasks.  The digest is identical
    across processes and call orders, which is what lets fault schedules
    compose with forked execution.
    """
    h = hashlib.sha256()
    _hash_update(h, int(seed))
    _hash_update(h, task)
    return h.digest()


@pure
def _uniform(digest: bytes, label: str, occurrence: int) -> float:
    """A uniform [0, 1) draw derived purely from ``(digest, label, n)``."""
    h = hashlib.sha256(digest)
    _hash_update(h, label)
    _hash_update(h, int(occurrence))
    return int.from_bytes(h.digest()[:8], "little") / 2.0 ** 64


def _mark_replica_safe(error: Exception) -> Exception:
    """Tag an injected error as harmless to the raising replica.

    The pool treats tagged errors as data (ship + keep the worker)
    instead of evidence of corruption (ship + recycle the worker).
    The attribute rides along through pickling because exception
    ``__dict__`` contents survive ``__reduce__``.
    """
    error.replica_safe = True
    return error


# ----------------------------------------------------------------------
# Environment-level faults
# ----------------------------------------------------------------------
@dataclass
class FaultPlan:
    """Seeded fault schedule: per-query rates for each failure kind.

    Rates are independent probabilities of a *disjoint* outcome per
    query (their sum must stay <= 1); the remainder of the probability
    mass is a healthy query.  ``deadline`` and ``latency_multiplier``
    shape the simulated-latency message attached to injected timeouts —
    no real sleeping happens.

    The draw for a query is a pure hash of ``(seed, content,
    occurrence)``: retrying the same content advances ``occurrence`` and
    gets a fresh draw, while a different call order (or a different
    process) replays the identical schedule.
    """

    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    corrupt_rate: float = 0.0
    stale_rate: float = 0.0
    deadline: float = 1.0
    latency_multiplier: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        rates = (self.transient_rate, self.timeout_rate, self.corrupt_rate,
                 self.stale_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.deadline <= 0.0:
            raise ValueError("deadline must be positive")

    @property
    def total_rate(self) -> float:
        """Combined probability that a query is faulted."""
        return (self.transient_rate + self.timeout_rate + self.corrupt_rate
                + self.stale_rate)

    @classmethod
    def mixed(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A representative blend at ``rate`` total fault probability.

        Split 50% transient errors, 20% timeouts, 20% corrupt rewards,
        10% stale reads — the CLI's ``--chaos RATE`` preset.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("chaos rate must be in [0, 1]")
        return cls(transient_rate=0.5 * rate, timeout_rate=0.2 * rate,
                   corrupt_rate=0.2 * rate, stale_rate=0.1 * rate, seed=seed)

    @classmethod
    def retryable(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A blend of *retryable-only* faults at ``rate`` probability.

        Split 50% transient errors, 20% timeouts, 30% corrupt rewards —
        and deliberately no stale reads.  Every fault in this mix is
        retried away by the campaign loop (corrupt readings through the
        non-finite-reward guard), so a campaign run under this plan
        converges to rewards bit-identical to a fault-free run.  Stale
        reads, by contrast, silently substitute the clean baseline and
        *would* change the observed history; ``repro.serve`` therefore
        uses this mix for fleet chaos, where per-campaign results must
        stay comparable across faulted and clean runs.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("chaos rate must be in [0, 1]")
        return cls(transient_rate=0.5 * rate, timeout_rate=0.2 * rate,
                   corrupt_rate=0.3 * rate, seed=seed)

    @pure
    def draw(self, digest: bytes,
             occurrence: int) -> Tuple[Optional[str], float]:
        """Fault decision for the ``occurrence``-th attempt of a query.

        Returns ``(kind, latency_fraction)`` where ``kind`` is one of
        ``"transient" | "timeout" | "corrupt" | "stale" | None`` and the
        fraction parameterizes the simulated timeout latency.
        """
        u = _uniform(digest, "fault", occurrence)
        edge = 0.0 + self.transient_rate
        if u < edge:
            return "transient", 0.0
        edge = edge + self.timeout_rate
        if u < edge:
            return "timeout", _uniform(digest, "latency", occurrence)
        edge = edge + self.corrupt_rate
        if u < edge:
            return "corrupt", 0.0
        edge = edge + self.stale_rate
        if u < edge:
            return "stale", 0.0
        return None, 0.0


class FaultyEnvironment:
    """A black-box environment that fails on a seeded per-query schedule.

    Wraps a real environment and, per :meth:`attack` call, either
    forwards the query or injects one of the plan's fault kinds:

    * ``transient`` — raises :class:`TransientEnvironmentError` without
      touching the wrapped system (tagged replica-safe);
    * ``timeout`` — raises :class:`QueryTimeoutError` carrying the
      simulated latency that blew the deadline budget (replica-safe);
    * ``corrupt`` — performs the real query but reports ``NaN``
      (a garbage RecNum reading the caller must detect);
    * ``stale`` — returns the clean-baseline RecNum instead of the
      query's true reward (a cache serving pre-attack recommendations).

    ``injected`` tallies every fault by kind for telemetry and tests.
    In pooled mode each forked replica keeps its own tally; the
    parent's wrapper only counts faults it injected in-process.
    """

    def __init__(self, env: "BlackBoxEnvironment", plan: FaultPlan) -> None:
        self._env = env
        self.plan = plan
        #: Attempt counters keyed by query digest — the ``occurrence``
        #: axis of the per-query fault draws.
        self._occurrences: Dict[bytes, int] = {}
        self._stale_reward: Optional[float] = None
        self.injected: Dict[str, int] = {
            "transient": 0, "timeout": 0, "corrupt": 0, "stale": 0}
        # Mirror the attacker-facing knowledge surface of the wrapped env.
        self.num_original_items = env.num_original_items
        self.num_items = env.num_items
        self.target_items = env.target_items.copy()
        self.num_attackers = env.num_attackers
        self.item_popularity = env.item_popularity.copy()

    # ------------------------------------------------------------------
    def attack(self, trajectories: Sequence[Sequence[int]]) -> float:
        """Forward one query, or inject the scheduled fault instead."""
        plan = self.plan
        digest = query_digest(trajectories, seed=plan.seed)
        occurrence = self._occurrences.get(digest, 0)
        self._occurrences[digest] = occurrence + 1
        kind, latency_u = plan.draw(digest, occurrence)
        if kind == "transient":
            self.injected["transient"] += 1
            raise _mark_replica_safe(TransientEnvironmentError(
                f"injected transient environment failure "
                f"(query {digest.hex()[:8]}, attempt {occurrence + 1})"))
        if kind == "timeout":
            self.injected["timeout"] += 1
            latency = plan.deadline * (
                1.0 + latency_u * plan.latency_multiplier)
            raise _mark_replica_safe(QueryTimeoutError(
                f"injected query timeout: simulated latency {latency:.2f}s "
                f"exceeded the {plan.deadline:.2f}s deadline budget"))
        if kind == "corrupt":
            self.injected["corrupt"] += 1
            self._env.attack(trajectories)
            return float("nan")
        if kind == "stale":
            self.injected["stale"] += 1
            if self._stale_reward is None:
                self._stale_reward = float(self._env.clean_recnum())
            return self._stale_reward
        return float(self._env.attack(trajectories))

    def clean_recnum(self) -> int:
        """Pass through to the wrapped environment (never faulted)."""
        return self._env.clean_recnum()

    @property
    def query_count(self) -> int:
        """Queries actually served by the wrapped system."""
        return self._env.query_count

    def __repr__(self) -> str:
        return (f"FaultyEnvironment(total_rate={self.plan.total_rate:.3f}, "
                f"seed={self.plan.seed}, injected={self.injected})")


# ----------------------------------------------------------------------
# Fleet-level faults
# ----------------------------------------------------------------------
@dataclass
class WorkerFaultPlan:
    """Seeded worker-chaos schedule: kills and stalls per dispatch.

    The :class:`~repro.perf.pool.QueryPool` draws a directive for every
    ``(query content, dispatch attempt)`` pair — a pure hash, exactly
    like :class:`FaultPlan` — and ships it to the worker alongside the
    query.  ``kill`` makes the worker exit abruptly mid-query (the
    crash-healing path must reap, respawn, and requeue); ``stall``
    makes it sleep past the pool's ``stall_timeout`` (the heartbeat
    path must detect and recycle it).  Because the draw is keyed on the
    dispatch attempt, a re-issued query gets a fresh draw and the
    batch always converges.
    """

    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_rate <= 1.0:
            raise ValueError("kill_rate must be in [0, 1]")
        if not 0.0 <= self.stall_rate <= 1.0:
            raise ValueError("stall_rate must be in [0, 1]")
        if self.kill_rate + self.stall_rate > 1.0:
            raise ValueError("worker fault rates must sum to at most 1")
        if self.stall_seconds <= 0.0:
            raise ValueError("stall_seconds must be positive")

    @pure
    def directive(self, task, attempt: int) -> Optional[Tuple]:
        """Chaos directive for the ``attempt``-th dispatch of ``task``.

        Returns ``("kill",)``, ``("stall", seconds)`` or ``None``.
        """
        digest = query_digest(task, seed=self.seed)
        u = _uniform(digest, "worker", attempt)
        if u < self.kill_rate:
            return ("kill",)
        if u < self.kill_rate + self.stall_rate:
            return ("stall", self.stall_seconds)
        return None
