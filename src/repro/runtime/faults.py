"""Fault injection: a chaos-mode wrapper over the black-box environment.

:class:`FaultyEnvironment` decorates any
:class:`~repro.recsys.system.BlackBoxEnvironment`-shaped object with a
seeded schedule of the transient failures real query-limited targets
exhibit: raised transient errors, deadline-budget timeouts, NaN/garbage
RecNum readings, and stale (cached) recommendations.  The schedule is
driven by its own ``default_rng(seed)``, so a given seed reproduces the
exact same fault sequence — which is what makes the chaos tests and the
CI chaos smoke job deterministic.

The wrapper exposes the same attacker-facing surface as the wrapped
environment (item universe, targets, popularity, ``attack``,
``clean_recnum``, ``query_count``) and can therefore be handed straight
to :class:`~repro.core.agent.PoisonRec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from .errors import QueryTimeoutError, TransientEnvironmentError

if TYPE_CHECKING:  # pragma: no cover - type-only import, no runtime dep
    from ..recsys.system import BlackBoxEnvironment


@dataclass
class FaultPlan:
    """Seeded fault schedule: per-query rates for each failure kind.

    Rates are independent probabilities of a *disjoint* outcome per
    query (their sum must stay <= 1); the remainder of the probability
    mass is a healthy query.  ``deadline`` and ``latency_multiplier``
    shape the simulated-latency message attached to injected timeouts —
    no real sleeping happens.
    """

    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    corrupt_rate: float = 0.0
    stale_rate: float = 0.0
    deadline: float = 1.0
    latency_multiplier: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        rates = (self.transient_rate, self.timeout_rate, self.corrupt_rate,
                 self.stale_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.deadline <= 0.0:
            raise ValueError("deadline must be positive")

    @property
    def total_rate(self) -> float:
        """Combined probability that a query is faulted."""
        return (self.transient_rate + self.timeout_rate + self.corrupt_rate
                + self.stale_rate)

    @classmethod
    def mixed(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A representative blend at ``rate`` total fault probability.

        Split 50% transient errors, 20% timeouts, 20% corrupt rewards,
        10% stale reads — the CLI's ``--chaos RATE`` preset.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("chaos rate must be in [0, 1]")
        return cls(transient_rate=0.5 * rate, timeout_rate=0.2 * rate,
                   corrupt_rate=0.2 * rate, stale_rate=0.1 * rate, seed=seed)


class FaultyEnvironment:
    """A black-box environment that fails on a seeded schedule.

    Wraps a real environment and, per :meth:`attack` call, either
    forwards the query or injects one of the plan's fault kinds:

    * ``transient`` — raises :class:`TransientEnvironmentError` without
      touching the wrapped system;
    * ``timeout`` — raises :class:`QueryTimeoutError` carrying the
      simulated latency that blew the deadline budget;
    * ``corrupt`` — performs the real query but reports ``NaN``
      (a garbage RecNum reading the caller must detect);
    * ``stale`` — silently returns the previous query's reward (a cache
      serving outdated recommendations).

    ``injected`` tallies every fault by kind for telemetry and tests.
    """

    def __init__(self, env: "BlackBoxEnvironment", plan: FaultPlan) -> None:
        self._env = env
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._last_reward: Optional[int] = None
        self.injected: Dict[str, int] = {
            "transient": 0, "timeout": 0, "corrupt": 0, "stale": 0}
        # Mirror the attacker-facing knowledge surface of the wrapped env.
        self.num_original_items = env.num_original_items
        self.num_items = env.num_items
        self.target_items = env.target_items.copy()
        self.num_attackers = env.num_attackers
        self.item_popularity = env.item_popularity.copy()

    # ------------------------------------------------------------------
    def attack(self, trajectories: Sequence[Sequence[int]]) -> float:
        """Forward one query, or inject the scheduled fault instead."""
        plan = self.plan
        draw = float(self._rng.random())
        edge = plan.transient_rate
        if draw < edge:
            self.injected["transient"] += 1
            raise TransientEnvironmentError(
                f"injected transient environment failure "
                f"(query {self.query_count}, fault "
                f"#{sum(self.injected.values())})")
        edge += plan.timeout_rate
        if draw < edge:
            self.injected["timeout"] += 1
            latency = plan.deadline * (
                1.0 + float(self._rng.random()) * plan.latency_multiplier)
            raise QueryTimeoutError(
                f"injected query timeout: simulated latency {latency:.2f}s "
                f"exceeded the {plan.deadline:.2f}s deadline budget")
        edge += plan.corrupt_rate
        if draw < edge:
            self.injected["corrupt"] += 1
            self._last_reward = int(self._env.attack(trajectories))
            return float("nan")
        edge += plan.stale_rate
        if draw < edge and self._last_reward is not None:
            self.injected["stale"] += 1
            return float(self._last_reward)
        reward = int(self._env.attack(trajectories))
        self._last_reward = reward
        return float(reward)

    def clean_recnum(self) -> int:
        """Pass through to the wrapped environment (never faulted)."""
        return self._env.clean_recnum()

    @property
    def query_count(self) -> int:
        """Queries actually served by the wrapped system."""
        return self._env.query_count

    def __repr__(self) -> str:
        return (f"FaultyEnvironment(total_rate={self.plan.total_rate:.3f}, "
                f"seed={self.plan.seed}, injected={self.injected})")
