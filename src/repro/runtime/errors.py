"""Typed failure taxonomy for resilient attack campaigns.

Every fault the campaign loop can encounter is classified as either
*transient* (worth retrying: a flaky black-box query, an injected
timeout, a corrupted RecNum reading) or *fatal* (retrying cannot help:
the retry budget is spent, the campaign failure budget is exhausted, or
the optimization itself diverged beyond repair).  The split is what lets
:meth:`repro.core.agent.PoisonRec.train` degrade gracefully — transient
errors are absorbed by backoff, fatal ones quarantine a sample or stop
the campaign with a precise diagnosis instead of a raw traceback.
"""

from __future__ import annotations


class CampaignError(RuntimeError):
    """Base class for every failure raised by the resilience subsystem."""


class TransientEnvironmentError(CampaignError):
    """A recoverable environment failure; the query should be retried."""


class QueryTimeoutError(TransientEnvironmentError):
    """A black-box query exceeded its deadline budget."""


class CorruptRewardError(TransientEnvironmentError):
    """The environment returned a NaN/Inf or otherwise unusable RecNum."""


class FatalEnvironmentError(CampaignError):
    """An unrecoverable failure; retrying the same query cannot help."""


class RetriesExhaustedError(FatalEnvironmentError):
    """Every retry attempt for one query failed.

    The campaign loop catches this to quarantine the failed sample and
    proceed with the surviving ones; ``attempts`` records how many tries
    were made before giving up.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class FailureBudgetExhausted(FatalEnvironmentError):
    """The campaign quarantined more samples than its failure budget allows."""


class CampaignDivergenceError(FatalEnvironmentError):
    """Training diverged and the rollback allowance is spent."""


class CorruptCheckpointError(CampaignError):
    """A checkpoint archive is truncated, unreadable, or malformed."""
