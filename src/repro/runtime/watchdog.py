"""Divergence watchdog and streaming reward statistics.

A long campaign can blow up in two ways the per-step loop cannot see
locally: a NaN/Inf loss from the PPO update (numerical divergence) or a
sustained collapse of the reward signal (the policy unlearned everything
it knew).  :class:`DivergenceWatchdog` inspects every
:class:`~repro.core.agent.StepStats` and reports a human-readable reason
the moment either pattern appears, so the campaign loop can roll back to
its last good checkpoint with a lowered learning rate instead of
training on garbage.

:class:`RunningMoments` is the campaign-level reward-normalization
statistic (Welford streaming mean/variance over every sampled RecNum);
it is part of the checkpoint so a resumed campaign carries its full
reward history, not just the policy weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


class RunningMoments:
    """Streaming mean/variance via Welford's algorithm (checkpointable)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one reward observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Population variance of everything observed so far."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of everything observed so far."""
        return math.sqrt(self.variance)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (exact float roundtrip)."""
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.count = int(state["count"])
        self.mean = float(state["mean"])
        self.m2 = float(state["m2"])

    def __repr__(self) -> str:
        return (f"RunningMoments(count={self.count}, mean={self.mean:.4f}, "
                f"std={self.std:.4f})")


@dataclass
class WatchdogConfig:
    """Detection thresholds for :class:`DivergenceWatchdog`.

    Reward collapse fires when the EMA of mean rewards stays below
    ``collapse_fraction`` of its historical peak for ``patience``
    consecutive steps; ``min_peak`` keeps the detector quiet until the
    campaign has actually achieved something worth protecting.
    """

    ema_beta: float = 0.9
    collapse_fraction: float = 0.25
    patience: int = 5
    min_peak: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ema_beta < 1.0:
            raise ValueError("ema_beta must be in [0, 1)")
        if not 0.0 < self.collapse_fraction < 1.0:
            raise ValueError("collapse_fraction must be in (0, 1)")
        if self.patience < 1:
            raise ValueError("patience must be at least 1")
        if self.min_peak < 0.0:
            raise ValueError("min_peak must be non-negative")


class DivergenceWatchdog:
    """Flags NaN/Inf losses and sustained reward collapse.

    Stateless with respect to the model: it only reads per-step
    telemetry, so resetting it after a rollback is always safe.
    """

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self.reset()

    def reset(self) -> None:
        """Clear the EMA and patience counters (called after rollback)."""
        self._ema: Optional[float] = None
        self._peak = 0.0
        self._bad_steps = 0

    def observe(self, stats) -> Optional[str]:
        """Inspect one ``StepStats``; return a divergence reason or None."""
        for loss in stats.losses:
            if not math.isfinite(loss):
                return f"non-finite PPO loss {loss!r} at step {stats.step}"
        if (not math.isfinite(stats.mean_reward)
                or not math.isfinite(stats.max_reward)):
            return f"non-finite reward statistics at step {stats.step}"
        beta = self.config.ema_beta
        self._ema = (stats.mean_reward if self._ema is None
                     else beta * self._ema + (1.0 - beta) * stats.mean_reward)
        self._peak = max(self._peak, self._ema)
        collapsed = (self._peak >= self.config.min_peak
                     and self._ema < self.config.collapse_fraction * self._peak)
        if collapsed:
            self._bad_steps += 1
            if self._bad_steps >= self.config.patience:
                return (f"reward collapse: EMA {self._ema:.3f} below "
                        f"{self.config.collapse_fraction:g}x peak "
                        f"{self._peak:.3f} for {self._bad_steps} "
                        "consecutive steps")
        else:
            self._bad_steps = 0
        return None
