"""repro.runtime — resilience subsystem for long attack campaigns.

Checkpoint/resume (:mod:`~repro.runtime.checkpoint`), retry with
exponential backoff (:mod:`~repro.runtime.retry`), fault injection
(:mod:`~repro.runtime.faults`), divergence watchdog
(:mod:`~repro.runtime.watchdog`), the typed failure taxonomy
(:mod:`~repro.runtime.errors`), and the :class:`ResilienceConfig` that
wires all of it into :meth:`repro.core.agent.PoisonRec.train`.
See ``docs/robustness.md``.
"""

from .checkpoint import (CHECKPOINT_FORMAT, CHECKPOINT_VERSION, as_npz_path,
                         atomic_savez, load_campaign, save_campaign)
from .errors import (CampaignDivergenceError, CampaignError,
                     CorruptCheckpointError, CorruptRewardError,
                     FailureBudgetExhausted, FatalEnvironmentError,
                     QueryTimeoutError, RetriesExhaustedError,
                     TransientEnvironmentError)
from .faults import (FaultPlan, FaultyEnvironment, WorkerFaultPlan,
                     query_digest)
from .resilience import CampaignState, ResilienceConfig
from .retry import FailureBudget, RetryOutcome, RetryPolicy, call_with_retry
from .watchdog import DivergenceWatchdog, RunningMoments, WatchdogConfig

__all__ = [
    "CHECKPOINT_FORMAT", "CHECKPOINT_VERSION", "as_npz_path", "atomic_savez",
    "save_campaign", "load_campaign",
    "CampaignError", "TransientEnvironmentError", "QueryTimeoutError",
    "CorruptRewardError", "FatalEnvironmentError", "RetriesExhaustedError",
    "FailureBudgetExhausted", "CampaignDivergenceError",
    "CorruptCheckpointError",
    "FaultPlan", "FaultyEnvironment", "WorkerFaultPlan", "query_digest",
    "CampaignState", "ResilienceConfig",
    "RetryPolicy", "RetryOutcome", "FailureBudget", "call_with_retry",
    "RunningMoments", "WatchdogConfig", "DivergenceWatchdog",
]
