"""Campaign-level resilience configuration and per-run bookkeeping.

:class:`ResilienceConfig` is the single object a caller hands to
:meth:`repro.core.agent.PoisonRec.train` to turn the plain training loop
into a fault-tolerant campaign: retry/backoff around every environment
query, periodic crash-safe checkpoints, a divergence watchdog with
rollback + learning-rate backoff, and a hard failure budget.

:class:`CampaignState` is the mutable state one ``train()`` call derives
from that config — deliberately *not* checkpointed, so a rollback cannot
erase the very counters (rollbacks performed, lr decays pending) that
prevent rollback loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .checkpoint import PathLike, as_npz_path
from .retry import FailureBudget, RetryPolicy
from .watchdog import DivergenceWatchdog, WatchdogConfig


@dataclass
class ResilienceConfig:
    """Every knob of the resilient campaign loop.

    ``checkpoint_path=None`` disables checkpointing (the watchdog then
    degrades to lr-backoff without state rollback); ``watchdog=None``
    disables divergence detection; ``anomaly_mode`` additionally runs
    each PPO update under :func:`repro.nn.anomaly.detect_anomaly`, so
    the *first* corrupted op triggers the rollback rather than a fully
    poisoned update.  ``sleep`` is injectable so tests never block.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_budget: int = 64
    checkpoint_path: Optional[PathLike] = None
    checkpoint_every: int = 10
    watchdog: Optional[WatchdogConfig] = field(default_factory=WatchdogConfig)
    anomaly_mode: bool = False
    lr_backoff: float = 0.5
    min_lr: float = 1e-5
    max_rollbacks: int = 3
    jitter_seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.min_lr <= 0.0:
            raise ValueError("min_lr must be positive")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be non-negative")
        if self.failure_budget < 0:
            raise ValueError("failure_budget must be non-negative")


class CampaignState:
    """Mutable per-``train()`` resilience bookkeeping.

    Lives outside the checkpointed agent state on purpose: restoring a
    checkpoint must not reset the rollback counter or the pending
    learning-rate decays, or a diverging campaign would loop forever.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.checkpoint_path = (as_npz_path(config.checkpoint_path)
                                if config.checkpoint_path is not None
                                else None)
        self.budget = FailureBudget(config.failure_budget)
        self.watchdog = (DivergenceWatchdog(config.watchdog)
                         if config.watchdog is not None else None)
        #: Jitter/backoff randomness, deliberately separate from the
        #: agent's sampling rngs so resilience never perturbs training.
        self.rng = np.random.default_rng(config.jitter_seed)
        self.rollbacks = 0
        self.decays_since_checkpoint = 0
        self.total_retries = 0
        self.total_quarantined = 0

    def checkpoint_due(self, step: int) -> bool:
        """Whether a checkpoint should be written after ``step`` steps."""
        return (self.checkpoint_path is not None
                and step % self.config.checkpoint_every == 0)

    def mark_checkpointed(self) -> None:
        """Record a successful write: pending lr decays start over."""
        self.decays_since_checkpoint = 0

    def can_rollback(self) -> bool:
        """Whether a rollback target exists on disk."""
        return (self.checkpoint_path is not None
                and self.checkpoint_path.exists())
