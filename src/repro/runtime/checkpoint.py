"""Crash-safe campaign checkpoints: atomic write, bit-identical resume.

A campaign checkpoint captures *everything* Algorithm 1's outer loop
needs to continue exactly where it stopped: policy parameters, Adam
moments and step count, both RNG streams (trajectory sampling and PPO
mini-batch selection), the full ``StepStats`` history with best-attack
bookkeeping, and the campaign's running reward moments.  Restoring it
into a freshly constructed agent with the same configuration reproduces
the uninterrupted run's trajectory bit-for-bit.

Writes are atomic: the archive is serialized to a sibling temp file,
fsynced, then moved into place with ``os.replace`` — a ``kill -9`` at
any instant leaves either the previous checkpoint or the new one, never
a truncated hybrid.  Reads classify any truncated/garbled archive as
:class:`~repro.runtime.errors.CorruptCheckpointError` instead of leaking
``zipfile`` internals.

Metadata is strict JSON (``allow_nan=False``): non-finite history floats
are encoded as the strings ``"nan"`` / ``"inf"`` / ``"-inf"`` (which
``float()`` parses back exactly), and an untrained agent's
``best_reward`` of ``-inf`` is stored as ``null``.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import zipfile
from typing import TYPE_CHECKING, Dict, Union

import numpy as np

from .errors import CorruptCheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from ..core.agent import PoisonRec

PathLike = Union[str, pathlib.Path]

CHECKPOINT_FORMAT = "poisonrec-campaign"
CHECKPOINT_VERSION = 1

_METADATA_KEY = "campaign_json"


def as_npz_path(path: PathLike) -> pathlib.Path:
    """Normalize ``path`` the way ``np.savez`` does (append ``.npz``)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def atomic_savez(path: PathLike,
                 arrays: Dict[str, np.ndarray]) -> pathlib.Path:
    """Write an ``.npz`` archive crash-safely; returns the final path.

    The archive is built in a sibling ``.tmp`` file, flushed and fsynced,
    then swapped into place with ``os.replace`` so readers only ever see
    a complete archive.  Not safe for concurrent writers of the *same*
    path (they would share the temp file).
    """
    path = as_npz_path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def _encode_float(value: float):
    """Strict-JSON float: non-finite values become parseable strings."""
    value = float(value)
    return value if math.isfinite(value) else str(value)


def _decode_float(value) -> float:
    """Inverse of :func:`_encode_float` (``float`` parses both forms)."""
    return float(value)


def _encode_best_reward(value: float):
    """``best_reward`` encoding: ``-inf`` (untrained) becomes ``null``."""
    value = float(value)
    return value if math.isfinite(value) else None


def _decode_best_reward(value) -> float:
    """Inverse of :func:`_encode_best_reward`."""
    return float("-inf") if value is None else float(value)


def save_campaign(agent: "PoisonRec", path: PathLike) -> pathlib.Path:
    """Atomically persist ``agent``'s full campaign state to ``path``.

    Returns the path actually written (``.npz`` appended if missing).
    """
    state = agent.state_dict()
    arrays: Dict[str, np.ndarray] = {}
    for i, param in enumerate(state["params"]):
        arrays[f"param_{i}"] = param
    optimizer = state["optimizer"]
    present = []
    for i, (m, v) in enumerate(zip(optimizer["m"], optimizer["v"])):
        present.append(m is not None)
        if m is not None:
            arrays[f"adam_m_{i}"] = m
            arrays[f"adam_v_{i}"] = v
    history = [dict(entry,
                    mean_reward=_encode_float(entry["mean_reward"]),
                    max_reward=_encode_float(entry["max_reward"]),
                    losses=[_encode_float(loss) for loss in entry["losses"]])
               for entry in state["history"]]
    metadata = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "action_space": getattr(agent.action_space, "name", "plain"),
        "num_items": agent.action_space.num_items,
        "num_original_items": agent.action_space.num_original_items,
        "num_attackers": agent.policy.num_attackers,
        "dim": agent.policy.dim,
        "step": state["step"],
        "optimizer": {"t": optimizer["t"], "lr": optimizer["lr"],
                      "present": present},
        "agent_rng": state["agent_rng"],
        "trainer_rng": state["trainer_rng"],
        "best_reward": _encode_best_reward(state["best_reward"]),
        "best_trajectories": state["best_trajectories"],
        "history": history,
        "reward_moments": state["reward_moments"],
    }
    arrays[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata, allow_nan=False).encode(), dtype=np.uint8)
    return atomic_savez(path, arrays)


def load_campaign(agent: "PoisonRec", path: PathLike) -> dict:
    """Restore a :func:`save_campaign` archive into ``agent``.

    The agent must have been constructed with a matching configuration
    (action-space kind, item universe, attacker count, embedding dim);
    mismatches raise ``ValueError``.  Truncated or garbled archives
    raise :class:`CorruptCheckpointError`; a missing file raises
    ``FileNotFoundError`` unchanged.  Returns the checkpoint metadata
    (with ``best_reward`` decoded).
    """
    path = as_npz_path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            raw = {name: np.array(archive[name]) for name in archive.files}
        metadata = json.loads(bytes(raw.pop(_METADATA_KEY)).decode())
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError,
            OSError) as error:
        raise CorruptCheckpointError(
            f"campaign checkpoint {path} is unreadable or truncated "
            f"({error}); was the process killed mid-save with a "
            "non-atomic writer?") from error
    if metadata.get("format") != CHECKPOINT_FORMAT:
        raise CorruptCheckpointError(
            f"{path} is not a campaign checkpoint "
            f"(format={metadata.get('format')!r})")
    if metadata.get("version") != CHECKPOINT_VERSION:
        raise CorruptCheckpointError(
            f"{path} has unsupported checkpoint version "
            f"{metadata.get('version')!r} (expected {CHECKPOINT_VERSION})")
    _check_compat(agent, metadata)
    try:
        num_params = len(list(agent.policy.parameters()))
        params = [raw[f"param_{i}"] for i in range(num_params)]
        present = metadata["optimizer"]["present"]
        moments_m = [raw[f"adam_m_{i}"] if has else None
                     for i, has in enumerate(present)]
        moments_v = [raw[f"adam_v_{i}"] if has else None
                     for i, has in enumerate(present)]
        state = {
            "params": params,
            "optimizer": {"t": metadata["optimizer"]["t"],
                          "lr": metadata["optimizer"]["lr"],
                          "m": moments_m, "v": moments_v},
            "agent_rng": metadata["agent_rng"],
            "trainer_rng": metadata["trainer_rng"],
            "step": metadata["step"],
            "best_reward": _decode_best_reward(metadata["best_reward"]),
            "best_trajectories": metadata["best_trajectories"],
            "history": [dict(entry,
                             mean_reward=_decode_float(entry["mean_reward"]),
                             max_reward=_decode_float(entry["max_reward"]),
                             losses=[_decode_float(loss)
                                     for loss in entry["losses"]])
                        for entry in metadata["history"]],
            "reward_moments": metadata["reward_moments"],
        }
    except KeyError as error:
        raise CorruptCheckpointError(
            f"campaign checkpoint {path} is missing entry {error}; the "
            "archive was written incompletely") from error
    agent.load_state_dict(state)
    metadata["best_reward"] = state["best_reward"]
    return metadata


def _check_compat(agent: "PoisonRec", metadata: dict) -> None:
    # Imported lazily: repro.core pulls in this module while its own
    # __init__ is still executing, so a top-level import would cycle.
    from ..core.persistence import _check_compatible
    _check_compatible(agent.policy, agent, metadata)
