"""RunTelemetry: log round trips, replay, Chrome export, rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import (RunTelemetry, chrome_trace, load_run, phase_rollup,
                       write_chrome_trace)
from repro.obs.cli import render_events, render_metrics, render_trace
from repro.runtime.errors import CorruptCheckpointError


def record_run(path=None):
    run = RunTelemetry(path)
    with run.span("train_step", step=0):
        with run.span("query_batch"):
            run.tracer.add("restore", start=1.0, end=1.25,
                           proc="worker-0")
    run.event("fleet degraded to reduced tier")
    run.metrics.counter("agent.queries", campaign="a").inc(8)
    run.metrics.gauge("fleet.workers").set(2)
    run.metrics.histogram("pool.query_seconds").observe(0.02)
    return run


class TestRunTelemetry:
    def test_memory_only_accumulates(self):
        run = record_run()
        assert run.path is None
        assert [s.name for s in run.tracer.spans] == \
            ["restore", "query_batch", "train_step"]
        assert run.events[0]["message"].startswith("fleet degraded")
        run.close()  # no sink: close is a no-op

    def test_log_round_trip(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        run = record_run(path)
        run.close()
        replay = load_run(path)
        assert [s.name for s in replay.spans] == \
            ["restore", "query_batch", "train_step"]
        rollup = phase_rollup(replay.spans)
        assert rollup["train_step/query_batch/restore"]["seconds"] == \
            pytest.approx(0.25)
        assert replay.events == [{"message": "fleet degraded to reduced "
                                             "tier", "attrs": {}}]
        assert replay.counters == {"agent.queries": 8.0}

    def test_last_metrics_snapshot_wins(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        with RunTelemetry(path) as run:
            run.metrics.counter("n").inc()
            run.flush_metrics()
            run.metrics.counter("n").inc()
        assert load_run(path).counters == {"n": 2.0}

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_obs.jsonl"
        path.write_text('{"event": "submit"}\n')
        with pytest.raises(CorruptCheckpointError):
            load_run(path)


class TestChromeExport:
    def test_structure(self, tmp_path):
        run = record_run()
        path = tmp_path / "chrome.json"
        write_chrome_trace(path, run.tracer.spans, run.events)
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == \
            {"restore", "query_batch", "train_step"}
        restore = next(e for e in complete if e["name"] == "restore")
        assert restore["dur"] == pytest.approx(0.25e6)  # microseconds
        # One thread-name row per logical proc (main + worker-0).
        assert {e["args"]["name"] for e in metadata} == \
            {"main", "worker-0"}
        assert len(instants) == 1

    def test_empty_trace_is_valid(self):
        trace = chrome_trace([])
        assert trace["traceEvents"] == []


@pytest.fixture()
def replay(tmp_path):
    path = tmp_path / "obs.jsonl"
    record_run(path).close()
    return load_run(path)


class TestRendering:
    def test_render_trace_shows_rollup(self, replay):
        text = render_trace(replay)
        assert "train_step" in text
        assert "restore" in text
        assert "3 span(s)" in text

    def test_render_metrics_shows_all_kinds(self, replay):
        text = render_metrics(replay)
        assert "agent.queries" in text
        assert "campaign=a" in text
        assert "fleet.workers" in text
        assert "pool.query_seconds" in text

    def test_render_events_tails(self, replay):
        assert "fleet degraded" in render_events(replay)

    def test_empty_replay_renders_placeholders(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        RunTelemetry(path).close()
        empty = load_run(path)
        assert "no spans" in render_trace(empty)
        assert "no events" in render_events(empty)
