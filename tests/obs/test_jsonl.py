"""Crash-safe JSONL: sanitization, torn tails, kill -9 replay."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.obs import JsonlSink, jsonable, load_run, read_jsonl
from repro.runtime.errors import CorruptCheckpointError


class TestJsonable:
    def test_passthrough_and_nonfinite(self):
        assert jsonable({"a": 1, "b": True, "c": "x"}) == \
            {"a": 1, "b": True, "c": "x"}
        assert jsonable(float("nan")) is None
        assert jsonable(float("inf")) is None
        assert jsonable(float("-inf")) is None
        assert jsonable(1.5) == 1.5

    def test_numpy_scalars_and_nesting(self):
        value = {"f": np.float64(2.5), "i": np.int64(3),
                 "seq": (np.float32(1.0), [np.int32(2)])}
        assert jsonable(value) == {"f": 2.5, "i": 3, "seq": [1.0, [2]]}

    def test_fallback_is_str(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert jsonable(Opaque()) == "<opaque>"

    def test_output_is_strict_json(self):
        record = jsonable({"nan": float("nan"), "x": np.float64(7)})
        json.dumps(record, allow_nan=False)  # must not raise


class TestSinkAndReader:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlSink(path) as sink:
            sink.append({"obs": "a", "n": 1})
            sink.append({"obs": "b", "n": float("nan")})
        records = read_jsonl(path, expect_key="obs")
        assert records == [{"obs": "a", "n": 1}, {"obs": "b", "n": None}]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlSink(path) as sink:
            sink.append({"obs": "a"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"obs": "tor')  # writer died mid-append
        assert read_jsonl(path) == [{"obs": "a"}]

    def test_earlier_garbling_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"obs": "a"}\ngarbage\n{"obs": "b"}\n')
        with pytest.raises(CorruptCheckpointError, match="garbled"):
            read_jsonl(path)

    def test_missing_discriminator_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"other": 1}\n')
        with pytest.raises(CorruptCheckpointError, match="valid record"):
            read_jsonl(path, expect_key="obs")


KILLED_WRITER = """
import sys
from repro.obs import RunTelemetry

run = RunTelemetry(sys.argv[1])
run.metrics.counter("spans").inc(0)
step = 0
while True:
    with run.span("step", index=step):
        run.metrics.counter("spans").inc()
    if step % 10 == 0:
        run.flush_metrics()
    step += 1
    print(step, flush=True)
"""


def test_run_log_replays_after_kill_dash_nine(tmp_path):
    """SIGKILL mid-write loses at most the torn tail, never the log."""
    path = tmp_path / "obs.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-c", KILLED_WRITER, str(path)],
        stdout=subprocess.PIPE, text=True)
    try:
        # Wait until the writer has demonstrably flushed real records.
        for _ in range(200):
            line = proc.stdout.readline()
            if line and int(line) >= 30:
                break
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
    assert proc.returncode == -signal.SIGKILL

    replay = load_run(path)  # must parse despite the unclean death
    assert len(replay.spans) >= 25
    # Spans are flushed in order; ids are sequential with no holes.
    ids = [span.span_id for span in replay.spans]
    assert ids == list(range(1, len(ids) + 1))
    # The last flushed metrics snapshot is internally consistent: its
    # counter can only trail the spans that made it to disk.
    if replay.metrics:
        assert replay.counters["spans"] <= len(replay.spans) + 1
