"""Tracer: deterministic ids, nesting, external spans, rollups."""

from __future__ import annotations

from repro.obs import Tracer, phase_rollup
from repro.obs.trace import Span


class FakeClock:
    """Monotonic test clock advancing one unit per read."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def make_tracer(**kwargs):
    return Tracer(clock=FakeClock(), **kwargs)


def test_ids_are_sequential_and_start_at_one():
    tracer = make_tracer()
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert [span.span_id for span in tracer.spans] == [1, 2]


def test_nesting_sets_parent_links():
    tracer = make_tracer()
    with tracer.span("outer") as outer:
        assert tracer.current is outer
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert tracer.current is None
    assert outer.parent_id is None
    # Children close (and are retained) before their parents.
    assert [span.name for span in tracer.spans] == ["inner", "outer"]


def test_span_times_the_block():
    tracer = make_tracer()
    with tracer.span("timed") as span:
        pass
    assert span.end == span.start + 1.0
    assert span.seconds == 1.0


def test_span_closed_on_exception():
    tracer = make_tracer()
    try:
        with tracer.span("boom"):
            raise RuntimeError("kaboom")
    except RuntimeError:
        pass
    assert tracer.current is None
    assert tracer.spans[0].end is not None


def test_add_registers_external_interval():
    tracer = make_tracer()
    with tracer.span("batch") as batch:
        shipped = tracer.add("restore", start=10.0, end=10.5,
                             proc="worker-1", phase="restore")
    assert shipped.parent_id == batch.span_id  # defaults to innermost
    assert shipped.seconds == 0.5
    assert shipped.proc == "worker-1"
    explicit = tracer.add("score", start=0.0, end=1.0, parent_id=99)
    assert explicit.parent_id == 99


def test_sink_receives_every_closed_span():
    closed = []
    tracer = Tracer(clock=FakeClock(), sink=closed.append, retain=False)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert [span.name for span in closed] == ["b", "a"]
    assert tracer.spans == []  # retention disabled


def test_record_round_trip():
    span = Span(name="q", span_id=3, parent_id=1, start=1.0, end=2.5,
                proc="worker-0", attrs={"index": 4})
    clone = Span.from_record(span.to_record())
    assert clone == span
    bare = Span(name="open", span_id=1, parent_id=None, start=0.0)
    assert Span.from_record(bare.to_record()) == bare


def test_phase_rollup_accumulates_by_path():
    tracer = make_tracer()
    for _ in range(2):
        with tracer.span("step"):
            with tracer.span("query"):
                pass
    rollup = phase_rollup(tracer.spans)
    assert rollup["step"]["calls"] == 2
    assert rollup["step/query"]["calls"] == 2
    assert rollup["step/query"]["seconds"] == 2.0
    still_open = Span(name="open", span_id=99, parent_id=None, start=0.0)
    assert "open" not in phase_rollup(tracer.spans + [still_open])
