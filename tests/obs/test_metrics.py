"""MetricsRegistry: labeled instruments, kinds, stable snapshots."""

from __future__ import annotations

import json

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    registry.counter("queries").inc()
    registry.counter("queries").inc(2.5)
    assert registry.counter("queries").value == 3.5
    with pytest.raises(ValueError):
        registry.counter("queries").inc(-1)


def test_labels_key_distinct_series():
    registry = MetricsRegistry()
    registry.counter("steps", campaign="a").inc()
    registry.counter("steps", campaign="b").inc(4)
    assert registry.counter("steps", campaign="a").value == 1
    assert registry.counter("steps", campaign="b").value == 4
    assert len(registry) == 2


def test_one_name_one_kind():
    registry = MetricsRegistry()
    registry.counter("latency")
    with pytest.raises(ValueError):
        registry.histogram("latency")


def test_gauge_overwrites():
    registry = MetricsRegistry()
    gauge = registry.gauge("workers")
    assert gauge.value is None
    gauge.set(4)
    gauge.set(2)
    assert gauge.value == 2.0


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    histogram = registry.histogram("seconds")
    histogram.observe(0.0005)          # first bucket (<= 1ms)
    histogram.observe(0.01)            # <= 16ms bucket
    histogram.observe(1e6)             # +Inf overflow slot
    assert histogram.count == 3
    assert histogram.bucket_counts[0] == 1
    assert histogram.bucket_counts[-1] == 1
    assert histogram.mean == pytest.approx((0.0005 + 0.01 + 1e6) / 3)
    assert len(histogram.bucket_counts) == len(DEFAULT_BUCKETS) + 1


def test_snapshot_is_sorted_and_json_safe():
    registry = MetricsRegistry()
    registry.counter("z.last", campaign="b").inc()
    registry.counter("a.first").inc(2)
    registry.gauge("workers").set(4)
    registry.histogram("seconds").observe(0.1)
    snapshot = registry.snapshot()
    names = [record["name"] for record in snapshot]
    assert names == sorted(names)
    # Snapshots go straight into the JSONL log: must be plain JSON.
    parsed = json.loads(json.dumps(snapshot, allow_nan=False))
    kinds = {record["name"]: record["kind"] for record in parsed}
    assert kinds == {"z.last": "counter", "a.first": "counter",
                     "workers": "gauge", "seconds": "histogram"}
