"""Recurrent cell tests: shapes, gradients vs numeric, sequence handling."""

import numpy as np
import pytest

from repro.devtools.gradcheck import gradcheck_param
from repro.nn import GRU, GRUCell, LSTM, LSTMCell, Tensor


class TestLSTMCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.initial_state(3)
        x = Tensor(rng.normal(size=(3, 4)))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (3, 6)
        assert c2.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 6, rng)
        bias = cell.bias.numpy()
        np.testing.assert_allclose(bias[6:12], np.ones(6))
        np.testing.assert_allclose(bias[:6], np.zeros(6))

    def test_gradcheck_through_time(self, rng):
        cell = LSTMCell(3, 3, rng)
        x0 = rng.normal(size=(2, 3))

        def unrolled_loss():
            h, c = cell.initial_state(2)
            for _ in range(3):
                h, c = cell(Tensor(x0), (h, c))
            return (h * h).sum()

        gradcheck_param(unrolled_loss, cell.weight,
                        probes=[(0, 0), (2, 5), (5, 11), (4, 3)])

    def test_gradcheck_bias_through_time(self, rng):
        cell = LSTMCell(2, 2, rng)
        x0 = rng.normal(size=(1, 2))

        def unrolled_loss():
            h, c = cell.initial_state(1)
            for _ in range(2):
                h, c = cell(Tensor(x0), (h, c))
            return (h * h).sum()

        gradcheck_param(unrolled_loss, cell.bias)


class TestLSTMSequence:
    def test_runs_over_steps(self, rng):
        lstm = LSTM(4, 4, rng)
        inputs = [Tensor(rng.normal(size=(2, 4))) for _ in range(5)]
        outputs, (h, c) = lstm(inputs)
        assert len(outputs) == 5
        assert h.shape == (2, 4)

    def test_empty_input_rejected(self, rng):
        lstm = LSTM(4, 4, rng)
        with pytest.raises(ValueError):
            lstm([])

    def test_state_threads_through(self, rng):
        lstm = LSTM(2, 2, rng)
        x = [Tensor(np.ones((1, 2)))]
        _, state1 = lstm(x)
        _, state2 = lstm(x, state1)
        assert not np.allclose(state1[0].numpy(), state2[0].numpy())


class TestGRU:
    def test_cell_shapes(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell.initial_state(3)
        h2 = cell(Tensor(rng.normal(size=(3, 4))), h)
        assert h2.shape == (3, 6)

    def test_sequence_wrapper(self, rng):
        gru = GRU(4, 4, rng)
        inputs = [Tensor(rng.normal(size=(2, 4))) for _ in range(3)]
        outputs, last = gru(inputs)
        assert len(outputs) == 3
        np.testing.assert_allclose(outputs[-1].numpy(), last.numpy())

    def test_empty_input_rejected(self, rng):
        with pytest.raises(ValueError):
            GRU(2, 2, rng)([])

    def test_gradients_reach_all_parameters(self, rng):
        gru = GRU(3, 3, rng)
        inputs = [Tensor(rng.normal(size=(2, 3))) for _ in range(4)]
        _, h = gru(inputs)
        (h * h).sum().backward()
        assert all(p.grad is not None for p in gru.parameters())

    def test_gru_interpolates_states(self, rng):
        # With z ~ 0 the state barely moves; check it stays bounded by tanh.
        cell = GRUCell(2, 2, rng)
        h = Tensor(np.zeros((1, 2)))
        for _ in range(50):
            h = cell(Tensor(np.ones((1, 2))), h)
        assert (np.abs(h.numpy()) <= 1.0).all()
