"""Gradient and semantic tests for the functional ops."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.gradcheck import gradcheck
from repro.nn import Tensor
from repro.nn import functional as F


RNG = np.random.default_rng(42)
X0 = RNG.normal(size=(3, 5))


@pytest.mark.parametrize("name,fn", [
    ("exp", lambda x: F.exp(x).sum()),
    ("log", lambda x: F.log(F.exp(x)).sum()),
    ("sqrt", lambda x: F.sqrt(F.exp(x)).sum()),
    ("relu", lambda x: (F.relu(x) * x).sum()),
    ("sigmoid", lambda x: F.sigmoid(x).sum()),
    ("tanh", lambda x: F.tanh(x).sum()),
    ("softmax", lambda x: (F.softmax(x) * x).sum()),
    ("log_softmax", lambda x: F.log_softmax(x).sum()),
    ("logsigmoid", lambda x: F.logsigmoid(x).sum()),
    ("leaky_relu", lambda x: (F.leaky_relu(x) * x).sum()),
])
def test_gradcheck(name, fn):
    gradcheck(fn, X0.copy())


class TestSemantics:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(X0)).numpy()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(3), atol=1e-12)
        assert (out > 0).all()

    def test_log_softmax_matches_log_of_softmax(self):
        a = F.log_softmax(Tensor(X0)).numpy()
        b = np.log(F.softmax(Tensor(X0)).numpy())
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_softmax_stable_for_large_logits(self):
        big = Tensor(np.array([[1000.0, 1000.0, 0.0]]))
        out = F.softmax(big).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], atol=1e-6)

    def test_sigmoid_extreme_inputs_finite(self):
        out = F.sigmoid(Tensor(np.array([-1e4, 1e4]))).numpy()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_logsigmoid_matches_log_sigmoid(self):
        x = np.linspace(-10, 10, 21)
        a = F.logsigmoid(Tensor(x)).numpy()
        b = np.log(1.0 / (1.0 + np.exp(-x)))
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_relu_zeroes_negatives(self):
        out = F.relu(Tensor(np.array([-1.0, 0.0, 2.0]))).numpy()
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_clip_bounds_and_grad_mask(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        out = F.clip(x, 0.0, 1.0)
        np.testing.assert_allclose(out.numpy(), [0.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_minimum_routes_gradient(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        F.minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestLosses:
    def test_bce_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0])
        targets = np.array([0.0, 1.0, 1.0])
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -(targets * np.log(probs)
                     + (1 - targets) * np.log(1 - probs)).mean()
        np.testing.assert_allclose(loss.item(), expected, atol=1e-10)

    def test_bce_gradient(self):
        logits0 = np.array([-1.0, 0.5, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        x = Tensor(logits0, requires_grad=True)
        F.binary_cross_entropy_with_logits(x, targets).backward()
        probs = 1.0 / (1.0 + np.exp(-logits0))
        np.testing.assert_allclose(x.grad, (probs - targets) / 3.0,
                                   atol=1e-10)

    def test_mse_loss_plain(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_mse_loss_weighted_ignores_masked(self):
        pred = Tensor(np.array([1.0, 100.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]),
                          weight=np.array([1.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 1.0)


class TestDropoutAndSpmm:
    def test_dropout_identity_when_eval(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.5, rng, training=True).numpy()
        assert abs(out.mean() - 1.0) < 0.1
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_spmm_forward_and_grad(self):
        a = sp.csr_matrix(np.array([[1.0, 0.0], [2.0, 3.0]]))
        x = Tensor(np.array([[1.0], [10.0]]), requires_grad=True)
        out = F.spmm(a, x)
        np.testing.assert_allclose(out.numpy(), [[1.0], [32.0]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[3.0], [3.0]])


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(-30, 30), min_size=2, max_size=10))
def test_softmax_is_shift_invariant(values):
    x = np.asarray(values)
    a = F.softmax(Tensor(x)).numpy()
    b = F.softmax(Tensor(x + 100.0)).numpy()
    np.testing.assert_allclose(a, b, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(-20, 20), min_size=2, max_size=10))
def test_log_softmax_normalizes(values):
    x = np.asarray(values)
    lp = F.log_softmax(Tensor(x)).numpy()
    np.testing.assert_allclose(np.exp(lp).sum(), 1.0, atol=1e-9)
