"""Autograd sanitizer tests: anomaly mode and the graph validator."""

import numpy as np
import pytest

from repro.nn import (MLP, AnomalyError, GraphError, Tensor, detect_anomaly,
                      validate_graph)
from repro.nn import functional as F
from repro.nn.anomaly import op_name


def bad_scale(x: Tensor) -> Tensor:
    """An op whose backward closure injects NaN (the bug class REP005 and
    anomaly mode exist to catch)."""
    def backward(g: np.ndarray) -> None:
        x._accumulate(g * np.nan)

    return Tensor._make(x.data * 2.0, (x,), backward)


def wrong_shape_scale(x: Tensor) -> Tensor:
    """An op whose backward accumulates a mis-shaped (broadcasting)
    gradient."""
    def backward(g: np.ndarray) -> None:
        x._accumulate(g.sum(axis=0))

    return Tensor._make(x.data * 3.0, (x,), backward)


def forgetful_add(a: Tensor, b: Tensor) -> Tensor:
    """An op whose backward drops one of its parents (orphan bug)."""
    def backward(g: np.ndarray) -> None:
        a._accumulate(g)

    return Tensor._make(a.data + b.data, (a, b), backward)


class TestDetectAnomalyBackward:
    def test_nan_injection_names_offending_op_and_parents(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with detect_anomaly():
            y = bad_scale(x)
            with pytest.raises(AnomalyError) as excinfo:
                y.sum().backward()
        message = str(excinfo.value)
        assert "bad_scale" in message
        assert "(2, 3)" in message
        assert "NaN" in message

    def test_shape_broadcast_bug_is_caught(self):
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        with detect_anomaly():
            y = wrong_shape_scale(x)
            with pytest.raises(AnomalyError) as excinfo:
                y.sum().backward()
        message = str(excinfo.value)
        assert "wrong_shape_scale" in message
        assert "shape mismatch" in message

    def test_non_finite_seed_gradient_is_caught(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with detect_anomaly():
            y = x * 2.0
            with pytest.raises(AnomalyError, match="seed gradient"):
                y.backward(np.array([1.0, np.nan, 1.0]))

    def test_corruption_reported_at_first_bad_node_not_downstream(self):
        # The NaN enters in bad_scale's closure; ops stacked on top of it
        # must not be blamed.
        x = Tensor(np.ones(3), requires_grad=True)
        with detect_anomaly():
            y = (bad_scale(x) * 5.0).sum()
            with pytest.raises(AnomalyError) as excinfo:
                y.backward()
        assert "bad_scale" in str(excinfo.value)
        assert "__mul__" not in str(excinfo.value)


class TestDetectAnomalyForward:
    def test_non_finite_forward_output_raises_at_creation(self):
        x = Tensor(np.array([1000.0]), requires_grad=True)
        with detect_anomaly():
            with pytest.raises(AnomalyError) as excinfo:
                with np.errstate(over="ignore"):
                    F.exp(x)  # overflows to inf
        message = str(excinfo.value)
        assert "exp" in message
        assert "forward" in message

    def test_clean_graph_passes_and_instrumentation_is_removed(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        with detect_anomaly():
            (F.tanh(x) * x).sum().backward()
        np.testing.assert_allclose(
            x.grad, (np.tanh(1.0) + (1 - np.tanh(1.0) ** 2)) * np.ones((3, 2)))
        # Outside the context the raw engine is back: the same NaN
        # injection now propagates silently instead of raising.
        y = Tensor(np.ones(2), requires_grad=True)
        bad_scale(y).sum().backward()
        assert np.isnan(y.grad).all()

    def test_nesting_is_reentrant(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with detect_anomaly():
            with detect_anomaly():
                (x * x).sum().backward()
            with pytest.raises(AnomalyError):
                bad_scale(x).sum().backward()


class TestValidateGraph:
    def test_clean_mlp_graph_summary(self, rng):
        mlp = MLP([3, 4, 2], rng)
        loss = (mlp(Tensor(rng.normal(size=(5, 3)))) ** 2.0).sum()
        loss.backward()
        stats = validate_graph(loss)
        assert stats["nodes"] > 4
        assert stats["edges"] >= stats["nodes"] - 1
        assert stats["trainable_leaves"] == 4  # 2 weights + 2 biases

    def test_orphaned_parent_detected(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = forgetful_add(a, b).sum()
        out.backward()
        with pytest.raises(GraphError, match="orphaned parent"):
            validate_graph(out)

    def test_cycle_detected(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = a * 2.0
        b._parents = (b,)  # deliberately corrupt the recorded graph
        with pytest.raises(GraphError, match="cycle"):
            validate_graph(b, check_grads=False)

    def test_structure_only_mode_skips_grad_checks(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a * a).sum()  # no backward() call
        stats = validate_graph(out, check_grads=False)
        assert stats["trainable_leaves"] == 1


def test_op_name_recovers_engine_ops():
    x = Tensor(np.ones(2), requires_grad=True)
    assert op_name(F.exp(x)._backward) == "exp"
    assert op_name((x + x)._backward) == "Tensor.__add__"
