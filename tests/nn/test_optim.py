"""Optimizer behavior: convergence, moments, clipping, weight decay."""

import numpy as np
import pytest

from repro.nn import MLP, SGD, Adam, Tensor
from repro.nn import functional as F


def quadratic_loss(param):
    return ((param - 3.0) * (param - 3.0)).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), np.full(3, 3.0), atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.full(2, 10.0), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.numpy(), np.full(2, 9.0))

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.5)
        opt.step()  # no gradient computed: must be a no-op
        np.testing.assert_allclose(p.numpy(), np.ones(2))

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), np.full(3, 3.0), atol=1e-3)

    def test_first_step_size_close_to_lr(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (p * 5.0).sum().backward()
        opt.step()
        # Bias-corrected Adam's first step is ~lr regardless of grad scale.
        np.testing.assert_allclose(abs(p.numpy()[0]), 0.01, rtol=1e-5)

    def test_trains_mlp_below_initial_loss(self, rng):
        mlp = MLP([4, 16, 1], rng)
        opt = Adam(list(mlp.parameters()), lr=0.01)
        x = Tensor(rng.normal(size=(32, 4)))
        y = rng.normal(size=(32, 1))
        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = F.mse_loss(mlp(x), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5


class TestGradClipping:
    def test_norm_reported_and_scaled(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=1.0)
        p._accumulate(np.full(4, 3.0))  # norm = 6
        norm = opt.clip_grad_norm(3.0)
        np.testing.assert_allclose(norm, 6.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 3.0)

    def test_below_threshold_untouched(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=1.0)
        p._accumulate(np.full(4, 0.1))
        before = p.grad.copy()
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, before)
