"""Layer and module-tree tests."""

import numpy as np
import pytest

from repro.devtools.gradcheck import gradcheck, gradcheck_param
from repro.nn import MLP, Dense, Embedding, Module, Tensor


class TestModule:
    def test_parameters_discovers_nested(self, rng):
        class Outer(Module):
            def __init__(self):
                self.layer = Dense(3, 4, rng)
                self.raw = Tensor(np.ones(2), requires_grad=True)
                self.blocks = [Dense(4, 4, rng), Dense(4, 2, rng)]

        outer = Outer()
        params = list(outer.parameters())
        # 3 Dense layers x (weight, bias) + raw
        assert len(params) == 7

    def test_parameters_deduplicates_shared(self, rng):
        class Shared(Module):
            def __init__(self):
                self.a = Dense(2, 2, rng)
                self.b = self.a  # shared submodule

        assert len(list(Shared().parameters())) == 2

    def test_zero_grad_clears_all(self, rng):
        mlp = MLP([2, 3, 1], rng)
        out = mlp(Tensor(np.ones((4, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_num_parameters(self, rng):
        layer = Dense(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Dense(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    @pytest.mark.parametrize("activation,check", [
        ("relu", lambda out: (out >= 0).all()),
        ("sigmoid", lambda out: ((out > 0) & (out < 1)).all()),
        ("tanh", lambda out: ((out > -1) & (out < 1)).all()),
    ])
    def test_activations(self, rng, activation, check):
        layer = Dense(4, 4, rng, activation=activation)
        out = layer(Tensor(rng.normal(size=(10, 4)))).numpy()
        assert check(out)

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(2, 2, rng, activation="gelu")


class TestEmbedding:
    def test_lookup_shape_and_values(self, rng):
        emb = Embedding(10, 4, rng)
        ids = np.array([0, 3, 3])
        out = emb(ids)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.numpy()[1], out.numpy()[2])

    def test_gradient_accumulates_on_repeated_ids(self, rng):
        emb = Embedding(5, 2, rng)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[1], [2.0, 2.0])
        np.testing.assert_allclose(grad[2], [1.0, 1.0])
        np.testing.assert_allclose(grad[0], [0.0, 0.0])


class TestLayerGradients:
    """Numeric gradient checks through layer compositions."""

    def test_mlp_input_gradient(self, rng):
        mlp = MLP([3, 5, 2], rng)
        x0 = rng.normal(size=(4, 3))
        gradcheck(lambda x: (mlp(x) ** 2.0).sum(), x0)

    def test_dense_weight_gradient_through_stack(self, rng):
        first = Dense(3, 4, rng, activation="tanh")
        second = Dense(4, 2, rng, activation="sigmoid")
        x = rng.normal(size=(5, 3))

        def loss():
            return (second(first(Tensor(x))) ** 2.0).sum()

        gradcheck_param(loss, first.weight)
        gradcheck_param(loss, second.bias)

    def test_embedding_weight_gradient_through_dense(self, rng):
        emb = Embedding(6, 3, rng, std=0.5)
        head = Dense(3, 1, rng, activation="tanh")
        ids = np.array([0, 2, 2, 5])

        def loss():
            return (head(emb(ids)) ** 2.0).sum()

        gradcheck_param(loss, emb.weight)


class TestMLP:
    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_depth_and_output_shape(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        assert len(mlp.layers) == 3
        out = mlp(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 2)

    def test_hidden_relu_last_linear(self, rng):
        mlp = MLP([4, 8, 2], rng)
        assert mlp.layers[0].activation == "relu"
        assert mlp.layers[-1].activation == "linear"
