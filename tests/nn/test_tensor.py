"""Autograd engine tests: gradients, broadcasting, graph traversal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, stack, unbroadcast


def numeric_gradient(fn, x0, eps=1e-6):
    grad = np.zeros_like(x0)
    for idx in np.ndindex(*x0.shape):
        xp = x0.copy()
        xp[idx] += eps
        xm = x0.copy()
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
    return grad


def analytic_gradient(fn, x0):
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    return x.grad


def assert_matches_numeric(fn_tensor, fn_np, x0, tol=1e-6):
    ana = analytic_gradient(fn_tensor, x0)
    num = numeric_gradient(fn_np, x0)
    np.testing.assert_allclose(ana, num, atol=tol, rtol=1e-4)


class TestArithmetic:
    def test_add_grad(self):
        x0 = np.random.default_rng(0).normal(size=(3, 4))
        assert_matches_numeric(lambda x: (x + x + 1.0).sum(),
                               lambda x: (x + x + 1.0).sum(), x0)

    def test_mul_grad(self):
        x0 = np.random.default_rng(1).normal(size=(3, 4))
        assert_matches_numeric(lambda x: (x * x * 2.0).sum(),
                               lambda x: (x * x * 2.0).sum(), x0)

    def test_div_grad(self):
        x0 = np.random.default_rng(2).normal(size=(3,)) + 3.0
        assert_matches_numeric(lambda x: (1.0 / x).sum(),
                               lambda x: (1.0 / x).sum(), x0)

    def test_sub_and_neg(self):
        a = Tensor([3.0, 4.0], requires_grad=True)
        out = (a - 1.0) - (-a)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_pow_grad(self):
        x0 = np.abs(np.random.default_rng(3).normal(size=(4,))) + 0.5
        assert_matches_numeric(lambda x: (x ** 3.0).sum(),
                               lambda x: (x ** 3.0).sum(), x0)

    def test_matmul_grad_both_sides(self):
        rng = np.random.default_rng(4)
        a0 = rng.normal(size=(3, 4))
        b0 = rng.normal(size=(4, 2))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b0.T)
        np.testing.assert_allclose(b.grad, a0.T @ np.ones((3, 2)))

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (10.0 / a).backward()
        np.testing.assert_allclose(a.grad, [-10.0 / 4.0])


class TestBroadcasting:
    def test_unbroadcast_sums_new_axes(self):
        grad = np.ones((5, 3, 4))
        assert unbroadcast(grad, (3, 4)).shape == (3, 4)
        np.testing.assert_allclose(unbroadcast(grad, (3, 4)),
                                   np.full((3, 4), 5.0))

    def test_unbroadcast_sums_size_one_axes(self):
        grad = np.ones((3, 4))
        out = unbroadcast(grad, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))

    def test_broadcast_add_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full((4,), 3.0))

    def test_broadcast_mul_grad(self):
        a = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = Tensor(np.full((1, 3), 5.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 5.0))
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))


class TestShapeOps:
    def test_reshape_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_grad(self):
        x0 = np.random.default_rng(5).normal(size=(2, 3))
        a = Tensor(x0, requires_grad=True)
        w = np.random.default_rng(6).normal(size=(2, 3))
        (a.T * Tensor(w.T)).sum().backward()
        np.testing.assert_allclose(a.grad, w)

    def test_getitem_accumulates_repeats(self):
        a = Tensor(np.zeros(4), requires_grad=True)
        idx = np.array([1, 1, 2])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 2.0, 1.0, 0.0])

    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out[0] * 5.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 5.0))
        np.testing.assert_allclose(b.grad, np.zeros(3))


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 1.0 / 6.0))

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.25))

    def test_max_grad_splits_ties(self):
        a = Tensor(np.array([[1.0, 3.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 0.5, 0.5]])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_diamond_graph_accumulates(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3.0
        out = b + b  # b used twice
        out.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_no_grad_leaf_untouched(self):
        a = Tensor(np.ones(3), requires_grad=False)
        b = Tensor(np.ones(3), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad is None
        assert b.grad is not None

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 4.0])

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_repr_and_introspection(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        assert "requires_grad" in repr(a)
        assert a.ndim == 2
        assert a.size == 6
        assert len(a) == 2


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=2, max_size=8))
def test_composite_expression_gradcheck(values):
    """Random composite expressions match numeric gradients (hypothesis)."""
    x0 = np.asarray(values)

    def fn_np(x):
        return float((x * x + 2.0 * x).sum() / (1.0 + x.size))

    def fn_t(x):
        return (x * x + 2.0 * x).sum() * (1.0 / (1.0 + x.size))

    ana = analytic_gradient(fn_t, x0)
    num = numeric_gradient(fn_np, x0)
    np.testing.assert_allclose(ana, num, atol=1e-5, rtol=1e-4)
