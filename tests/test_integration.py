"""End-to-end integration tests across the whole stack.

Each test drives the real pipeline: synthetic dataset -> recommender
system -> black-box environment -> attack -> RecNum, at sizes that keep
the full module under a minute.
"""

import numpy as np
import pytest

from repro import (BlackBoxEnvironment, PoisonRec, PoisonRecConfig,
                   RecommenderSystem, load_dataset)
from repro.attacks import AttackBudget, BASELINE_CLASSES
from repro.recsys import RANKER_NAMES


@pytest.fixture(scope="module")
def steam_ci():
    return load_dataset("steam", scale="ci", seed=0)


@pytest.mark.parametrize("ranker_name", RANKER_NAMES)
def test_every_ranker_survives_full_attack_cycle(steam_ci, ranker_name):
    """Fit, snapshot, poison, measure, reset — for all 8 testbeds."""
    system = RecommenderSystem(steam_ci, ranker_name, seed=0,
                               num_attackers=10)
    env = BlackBoxEnvironment(system)
    clean = env.clean_recnum()
    target = int(env.target_items[0])
    popular = int(np.argmax(env.item_popularity[:env.num_original_items]))
    trajectories = [[target if s % 2 == 0 else popular for s in range(12)]
                    for _ in range(10)]
    poisoned = env.attack(trajectories)
    assert poisoned >= 0
    # Reset restores the clean measurement exactly.
    system.reset()
    assert system.recnum() == clean


@pytest.mark.parametrize("method", sorted(BASELINE_CLASSES))
def test_every_baseline_runs_on_neural_ranker(steam_ci, method):
    system = RecommenderSystem(steam_ci, "pmf", seed=0, num_attackers=10)
    env = BlackBoxEnvironment(system)
    kwargs = {}
    if method == "conslop":
        kwargs["system_log"] = system.clean_log
    if method == "appgrad":
        kwargs["iterations"] = 2
    attack = BASELINE_CLASSES[method](
        env, AttackBudget(10, 10), seed=0, **kwargs)
    outcome = attack.run()
    assert outcome.recnum >= 0


@pytest.mark.slow
@pytest.mark.parametrize("space", ["plain", "bplain", "bcbt-popular",
                                   "bcbt-random"])
def test_poisonrec_trains_on_every_action_space(steam_ci, space):
    system = RecommenderSystem(steam_ci, "itempop", seed=0,
                               num_attackers=10)
    env = BlackBoxEnvironment(system)
    cfg = PoisonRecConfig.ci(num_attackers=10, trajectory_length=10,
                             samples_per_step=4, batch_size=4,
                             embedding_dim=8, seed=0)
    agent = PoisonRec(env, cfg, action_space=space)
    result = agent.train(steps=3)
    assert len(result.history) == 3
    assert all(np.isfinite(s.mean_reward) for s in result.history)


@pytest.mark.slow
def test_biased_spaces_outperform_plain_early(steam_ci):
    """The priori-knowledge advantage (Figure 4's opening steps)."""
    system = RecommenderSystem(steam_ci, "itempop", seed=0,
                               num_attackers=20)
    env = BlackBoxEnvironment(system)

    def early_reward(space):
        cfg = PoisonRecConfig.ci(num_attackers=20, trajectory_length=20,
                                 samples_per_step=6, batch_size=6,
                                 embedding_dim=8, seed=0)
        agent = PoisonRec(env, cfg, action_space=space)
        return agent.train(steps=2).mean_rewards[0]

    assert early_reward("bcbt-popular") > early_reward("plain")


@pytest.mark.parametrize("dataset_name", ["movielens", "phone", "clothing"])
def test_other_datasets_support_attack_cycle(dataset_name):
    """The three non-Steam generators drive the pipeline end to end."""
    dataset = load_dataset(dataset_name, scale="ci", seed=0)
    system = RecommenderSystem(dataset, "itempop", seed=0, num_attackers=10)
    env = BlackBoxEnvironment(system)
    target = int(env.target_items[0])
    recnum = env.attack([[target] * 20 for _ in range(10)])
    assert recnum >= 0
    system.reset()
    assert system.recnum() == env.clean_recnum()


def test_rankers_are_isolated_between_systems(steam_ci):
    """Two systems over the same dataset do not share ranker state."""
    a = RecommenderSystem(steam_ci, "itempop", seed=0, num_attackers=6)
    b = RecommenderSystem(steam_ci, "itempop", seed=0, num_attackers=6)
    target = int(a.target_items[0])
    a.inject([[target] * 20 for _ in range(6)])
    assert b.recnum() == b.recnum()
    b.reset()
    a.reset()
    assert a.recnum() == b.recnum()


def test_recnum_counts_match_recommend_output(steam_ci):
    system = RecommenderSystem(steam_ci, "itempop", seed=0,
                               num_attackers=6)
    system.reset()
    recommended = system.recommend()
    manual = int((recommended >= system.num_original_items).sum())
    assert system.recnum() == manual
