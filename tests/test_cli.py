"""CLI smoke tests (argument parsing and fast subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == "ci"

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            ["attack", "--dataset", "phone", "--ranker", "bpr",
             "--method", "popular", "--seed", "3"])
        assert args.dataset == "phone"
        assert args.ranker == "bpr"
        assert args.method == "popular"
        assert args.seed == 3

    def test_invalid_ranker_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--ranker", "svd"])

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            ["attack", "--chaos", "0.1", "--checkpoint", "camp.npz",
             "--checkpoint-every", "5", "--resume", "--max-retries", "2"])
        assert args.chaos == pytest.approx(0.1)
        assert args.checkpoint == "camp.npz"
        assert args.checkpoint_every == 5
        assert args.resume is True
        assert args.max_retries == 2

    def test_resilience_flag_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.chaos == 0.0
        assert args.checkpoint is None
        assert args.resume is False
        assert args.max_retries == 3

    def test_chaos_composes_with_workers(self):
        """The pooled/chaos restriction is lifted: content-keyed fault
        schedules make chaos runs worker-count independent."""
        args = build_parser().parse_args(
            ["attack", "--chaos", "0.2", "--workers", "3"])
        assert args.chaos == pytest.approx(0.2)
        assert args.workers == 3

    def test_submit_arguments(self):
        args = build_parser().parse_args(
            ["submit", "--dir", "fleet", "--name", "exp1",
             "--ranker", "bpr", "--priority", "2.5", "--chaos", "0.1"])
        assert args.dir == "fleet"
        assert args.name == "exp1"
        assert args.ranker == "bpr"
        assert args.priority == pytest.approx(2.5)

    def test_submit_requires_dir_and_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--name", "exp1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--dir", "fleet"])

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--dir", "fleet", "--grid", "--workers", "2",
             "--slice-steps", "3", "--stall-timeout", "5.0",
             "--worker-kills", "0.1", "--worker-stalls", "0.05"])
        assert args.grid is True
        assert args.workers == 2
        assert args.slice_steps == 3
        assert args.stall_timeout == pytest.approx(5.0)
        assert args.worker_kills == pytest.approx(0.1)
        assert args.worker_stalls == pytest.approx(0.05)

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--dir", "fleet"])
        assert args.resume is False
        assert args.grid is False
        assert args.workers == 1
        assert args.stall_timeout is None


class TestCommands:
    def test_datasets_prints_table(self, capsys):
        assert main(["datasets", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        for name in ("steam", "movielens", "phone", "clothing"):
            assert name in out

    def test_evaluate_runs(self, capsys):
        assert main(["evaluate", "--dataset", "steam",
                     "--ranker", "itempop"]) == 0
        out = capsys.readouterr().out
        assert "HR@10" in out

    def test_attack_baseline_runs(self, capsys):
        assert main(["attack", "--dataset", "steam", "--ranker", "itempop",
                     "--method", "popular"]) == 0
        out = capsys.readouterr().out
        assert "popular RecNum:" in out

    @pytest.mark.slow
    def test_attack_poisonrec_runs(self, capsys):
        assert main(["attack", "--dataset", "steam", "--ranker", "itempop",
                     "--method", "poisonrec", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "poisonrec best RecNum:" in out

    def test_resume_without_checkpoint_is_an_error(self, capsys):
        assert main(["attack", "--method", "poisonrec", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    @pytest.mark.slow
    def test_chaos_campaign_writes_checkpoint_and_resumes(self, capsys,
                                                          tmp_path):
        ck = tmp_path / "campaign.npz"
        argv = ["attack", "--dataset", "steam", "--ranker", "itempop",
                "--method", "poisonrec", "--steps", "2", "--chaos", "0.1",
                "--checkpoint", str(ck), "--checkpoint-every", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "chaos mode" in out
        assert "resilience:" in out
        assert ck.exists()

        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert f"resuming campaign from {ck}" in out

    @pytest.mark.slow
    def test_submit_then_serve_resume_completes_fleet(self, capsys,
                                                      tmp_path):
        fleet = str(tmp_path / "fleet")
        for name, ranker in (("a", "itempop"), ("b", "covisitation")):
            assert main(["submit", "--dir", fleet, "--name", name,
                         "--ranker", ranker, "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "submitted campaign 'a'" in out
        assert "submitted campaign 'b'" in out

        assert main(["serve", "--dir", fleet, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 campaign(s)" in out
        assert "completed" in out

    def test_submit_duplicate_name_is_an_error(self, capsys, tmp_path):
        fleet = str(tmp_path / "fleet")
        assert main(["submit", "--dir", fleet, "--name", "dup"]) == 0
        capsys.readouterr()
        assert main(["submit", "--dir", fleet, "--name", "dup"]) == 2
        assert "already exists" in capsys.readouterr().err


class TestObservabilityCommands:
    def test_trace_and_metrics_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--dir", "fleet", "--obs-log", "obs.jsonl"])
        assert args.obs_log == "obs.jsonl"
        args = build_parser().parse_args(
            ["trace", "obs.jsonl", "--export", "chrome.json"])
        assert args.log == "obs.jsonl" and args.export == "chrome.json"
        args = build_parser().parse_args(
            ["metrics", "obs.jsonl", "--events", "5"])
        assert args.log == "obs.jsonl" and args.events == 5

    def test_missing_log_is_an_error(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", missing]) == 2
        assert main(["metrics", missing]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.slow
    def test_attack_trace_metrics_round_trip(self, capsys, tmp_path):
        log = str(tmp_path / "obs.jsonl")
        export = str(tmp_path / "chrome.json")
        assert main(["attack", "--dataset", "steam", "--ranker", "itempop",
                     "--method", "poisonrec", "--steps", "2",
                     "--obs-log", log]) == 0
        assert f"obs run log: {log}" in capsys.readouterr().out

        assert main(["trace", log, "--export", export]) == 0
        out = capsys.readouterr().out
        assert "train_step" in out and "ppo_update" in out
        assert "chrome trace written" in out

        import json
        with open(export, encoding="utf-8") as handle:
            trace = json.load(handle)
        assert any(event["ph"] == "X" for event in trace["traceEvents"])

        assert main(["metrics", log]) == 0
        assert "agent.queries" in capsys.readouterr().out
