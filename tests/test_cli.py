"""CLI smoke tests (argument parsing and fast subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == "ci"

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            ["attack", "--dataset", "phone", "--ranker", "bpr",
             "--method", "popular", "--seed", "3"])
        assert args.dataset == "phone"
        assert args.ranker == "bpr"
        assert args.method == "popular"
        assert args.seed == 3

    def test_invalid_ranker_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--ranker", "svd"])


class TestCommands:
    def test_datasets_prints_table(self, capsys):
        assert main(["datasets", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        for name in ("steam", "movielens", "phone", "clothing"):
            assert name in out

    def test_evaluate_runs(self, capsys):
        assert main(["evaluate", "--dataset", "steam",
                     "--ranker", "itempop"]) == 0
        out = capsys.readouterr().out
        assert "HR@10" in out

    def test_attack_baseline_runs(self, capsys):
        assert main(["attack", "--dataset", "steam", "--ranker", "itempop",
                     "--method", "popular"]) == 0
        out = capsys.readouterr().out
        assert "popular RecNum:" in out

    @pytest.mark.slow
    def test_attack_poisonrec_runs(self, capsys):
        assert main(["attack", "--dataset", "steam", "--ranker", "itempop",
                     "--method", "poisonrec", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "poisonrec best RecNum:" in out
