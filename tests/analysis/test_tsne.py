"""t-SNE implementation tests."""

import numpy as np
import pytest

from repro.analysis import tsne


class TestTsne:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 10))
        y = tsne(x, num_components=2, iterations=60, seed=0)
        assert y.shape == (40, 2)
        assert np.isfinite(y).all()

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 5)))

    def test_separates_well_separated_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.1, size=(25, 8))
        b = rng.normal(8.0, 0.1, size=(25, 8))
        y = tsne(np.vstack([a, b]), iterations=200, seed=1)
        centroid_a = y[:25].mean(axis=0)
        centroid_b = y[25:].mean(axis=0)
        spread_a = np.linalg.norm(y[:25] - centroid_a, axis=1).mean()
        spread_b = np.linalg.norm(y[25:] - centroid_b, axis=1).mean()
        separation = np.linalg.norm(centroid_a - centroid_b)
        assert separation > 2 * max(spread_a, spread_b)

    def test_deterministic_by_seed(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 5))
        y1 = tsne(x, iterations=50, seed=3)
        y2 = tsne(x, iterations=50, seed=3)
        np.testing.assert_allclose(y1, y2)

    def test_output_centered(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(30, 6))
        y = tsne(x, iterations=50, seed=0)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)

    def test_perplexity_clamped_for_small_inputs(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(10, 4))
        y = tsne(x, perplexity=50.0, iterations=30, seed=0)
        assert np.isfinite(y).all()
