"""SVG plotting tests."""

import numpy as np
import pytest

from repro.analysis import line_chart, popularity_color, scatter_plot


class TestLineChart:
    def test_writes_valid_svg(self, tmp_path):
        path = line_chart({"a": [0, 1, 2], "b": [2, 1, 0]},
                          tmp_path / "chart.svg", title="t")
        text = path.read_text()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")
        assert text.count("<polyline") == 2

    def test_legend_labels_present(self, tmp_path):
        path = line_chart({"alpha": [1.0], "beta": [2.0]},
                          tmp_path / "c.svg")
        text = path.read_text()
        assert "alpha" in text and "beta" in text

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            line_chart({}, tmp_path / "c.svg")

    def test_constant_series_does_not_divide_by_zero(self, tmp_path):
        path = line_chart({"flat": [0.0, 0.0, 0.0]}, tmp_path / "c.svg")
        assert "NaN" not in path.read_text()

    def test_creates_parent_directories(self, tmp_path):
        path = line_chart({"a": [1]}, tmp_path / "nested" / "dir" / "c.svg")
        assert path.exists()


class TestScatterPlot:
    def test_writes_points(self, tmp_path):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]])
        path = scatter_plot(points, tmp_path / "s.svg")
        assert path.read_text().count("<circle") == 3

    def test_highlight_adds_outline(self, tmp_path):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        path = scatter_plot(points, tmp_path / "s.svg", highlight=[1])
        assert path.read_text().count("<circle") == 3  # 2 dots + 1 ring

    def test_rejects_wrong_shape(self, tmp_path):
        with pytest.raises(ValueError):
            scatter_plot(np.zeros((3, 3)), tmp_path / "s.svg")

    def test_custom_colors_used(self, tmp_path):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        path = scatter_plot(points, tmp_path / "s.svg",
                            colors=["#123456", "#abcdef"])
        text = path.read_text()
        assert "#123456" in text and "#abcdef" in text


class TestPopularityColor:
    def test_length_and_format(self):
        colors = popularity_color(np.array([0.0, 5.0, 10.0]))
        assert len(colors) == 3
        assert all(c.startswith("#") and len(c) == 7 for c in colors)

    def test_monotone_red_channel(self):
        colors = popularity_color(np.array([0.0, 5.0, 10.0]))
        reds = [int(c[1:3], 16) for c in colors]
        assert reds[0] < reds[1] < reds[2]

    def test_zero_popularity_safe(self):
        colors = popularity_color(np.zeros(4))
        assert len(set(colors)) == 1
