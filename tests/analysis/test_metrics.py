"""Attack metric tests."""

import pytest

from repro.analysis import (clicked_item_counts, distinct_targets_promoted,
                            target_click_ratio, uplift, win_counts)


class TestTargetClickRatio:
    def test_basic_ratio(self):
        trajectories = [[0, 10, 10], [10]]
        assert target_click_ratio(trajectories, 10) == 0.75

    def test_empty(self):
        assert target_click_ratio([], 10) == 0.0

    def test_all_originals(self):
        assert target_click_ratio([[0, 1, 2]], 10) == 0.0


class TestClickedItemCounts:
    def test_counts(self):
        counts = clicked_item_counts([[1, 1, 2], [2]])
        assert counts == {1: 2, 2: 2}


class TestDistinctTargets:
    def test_min_clicks_filter(self):
        trajectories = [[10, 10, 11], [12]]
        assert distinct_targets_promoted(trajectories, 10) == 3
        assert distinct_targets_promoted(trajectories, 10, min_clicks=2) == 1


class TestUplift:
    def test_difference(self):
        assert uplift(150.0, 30.0) == 120.0


class TestWinCounts:
    def test_single_winner_per_testbed(self):
        results = {"a": [5.0, 1.0], "b": [3.0, 9.0]}
        assert win_counts(results) == {"a": 1, "b": 1}

    def test_ties_award_both(self):
        results = {"a": [5.0], "b": [5.0]}
        assert win_counts(results) == {"a": 1, "b": 1}

    def test_all_zero_testbed_skipped(self):
        # The paper excludes ItemPop/MovieLens where all methods score 0.
        results = {"a": [0.0, 2.0], "b": [0.0, 1.0]}
        assert win_counts(results) == {"a": 1, "b": 0}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            win_counts({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty(self):
        assert win_counts({}) == {}
