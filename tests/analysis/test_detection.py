"""Shilling-detector tests."""

import numpy as np
import pytest

from repro.analysis import (DuplicateClickDetector,
                            PopularityDeviationDetector,
                            ProfileSimilarityDetector, evaluate_detection)
from repro.data import InteractionLog


def organic_log(num_users=60, num_items=40, seed=0):
    rng = np.random.default_rng(seed)
    log = InteractionLog(num_items)
    weights = np.arange(num_items, 0, -1.0)
    weights /= weights.sum()
    for user in range(num_users):
        items = rng.choice(num_items, size=8, replace=False, p=weights)
        log.add_sequence(user, items.tolist())
    return log


class TestDuplicateClickDetector:
    def test_score_reflects_repetition(self):
        detector = DuplicateClickDetector()
        context = None  # unused by this detector
        assert detector.score_user([1, 1, 1, 1], context) == 0.75
        assert detector.score_user([1, 2, 3, 4], context) == 0.0
        assert detector.score_user([], context) == 0.0

    def test_flags_flooding_attackers(self):
        log = organic_log()
        detector = DuplicateClickDetector(threshold_percentile=95)
        detector.fit(log)
        attackers = {100 + i: [39] * 10 for i in range(5)}
        flagged = detector.detect(attackers)
        assert set(flagged) == set(attackers)

    def test_detect_requires_fit(self):
        with pytest.raises(RuntimeError):
            DuplicateClickDetector().detect({0: [1]})

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            DuplicateClickDetector(threshold_percentile=0)


class TestPopularityDeviationDetector:
    def test_cold_item_profiles_score_high(self):
        log = organic_log()
        detector = PopularityDeviationDetector()
        detector.fit(log)
        context = detector._context
        cold = detector.score_user([39, 39, 38], context)
        hot = detector.score_user([0, 1, 2], context)
        assert cold > hot

    def test_out_of_universe_items_count_as_cold(self):
        log = organic_log()
        detector = PopularityDeviationDetector()
        detector.fit(log)
        score = detector.score_user([999, 999], detector._context)
        assert score == 1.0


class TestProfileSimilarityDetector:
    def test_identical_profiles_max_similarity_is_one(self):
        similarity = ProfileSimilarityDetector._max_similarity(
            {5, 6, 7, 8}, [{5, 6, 7, 8}, {1, 2}])
        assert similarity == 1.0

    def test_disjoint_profiles_similarity_zero(self):
        similarity = ProfileSimilarityDetector._max_similarity(
            {1, 2}, [{3, 4}])
        assert similarity == 0.0

    def test_flags_clone_armies(self):
        log = organic_log()
        detector = ProfileSimilarityDetector(threshold_percentile=99)
        detector.fit(log)
        accounts = {100 + i: [30, 31, 32, 33, 34] for i in range(6)}
        flagged = detector.detect(accounts)
        assert len(flagged) == 6


class TestEvaluateDetection:
    def test_report_fields(self):
        log = organic_log()
        attackers = {100 + i: [39] * 10 for i in range(5)}
        report = evaluate_detection(DuplicateClickDetector(95), log,
                                    attackers)
        assert report.detector == "duplicate-clicks"
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.f1 <= 1.0

    def test_perfect_detection_on_obvious_attack(self):
        log = organic_log()
        attackers = {100 + i: [39] * 10 for i in range(5)}
        report = evaluate_detection(DuplicateClickDetector(99), log,
                                    attackers)
        assert report.recall == 1.0
        assert report.precision == 1.0

    def test_diverse_attack_evades_duplicate_detector(self):
        log = organic_log()
        rng = np.random.default_rng(1)
        attackers = {100 + i: rng.choice(40, size=10,
                                         replace=False).tolist()
                     for i in range(5)}
        report = evaluate_detection(DuplicateClickDetector(99), log,
                                    attackers)
        assert report.recall == 0.0

    def test_f1_zero_when_nothing_flagged(self):
        log = organic_log()
        attackers = {100: [0, 1, 2]}
        report = evaluate_detection(DuplicateClickDetector(100), log,
                                    attackers)
        assert report.f1 == 0.0
