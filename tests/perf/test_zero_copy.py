"""Zero-copy poison path: incremental reverts, splice, skip-restore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (DatasetSpec, InteractionLog, generate_log,
                        leave_one_out_split)
from repro.recsys import (RecommenderSystem, SnapshotMismatchError,
                          states_equal)


@pytest.fixture(scope="module")
def dataset():
    spec = DatasetSpec(name="tiny", num_users=30, num_items=50,
                       num_samples=300, num_clusters=4)
    return leave_one_out_split("tiny", generate_log(spec, seed=7))


def attack_batch(system, seed=0, count=6):
    rng = np.random.default_rng(seed)
    return [
        [list(map(int, rng.integers(0, system.num_items, size=5)))
         for _ in range(4)]
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Incremental revert == full restore
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ranker", ["itempop", "covisitation"])
def test_incremental_matches_full_restore(dataset, ranker):
    fast = RecommenderSystem(dataset, ranker, seed=0, num_attackers=8,
                             incremental=True)
    slow = RecommenderSystem(dataset, ranker, seed=0, num_attackers=8,
                             incremental=False)
    assert fast.ranker.supports_incremental_revert
    for trajectories in attack_batch(fast):
        assert fast.attack(trajectories) == slow.attack(trajectories)
    # After the last revert the live state must equal the clean snapshot
    # bit for bit.
    fast.reset()
    slow.reset()
    assert states_equal(fast.ranker._state(), fast._clean_state.state)
    assert states_equal(fast.ranker._state(), slow.ranker._state())


@pytest.mark.parametrize("ranker", ["itempop", "covisitation"])
def test_verify_incremental_mode_passes(dataset, ranker):
    system = RecommenderSystem(dataset, ranker, seed=0, num_attackers=8,
                               incremental=True, verify_incremental=True)
    for trajectories in attack_batch(system, seed=1):
        system.attack(trajectories)  # would raise on any revert drift
    system.reset()
    assert states_equal(system.ranker._state(), system._clean_state.state)


def test_verify_incremental_catches_drift(dataset):
    system = RecommenderSystem(dataset, "itempop", seed=0, num_attackers=8,
                               incremental=True, verify_incremental=True)
    system.attack(attack_batch(system)[0])
    # Sabotage the live state: the revert can no longer reproduce the
    # clean snapshot, and verify mode must notice.
    system.ranker.counts[0] += 1.0
    with pytest.raises(SnapshotMismatchError):
        system.reset()


def test_stacked_injections_fall_back_to_full_restore(dataset):
    system = RecommenderSystem(dataset, "itempop", seed=0, num_attackers=8,
                               incremental=True, verify_incremental=True)
    batches = attack_batch(system, seed=3)
    system.inject(batches[0])
    system.inject(batches[1])  # stacked: no single revertible poison
    system.reset()             # must take the snapshot path, not revert
    assert states_equal(system.ranker._state(), system._clean_state.state)


def test_non_counting_rankers_use_full_restore(dataset):
    system = RecommenderSystem(dataset, "bpr", seed=0, num_attackers=8,
                               incremental=True)
    assert not system.ranker.supports_incremental_revert
    before = system.attack(attack_batch(system)[0])
    after = system.attack(attack_batch(system)[0])
    assert before == after  # full-restore path still pure


# ----------------------------------------------------------------------
# Skip-restore when already clean
# ----------------------------------------------------------------------
def test_reset_skips_work_when_clean(dataset, monkeypatch):
    system = RecommenderSystem(dataset, "itempop", seed=0, num_attackers=8)
    calls = {"restore": 0, "revert": 0}
    real_restore = system.ranker.restore
    real_revert = system.ranker.poison_revert
    monkeypatch.setattr(
        system.ranker, "restore",
        lambda state: (calls.__setitem__("restore", calls["restore"] + 1),
                       real_restore(state))[1])
    monkeypatch.setattr(
        system.ranker, "poison_revert",
        lambda poison: (calls.__setitem__("revert", calls["revert"] + 1),
                        real_revert(poison))[1])
    system.reset()
    system.reset()
    assert calls == {"restore": 0, "revert": 0}  # clean: both no-ops
    system.attack(attack_batch(system)[0])       # clean entry: no revert
    assert calls == {"restore": 0, "revert": 0}
    system.attack(attack_batch(system)[1])       # poisoned entry: revert
    system.reset()                               # reverts the injection
    system.reset()                               # clean again: no-op
    assert calls["revert"] == 2
    assert calls["restore"] == 0
    system.reset(force=True)                     # force always restores
    assert calls["restore"] == 1


# ----------------------------------------------------------------------
# Merged-log splice
# ----------------------------------------------------------------------
def test_splice_and_unsplice_roundtrip():
    log = InteractionLog(10)
    log.add_sequence(0, [1, 2, 3])
    poison = InteractionLog(10)
    poison.add_sequence(5, [7, 8])
    log.splice(poison)
    assert log.sequence(5) == [7, 8]
    assert log.num_users == 2
    log.unsplice(poison)
    assert 5 not in log
    assert log.sequence(0) == [1, 2, 3]


def test_splice_rejects_overlapping_users():
    log = InteractionLog(10)
    log.add_sequence(0, [1])
    other = InteractionLog(10)
    other.add_sequence(0, [2])
    with pytest.raises(ValueError):
        log.splice(other)


def test_splice_rejects_mismatched_universe():
    with pytest.raises(ValueError):
        InteractionLog(10).splice(InteractionLog(11))


def test_attack_leaves_merged_skeleton_clean(dataset):
    system = RecommenderSystem(dataset, "itempop", seed=0, num_attackers=8)
    users_before = set(system._merged_skeleton.users)
    system.attack(attack_batch(system)[0])
    assert set(system._merged_skeleton.users) == users_before
