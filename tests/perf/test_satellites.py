"""Hot-path micro-optimizations: each must be invisible to results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import Rollout
from repro.core.ppo import Experience, PPOTrainer, PolicyNetwork
from repro.core import make_action_space
from repro.data import DatasetSpec, generate_log, leave_one_out_split
from repro.recsys import RecommenderSystem


def make_rollout(rng, num_attackers=3, T=4, D=2):
    items = rng.integers(0, 20, size=(num_attackers, T))
    return Rollout(items=items,
                   decisions={"choice": items.copy()},
                   log_probs=rng.normal(size=(num_attackers, T, D)),
                   mask=np.ones((num_attackers, T, D)))


# ----------------------------------------------------------------------
# Rollout.trajectories() cache
# ----------------------------------------------------------------------
def test_trajectories_cached(rng):
    rollout = make_rollout(rng)
    first = rollout.trajectories()
    assert rollout.trajectories() is first
    assert first == [list(map(int, row)) for row in rollout.items]


# ----------------------------------------------------------------------
# PPO _flatten hoisted out of the full-batch epoch loop
# ----------------------------------------------------------------------
def make_trainer(num_attackers=3, seed=0):
    num_items = 24
    targets = np.arange(num_items - 4, num_items)
    popularity = np.concatenate([np.arange(num_items - 4, 0, -1.0),
                                 np.zeros(4)])
    space = make_action_space("plain", num_items - 4, targets, popularity,
                              seed=seed)
    policy = PolicyNetwork(space, num_attackers=num_attackers, dim=8,
                           seed=seed)
    return policy, PPOTrainer(policy, seed=seed)


def sample_experiences(policy, count, seed=0):
    rng = np.random.default_rng(seed)
    return [Experience(rollout=policy.sample_rollout(4, rng),
                       reward=float(i)) for i in range(count)]


def count_flattens(trainer, monkeypatch):
    calls = {"n": 0}
    real = trainer._flatten

    def counting(experiences):
        calls["n"] += 1
        return real(experiences)

    monkeypatch.setattr(trainer, "_flatten", counting)
    return calls


def test_full_batch_flattens_once(monkeypatch):
    policy, trainer = make_trainer()
    experiences = sample_experiences(policy, 4)
    calls = count_flattens(trainer, monkeypatch)
    trainer.update(experiences, epochs=3, batch_size=None)
    assert calls["n"] == 1
    calls["n"] = 0
    trainer.update(experiences, epochs=3, batch_size=10)  # >= len: full
    assert calls["n"] == 1


def test_subsampled_batches_still_flatten_per_epoch(monkeypatch):
    policy, trainer = make_trainer()
    experiences = sample_experiences(policy, 6)
    calls = count_flattens(trainer, monkeypatch)
    trainer.update(experiences, epochs=3, batch_size=2)
    assert calls["n"] == 3


def test_hoist_preserves_losses():
    policy_a, trainer_a = make_trainer(seed=1)
    policy_b, trainer_b = make_trainer(seed=1)
    exp_a = sample_experiences(policy_a, 4, seed=2)
    exp_b = sample_experiences(policy_b, 4, seed=2)
    losses_full = trainer_a.update(exp_a, epochs=2, batch_size=None)
    losses_ge = trainer_b.update(exp_b, epochs=2, batch_size=4)
    assert losses_full == losses_ge


# ----------------------------------------------------------------------
# Query purity on optimizer-bearing rankers (the snapshot-RNG fix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ranker", ["neumf", "autorec"])
def test_repeated_attacks_are_pure(ranker):
    spec = DatasetSpec(name="tiny", num_users=25, num_items=40,
                       num_samples=250, num_clusters=4)
    dataset = leave_one_out_split("tiny", generate_log(spec, seed=7))
    system = RecommenderSystem(dataset, ranker, seed=0, num_attackers=4)
    rng = np.random.default_rng(5)
    first = [list(map(int, rng.integers(0, system.num_items, size=4)))
             for _ in range(3)]
    second = [list(map(int, rng.integers(0, system.num_items, size=4)))
              for _ in range(3)]
    a1 = system.attack(first)
    b1 = system.attack(second)
    # Re-running in any order must reproduce the same readings: each
    # query restores parameters, optimizer moments, and the RNG stream.
    assert system.attack(first) == a1
    assert system.attack(second) == b1
    assert system.attack(first) == a1
