"""QueryPool: equivalence, ordering, crash healing, retry semantics."""

from __future__ import annotations

import glob
import os
import time

import numpy as np
import pytest

from repro.core import PoisonRec, PoisonRecConfig
from repro.data import DatasetSpec, generate_log, leave_one_out_split
from repro.perf import QueryOutcome, QueryPool, WorkerCrashError
from repro.recsys import BlackBoxEnvironment, RecommenderSystem
from repro.runtime import (FaultPlan, FaultyEnvironment, ResilienceConfig,
                           RetryPolicy, WorkerFaultPlan)
from repro.runtime.errors import (RetriesExhaustedError,
                                  TransientEnvironmentError)

HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK,
                                reason="fork start method unavailable")


def make_env(ranker="covisitation", seed=0):
    spec = DatasetSpec(name="tiny", num_users=30, num_items=50,
                       num_samples=300, num_clusters=4)
    dataset = leave_one_out_split("tiny", generate_log(spec, seed=7))
    system = RecommenderSystem(dataset, ranker, seed=seed, num_attackers=8)
    return BlackBoxEnvironment(system)


class SumSystem:
    """Deterministic stand-in: reward = sum of all injected item ids."""

    def __init__(self):
        self.query_count = 0

    def attack(self, trajectories):
        self.query_count += 1
        return float(sum(sum(t) for t in trajectories))


class CrashingSystem(SumSystem):
    """Kills the worker process while ``flag_path`` does not exist."""

    def __init__(self, flag_path, crashes=1):
        super().__init__()
        self.flag_path = str(flag_path)
        self.crashes = crashes

    def attack(self, trajectories):
        count = 0
        while os.path.exists(f"{self.flag_path}.{count}"):
            count += 1
        if count < self.crashes:
            open(f"{self.flag_path}.{count}", "w").close()
            os._exit(1)
        return super().attack(trajectories)


class ChildOnlyCrashSystem(SumSystem):
    """Crashes in every forked worker but works in the parent process."""

    def __init__(self):
        super().__init__()
        self.parent_pid = os.getpid()

    def attack(self, trajectories):
        if os.getpid() != self.parent_pid:
            os._exit(1)
        return super().attack(trajectories)


class FlakySystem(SumSystem):
    """Raises a transient error until ``failures`` flag files exist."""

    def __init__(self, flag_path, failures=1):
        super().__init__()
        self.flag_path = str(flag_path)
        self.failures = failures

    def attack(self, trajectories):
        count = 0
        while os.path.exists(f"{self.flag_path}.{count}"):
            count += 1
        if count < self.failures:
            open(f"{self.flag_path}.{count}", "w").close()
            raise TransientEnvironmentError("flaky")
        return super().attack(trajectories)


class AlwaysTransientSystem(SumSystem):
    def attack(self, trajectories):
        raise TransientEnvironmentError("always down")


class BoomError(RuntimeError):
    pass


class FatalSystem(SumSystem):
    def attack(self, trajectories):
        raise BoomError("not transient")


def batch(count, seed=0):
    rng = np.random.default_rng(seed)
    return [[list(map(int, rng.integers(0, 100, size=5))) for _ in range(3)]
            for _ in range(count)]


# ----------------------------------------------------------------------
# Serial fallback (workers=1)
# ----------------------------------------------------------------------
def test_workers_one_never_spawns_processes():
    system = SumSystem()
    pool = QueryPool(system, workers=1)
    outcomes = pool.attack_many(batch(4))
    assert not pool.parallel
    assert all(proc is None for proc in pool._procs)
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in sets)) for sets in batch(4)]
    assert system.query_count == 4
    pool.close()


def test_invalid_workers_rejected():
    with pytest.raises(ValueError):
        QueryPool(SumSystem(), workers=0)
    with pytest.raises(ValueError):
        QueryPool(SumSystem(), crash_retries=-1)


# ----------------------------------------------------------------------
# Parallel equivalence
# ----------------------------------------------------------------------
@needs_fork
def test_parallel_matches_serial_order_and_values():
    sets = batch(9, seed=3)
    serial = [float(sum(sum(t) for t in s)) for s in sets]
    system = SumSystem()
    with QueryPool(system, workers=3) as pool:
        outcomes = pool.attack_many(sets)
    assert [o.reward for o in outcomes] == serial
    assert all(o.retries == 0 and o.error is None for o in outcomes)
    # The parent's budget counter reflects worker-side queries.
    assert system.query_count == len(sets)


@needs_fork
def test_parallel_campaign_bit_identical_to_serial():
    """workers=4 produces the exact serial StepStats history (ISSUE
    acceptance criterion)."""
    def run(pool_workers):
        env = make_env()
        pool = (QueryPool(env, workers=pool_workers)
                if pool_workers else None)
        agent = PoisonRec(env, PoisonRecConfig.ci(), action_space="plain",
                          query_pool=pool)
        result = agent.train(steps=2)
        if pool is not None:
            pool.close()
        history = [(s.step, s.mean_reward, s.max_reward, tuple(s.losses),
                    s.retries, s.quarantined) for s in result.history]
        return history, result.best_reward, env.query_count

    serial_history, serial_best, serial_queries = run(0)
    pooled_history, pooled_best, pooled_queries = run(4)
    assert pooled_history == serial_history
    assert pooled_best == serial_best
    assert pooled_queries == serial_queries


@needs_fork
def test_pool_reusable_across_batches():
    system = SumSystem()
    with QueryPool(system, workers=2) as pool:
        first = pool.attack_many(batch(4, seed=1))
        second = pool.attack_many(batch(4, seed=2))
    assert [o.reward for o in first] == [
        float(sum(sum(t) for t in s)) for s in batch(4, seed=1)]
    assert [o.reward for o in second] == [
        float(sum(sum(t) for t in s)) for s in batch(4, seed=2)]


def test_empty_batch():
    assert QueryPool(SumSystem(), workers=1).attack_many([]) == []


# ----------------------------------------------------------------------
# Crash healing
# ----------------------------------------------------------------------
@needs_fork
def test_worker_crash_is_healed(tmp_path):
    system = CrashingSystem(tmp_path / "crash", crashes=1)
    sets = batch(5, seed=4)
    with QueryPool(system, workers=2) as pool:
        outcomes = pool.attack_many(sets)
    assert pool.crashes >= 1
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in s)) for s in sets]
    assert sum(o.retries for o in outcomes) >= 1


@needs_fork
def test_crash_looping_query_falls_back_to_serial():
    system = ChildOnlyCrashSystem()
    sets = batch(3, seed=5)
    with QueryPool(system, workers=2, crash_retries=1) as pool:
        outcomes = pool.attack_many(sets)
    # Every query kills every worker, so each one must have completed
    # in-process in the parent.
    assert pool.serial_fallbacks == len(sets)
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in s)) for s in sets]


# ----------------------------------------------------------------------
# Transient errors and the retry policy
# ----------------------------------------------------------------------
@needs_fork
def test_transient_error_retried_to_success(tmp_path):
    system = FlakySystem(tmp_path / "flaky", failures=2)
    policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
    sets = batch(1, seed=6)
    with QueryPool(system, workers=2) as pool:
        outcomes = pool.attack_many(sets, retry=policy,
                                    rng=np.random.default_rng(0),
                                    sleep=lambda _: None)
    assert outcomes[0].reward == float(sum(sum(t) for t in sets[0]))
    assert outcomes[0].retries >= 2


@needs_fork
def test_retries_exhausted_becomes_quarantine_outcome():
    policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
    with QueryPool(AlwaysTransientSystem(), workers=2) as pool:
        outcomes = pool.attack_many(batch(2), retry=policy,
                                    rng=np.random.default_rng(0),
                                    sleep=lambda _: None)
    for outcome in outcomes:
        assert outcome.reward is None
        assert isinstance(outcome.error, RetriesExhaustedError)
        assert outcome.error.attempts == 2


@needs_fork
def test_transient_error_without_policy_raises():
    with QueryPool(AlwaysTransientSystem(), workers=2) as pool:
        with pytest.raises(TransientEnvironmentError):
            pool.attack_many(batch(2))


@needs_fork
def test_fatal_error_propagates():
    with QueryPool(FatalSystem(), workers=2) as pool:
        with pytest.raises(BoomError):
            pool.attack_many(batch(2))


class StallOnceSystem(SumSystem):
    """Hangs (once) past any reasonable heartbeat, then serves normally."""

    def __init__(self, flag_path, seconds=2.0):
        super().__init__()
        self.flag_path = str(flag_path)
        self.seconds = seconds

    def attack(self, trajectories):
        if not os.path.exists(self.flag_path):
            open(self.flag_path, "w").close()
            time.sleep(self.seconds)
        return super().attack(trajectories)


class PinProbeSystem(SumSystem):
    """Fails with a replica-safe error ``failures`` times *per worker*.

    Each failure drops a ``fail.<pid>.<n>`` flag file, so a test can
    verify that all retry attempts landed on the same worker (retry
    pinning) — an unpinned retry would bounce to a fresh worker whose
    failure count starts at zero.
    """

    def __init__(self, flag_dir, failures=2):
        super().__init__()
        self.flag_dir = str(flag_dir)
        self.failures = failures

    def attack(self, trajectories):
        pid = os.getpid()
        count = 0
        while os.path.exists(f"{self.flag_dir}/fail.{pid}.{count}"):
            count += 1
        if count < self.failures:
            open(f"{self.flag_dir}/fail.{pid}.{count}", "w").close()
            error = TransientEnvironmentError("injected, replica untouched")
            error.replica_safe = True
            raise error
        return super().attack(trajectories)


class NaNOnceSystem(SumSystem):
    """Returns a corrupt (non-finite) reward on the first query."""

    def __init__(self, flag_path):
        super().__init__()
        self.flag_path = str(flag_path)

    def attack(self, trajectories):
        reward = super().attack(trajectories)
        if not os.path.exists(self.flag_path):
            open(self.flag_path, "w").close()
            return float("nan")
        return reward


# ----------------------------------------------------------------------
# Stall heartbeat, worker chaos, and retry pinning
# ----------------------------------------------------------------------
@needs_fork
def test_stalled_worker_detected_and_query_reissued(tmp_path):
    system = StallOnceSystem(tmp_path / "stall", seconds=30.0)
    sets = batch(3, seed=8)
    with QueryPool(system, workers=2, stall_timeout=0.2) as pool:
        outcomes = pool.attack_many(
            sets, retry=RetryPolicy(max_attempts=4, base_delay=0.0,
                                    jitter=0.0),
            rng=np.random.default_rng(0), sleep=lambda _: None)
    assert pool.crashes >= 1
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in s)) for s in sets]


@needs_fork
def test_chaos_worker_kills_are_healed():
    chaos = WorkerFaultPlan(kill_rate=0.4, seed=11)
    system = SumSystem()
    sets = batch(8, seed=9)
    with QueryPool(system, workers=2, chaos=chaos) as pool:
        outcomes = pool.attack_many(
            sets, retry=RetryPolicy(max_attempts=6, base_delay=0.0,
                                    jitter=0.0),
            rng=np.random.default_rng(0), sleep=lambda _: None)
    assert pool.crashes >= 1
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in s)) for s in sets]


@needs_fork
def test_chaos_worker_stalls_are_healed():
    chaos = WorkerFaultPlan(stall_rate=0.5, stall_seconds=5.0, seed=3)
    system = SumSystem()
    sets = batch(4, seed=10)
    with QueryPool(system, workers=2, stall_timeout=0.2, chaos=chaos) as pool:
        outcomes = pool.attack_many(
            sets, retry=RetryPolicy(max_attempts=6, base_delay=0.0,
                                    jitter=0.0),
            rng=np.random.default_rng(0), sleep=lambda _: None)
    # Directives are drawn per dispatch attempt, so a stalled query is
    # eventually served (possibly in-process after a crash loop).
    assert pool.crashes >= 1
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in s)) for s in sets]


@needs_fork
def test_replica_safe_errors_keep_the_worker_alive(tmp_path):
    system = PinProbeSystem(tmp_path, failures=1)
    sets = batch(4, seed=12)
    with QueryPool(system, workers=2) as pool:
        outcomes = pool.attack_many(
            sets, retry=RetryPolicy(max_attempts=4, base_delay=0.0,
                                    jitter=0.0),
            rng=np.random.default_rng(0), sleep=lambda _: None)
    # Tagged errors ship as data: no worker death, no respawn.
    assert pool.crashes == 0
    assert [o.reward for o in outcomes] == [
        float(sum(sum(t) for t in s)) for s in sets]


@needs_fork
def test_retries_are_pinned_to_the_failing_worker(tmp_path):
    system = PinProbeSystem(tmp_path, failures=2)
    with QueryPool(system, workers=2) as pool:
        outcomes = pool.attack_many(
            batch(1, seed=13),
            retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
            rng=np.random.default_rng(0), sleep=lambda _: None)
    assert outcomes[0].reward is not None
    assert outcomes[0].retries == 2
    # Both failures (and the success) happened in one worker: pinning
    # kept the replica's per-query occurrence counters advancing.
    pids = {path.split(".")[-2]
            for path in glob.glob(f"{tmp_path}/fail.*")}
    assert len(pids) == 1


@needs_fork
def test_corrupt_reward_is_retried_in_pool(tmp_path):
    system = NaNOnceSystem(tmp_path / "nan")
    sets = batch(2, seed=14)
    with QueryPool(system, workers=2) as pool:
        outcomes = pool.attack_many(
            sets, retry=RetryPolicy(max_attempts=4, base_delay=0.0,
                                    jitter=0.0),
            rng=np.random.default_rng(0), sleep=lambda _: None)
    assert pool.crashes == 0
    assert all(np.isfinite(o.reward) for o in outcomes)
    assert sum(o.retries for o in outcomes) >= 1


@needs_fork
def test_chaos_campaign_bit_identical_to_serial_chaos():
    """Pooled + env chaos produces the exact serial chaos history
    (the lifted --workers/--chaos CLI restriction, satellite 1)."""
    def run(pool_workers):
        env = FaultyEnvironment(make_env(),
                                FaultPlan.mixed(0.3, seed=5))
        pool = (QueryPool(env, workers=pool_workers)
                if pool_workers else None)
        agent = PoisonRec(env, PoisonRecConfig.ci(), action_space="plain",
                          query_pool=pool)
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=4), watchdog=None,
            jitter_seed=0, sleep=lambda _: None)
        result = agent.train(steps=2, resilience=resilience)
        if pool is not None:
            pool.close()
        return [(s.step, s.mean_reward, s.max_reward, tuple(s.losses),
                 s.retries, s.quarantined) for s in result.history]

    assert run(0) == run(3)


def test_worker_crash_error_is_transient():
    assert issubclass(WorkerCrashError, TransientEnvironmentError)


def test_outcome_defaults():
    outcome = QueryOutcome(reward=1.0)
    assert outcome.retries == 0 and outcome.error is None
