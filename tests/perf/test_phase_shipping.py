"""Worker-side phase shipping and the pooled-campaign trace account.

Pooled workers measure each query's attack phases (restore / merge /
retrain / score) in their own process and ship the deltas back with the
:class:`~repro.perf.QueryOutcome`; the parent merges them into the
campaign's profiler.  With tracing attached, the synthesized per-query
phase spans must account for (nearly) all of the pool's busy time —
the ISSUE acceptance criterion is a <=5% gap on the covisitation
testbed — and tracing must leave the training history bit-identical.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import PoisonRec, PoisonRecConfig
from repro.obs import RunTelemetry, Tracer, load_run, write_chrome_trace
from repro.perf import QueryPool, QueryProfiler
from repro.perf.profile import PhaseDelta, find_profiler

from .test_pool import HAS_FORK, SumSystem, batch, make_env

needs_fork = pytest.mark.skipif(not HAS_FORK,
                                reason="fork start method unavailable")

PHASES = ("restore", "merge", "retrain", "score")


def profiled_env(ranker="covisitation", seed=0):
    env = make_env(ranker, seed=seed)
    env._system.profiler = QueryProfiler()
    return env


def env_batch(env, count, seed=0):
    """Query batches whose item ids fit the tiny environment."""
    rng = np.random.default_rng(seed)
    return [[list(map(int, rng.integers(0, env.num_original_items, size=5)))
             for _ in range(3)] for _ in range(count)]


class TestPhaseDelta:
    def test_delta_isolates_new_queries(self):
        profiler = QueryProfiler()
        with profiler.phase("score"):
            pass
        before = PhaseDelta(profiler)
        with profiler.phase("score"):
            pass
        with profiler.phase("merge"):
            pass
        seconds, calls = before.delta()
        assert calls == {"score": 1, "merge": 1}  # not the earlier one
        assert set(seconds) == {"score", "merge"}

    def test_none_profiler_is_tolerated(self):
        assert PhaseDelta(None).delta() == (None, None)

    def test_find_profiler_walks_wrappers(self):
        env = profiled_env()
        assert find_profiler(env) is env._system.profiler
        assert find_profiler(SumSystem()) is None
        assert find_profiler(None) is None


@needs_fork
class TestWorkerShipping:
    def test_phases_shipped_and_merged_into_parent(self):
        env = profiled_env()
        profiler = env._system.profiler
        with QueryPool(env, workers=2) as pool:
            outcomes = pool.attack_many(env_batch(env, 6))
            assert pool.parallel
            assert pool.pooled_queries == 6
            assert pool.pooled_seconds > 0.0
        for outcome in outcomes:
            assert outcome.pooled
            assert outcome.seconds > 0.0
            assert outcome.phases and "score" in outcome.phases
            # Phase time is a subset of the worker's total query time.
            assert sum(outcome.phases.values()) <= outcome.seconds
        # The parent-side profiler absorbed the worker deltas: every
        # query scored exactly once, despite running out-of-process.
        assert profiler.summary()["score"]["calls"] == 6

    def test_untimed_without_observability_consumers(self):
        """No profiler anywhere -> outcomes still ship wall seconds."""
        with QueryPool(SumSystem(), workers=2) as pool:
            outcomes = pool.attack_many(batch(3))
        for outcome in outcomes:
            assert outcome.pooled
            assert outcome.seconds > 0.0
            assert outcome.phases is None


class TestSerialTier:
    def test_serial_outcomes_timed_when_observed(self):
        env = profiled_env()
        pool = QueryPool(env, workers=1)
        pool.tracer = Tracer()
        outcomes = pool.attack_many(env_batch(env, 4))
        for outcome in outcomes:
            assert not outcome.pooled
            assert outcome.seconds > 0.0
            assert outcome.phases and "score" in outcome.phases
        batches = [s for s in pool.tracer.spans if s.name == "pool.batch"]
        assert len(batches) == 1
        assert batches[0].attrs["tier"] == "serial"


@needs_fork
class TestPooledCampaignTrace:
    def run_campaign(self, obs=None, workers=4, log=None):
        env = profiled_env()
        pool = QueryPool(env, workers=workers) if workers else None
        run = RunTelemetry(log) if obs else None
        if pool is not None and run is not None:
            pool.tracer = run.tracer
            pool.metrics = run.metrics
        agent = PoisonRec(env, PoisonRecConfig.ci(), action_space="plain",
                          query_pool=pool, obs=run)
        result = agent.train(steps=2)
        pooled_seconds = pool.pooled_seconds if pool else 0.0
        fallbacks = pool.serial_fallbacks if pool else 0
        if pool is not None:
            pool.close()
        if run is not None:
            run.close()
        history = [(s.step, s.mean_reward, s.max_reward, tuple(s.losses))
                   for s in result.history]
        return history, pooled_seconds, fallbacks

    def test_trace_accounts_for_pooled_query_time(self, tmp_path):
        """ISSUE acceptance: phase spans sum to within 5% of the pool's
        busy seconds, the Chrome export is loadable, and tracing leaves
        the history bit-identical."""
        log = tmp_path / "obs.jsonl"
        traced, pooled_seconds, fallbacks = self.run_campaign(
            obs=True, workers=4, log=log)
        assert fallbacks == 0  # every query went through the workers

        replay = load_run(log)
        phase_total = sum(span.seconds for span in replay.spans
                          if span.name in PHASES)
        assert pooled_seconds > 0.0
        assert phase_total == pytest.approx(pooled_seconds, rel=0.05)

        # Per-query metrics agree with the span account.
        snapshot = {(m["name"], tuple(sorted(m.get("labels", {}).items()))):
                    m for m in replay.metrics}
        queries = snapshot[("pool.queries", (("tier", "pooled"),))]
        latency = snapshot[("pool.query_seconds", ())]
        assert queries["value"] == latency["count"] > 0
        assert latency["total"] == pytest.approx(pooled_seconds, rel=1e-6)

        # The Chrome trace export is well-formed and covers the spans.
        export = tmp_path / "chrome.json"
        write_chrome_trace(export, replay.spans, replay.events)
        with open(export, encoding="utf-8") as handle:
            trace = json.load(handle)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {"train_step", "query_batch", "pool.batch"} <= \
            {e["name"] for e in complete}

        # Tracing is purely observational: the untraced serial history
        # is bit-identical (pool equivalence + tracer non-interference).
        untraced, _, _ = self.run_campaign(obs=None, workers=0)
        assert traced == untraced
