"""Shared fixtures: tiny datasets and environments that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, DatasetSpec, generate_log, leave_one_out_split
from repro.recsys import BlackBoxEnvironment, RecommenderSystem


TINY_SPEC = DatasetSpec(name="tiny", num_users=40, num_items=60,
                        num_samples=400, num_clusters=5)


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """A 40-user / 60-item dataset; fits every ranker in milliseconds."""
    log = generate_log(TINY_SPEC, seed=7)
    return leave_one_out_split("tiny", log)


@pytest.fixture(scope="session")
def itempop_system(tiny_dataset) -> RecommenderSystem:
    return RecommenderSystem(tiny_dataset, "itempop", seed=0,
                             num_attackers=6)


@pytest.fixture()
def itempop_env(itempop_system) -> BlackBoxEnvironment:
    # force=True: the session-scoped system must come back pristine even
    # if a previous test mutated the ranker without marking it poisoned.
    itempop_system.reset(force=True)
    return BlackBoxEnvironment(itempop_system)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
